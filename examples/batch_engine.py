"""Batch engine: serve a fleet of auctions with one compilation pass.

A secondary-spectrum operator runs one auction per region and epoch: the
region's interference structure is fixed for the day, bidders re-bid each
epoch.  The :class:`BatchAuctionEngine` compiles each region's conflict
structure once, assembles and solves every epoch's LP with vectorized
kernels, and fans instances across an executor with deterministic
per-instance seeds — same results serial or parallel, same results as
calling ``SpectrumAuctionSolver`` per auction, only faster.

Run:  python examples/batch_engine.py
"""

import time

from repro import BatchAuctionEngine, SpectrumAuctionSolver
from repro.engine import structure_cache_stats
from repro.experiments.workloads import protocol_auction_fleet


def main() -> None:
    # 4 regions x 6 epochs = 24 auctions; each region's structure object is
    # shared by its epochs, so the engine compiles 4 structures, not 24.
    fleet = protocol_auction_fleet(regions=4, epochs=6, n=30, k=4, seed=2024)
    print(f"fleet: {len(fleet)} auctions over 4 regions")

    engine = BatchAuctionEngine(rounding_attempts=5, executor="serial")
    start = time.perf_counter()
    batch = engine.solve_many(fleet, seed=99)
    elapsed = time.perf_counter() - start

    print(f"\nsolved {batch.n_instances} auctions in {elapsed * 1e3:.0f} ms "
          f"({batch.lp_solves} LP solves, executor={batch.executor})")
    print(f"total welfare:   {batch.total_welfare:.1f}")
    print(f"total LP bound:  {batch.total_lp_value:.1f}")
    stats = structure_cache_stats()
    print(f"structure cache: {stats['hits']} hits, {stats['misses']} misses")

    # Determinism across executors: a thread pool gives identical results.
    threaded = BatchAuctionEngine(
        rounding_attempts=5, executor="thread", max_workers=4
    ).solve_many(fleet, seed=99)
    assert all(
        a.allocation == b.allocation for a, b in zip(batch.results, threaded.results)
    )
    print("thread-pool run identical to serial run: True")

    # And identical to solving each auction with the one-off facade.
    import numpy as np

    child = np.random.SeedSequence(99).spawn(len(fleet))[0]
    solo = SpectrumAuctionSolver(fleet[0]).solve(seed=child, rounding_attempts=5)
    assert solo.allocation == batch.results[0].allocation
    print("facade per-auction result identical:     True")

    best = max(batch.results, key=lambda r: r.welfare)
    winners = sum(1 for s in best.allocation.values() if s)
    print(f"\nbest epoch: welfare {best.welfare:.1f} with {winners} winners "
          f"(LP bound {best.lp_value:.1f})")


if __name__ == "__main__":
    main()
