"""Cellular base stations with hot-spot demand — the paper's Section 1 story.

Scenario: a metro area with clustered demand (hot spots).  Operators deploy
base stations; each station covers a disk and wants to aggregate several
secondary channels, but has a budget.  Primary-user protection makes some
channels unavailable to some stations (zeroed per-channel values) — the
paper's point that valuations must be unrestricted.

Pipeline: disk transmitter model (Proposition 9's ρ ≤ 5 certificate) +
budgeted-additive bidders + LP + derandomized rounding, then the truthful
mechanism on the same structure.

Run:  python examples/cellular_basestations.py
"""

import numpy as np

from repro import (
    AuctionProblem,
    BudgetedAdditiveValuation,
    SpectrumAuctionSolver,
    TruthfulMechanism,
)
from repro.geometry.disks import DiskInstance
from repro.geometry.points import sample_clustered_points
from repro.interference.disk import disk_transmitter_model


def main() -> None:
    rng = np.random.default_rng(31)
    n, k = 24, 5

    # Hot-spot geometry: stations concentrate around 3 demand clusters.
    points = sample_clustered_points(n, clusters=3, spread=0.08, seed=rng)
    radii = rng.uniform(0.06, 0.14, size=n)
    instance = DiskInstance(points, radii)
    structure = disk_transmitter_model(instance)
    print(
        f"{n} base stations, {structure.graph.m} interference conflicts, "
        f"certified rho = {structure.rho}"
    )

    # Valuations: per-channel values scale with coverage area; primary-user
    # protection blanks 0-2 channels per station; budgets cap spending.
    valuations = []
    for i in range(n):
        base_value = 50.0 * (radii[i] / radii.max()) ** 2
        per_channel = np.round(base_value * rng.uniform(0.5, 1.5, size=k))
        blocked = rng.choice(k, size=int(rng.integers(0, 3)), replace=False)
        per_channel[blocked] = 0.0
        if per_channel.sum() == 0:
            per_channel[int(rng.integers(k))] = max(base_value, 1.0)
        budget = float(np.round(per_channel.sum() * rng.uniform(0.4, 0.9)))
        valuations.append(BudgetedAdditiveValuation(per_channel, max(budget, 1.0)))

    problem = AuctionProblem(structure, k, valuations)
    result = SpectrumAuctionSolver(problem).solve(seed=32, derandomize=True)
    assert result.feasible
    print(f"LP upper bound {result.lp_value:.0f}, welfare {result.welfare:.0f}")
    per_channel_load = {
        j: sum(1 for s in result.allocation.values() if j in s) for j in range(k)
    }
    print("stations per channel:", per_channel_load)

    # The same market as a truthful auction (budgeted bidders have exact
    # demand oracles, so the LP is solvable from reports alone).
    mech = TruthfulMechanism(structure, k)
    outcome = mech.run(valuations, seed=33)
    paying = int((outcome.payments > 1e-9).sum())
    print(
        f"mechanism: alpha = {outcome.alpha:.0f}, "
        f"{paying} stations pay a positive price, "
        f"expected welfare = {outcome.decomposition.expected_welfare():.3f}"
    )
    for v in range(n):
        assert outcome.expected_utility(v, valuations[v]) >= -1e-9  # IR


if __name__ == "__main__":
    main()
