"""Serve auctions over HTTP with the asyncio gateway.

Starts a real localhost gateway over an :class:`AuctionService`,
registers a metro scene through ``POST /v1/scenes`` (getting back its
content-hash ``scene_id``), then walks the serving edge end to end:

* a typed solve through :class:`SyncGatewayClient`, bit-identical to the
  in-process path;
* the same request as a raw ``http.client`` exchange — what any non-
  Python client would send — including the ``X-Auction-Deadline`` header
  that drives the server-side EWMA triage into greedy degradation;
* the typed failure contract across the wire: an unregistered scene is
  HTTP 404 with ``error_code: "unknown-scene"``, reconstructed client-
  side as the same ``KeyError`` the in-process API raises;
* the ``/v1/metrics`` snapshot with the gateway's own HTTP counters.

Run from the repository root:

    PYTHONPATH=src python examples/http_gateway.py
"""

from __future__ import annotations

import http.client
import json

from repro.experiments.workloads import metro_disk_scene
from repro.io import _structure_to_dict
from repro.service import (
    AuctionRequest,
    AuctionService,
    GatewayServer,
    SyncGatewayClient,
)
from repro.service.wire import request_to_wire
from repro.valuations.generators import random_xor_valuations

N = 30
K = 3


def raw_exchange(port: int, method: str, path: str, body=None, headers=None):
    """One stdlib HTTP exchange — the non-Python-client view of the API."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(
            method,
            path,
            body=None if body is None else json.dumps(body),
            headers=headers or {},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main() -> None:
    scene = metro_disk_scene(N, seed=501)
    service = AuctionService(executor="serial", coalesce_window=0.0)
    with service:
        with GatewayServer(service) as server:
            print(f"gateway listening on {server.address}")

            # -- register the scene over the wire; the id is its fingerprint
            status, payload = raw_exchange(
                server.port,
                "POST",
                "/v1/scenes",
                {"structure": _structure_to_dict(scene)},
            )
            scene_id = payload["scene_id"]
            print(f"registered scene: {scene_id} (n={payload['n']}) -> {status}")

            # -- typed client: solve and compare with the in-process path
            valuations = random_xor_valuations(N, K, seed=7)
            request = AuctionRequest(scene_id, K, valuations, seed=7)
            with SyncGatewayClient(port=server.port) as client:
                response = client.solve(request)
                [in_process] = service.solve_batch(
                    [AuctionRequest(scene_id, K, valuations, seed=7)]
                )
                print(
                    f"solved over HTTP: welfare={response.welfare:.1f}, "
                    f"{len(response.allocation)} winners, "
                    f"bit-identical to in-process: {response == in_process}"
                )

                # -- typed errors cross the wire: unknown scene -> KeyError
                try:
                    client.solve(AuctionRequest("0" * 16, K, valuations, seed=1))
                except KeyError as exc:
                    print(f"unknown scene raises client-side: KeyError({exc})")

            # -- the same unknown-scene failure, as any HTTP client sees it
            status, payload = raw_exchange(
                server.port,
                "POST",
                "/v1/solve",
                request_to_wire(AuctionRequest("0" * 16, K, valuations, seed=1)),
            )
            print(
                f"unknown scene over raw HTTP -> {status} "
                f"error_code={payload['error_code']!r}"
            )

            # -- metrics: service snapshot + the gateway's HTTP accounting
            _, snapshot = raw_exchange(server.port, "GET", "/v1/metrics")
            print(f"gateway counters: {snapshot['gateway']}")

    # -- raw HTTP with a deadline header: the server-side EWMA triage
    #    degrades to the greedy baseline when the remaining budget cannot
    #    fit an LP solve.  A fresh service seeded with a huge solve-time
    #    hint (no observations yet) makes a 5-second budget look hopeless.
    triage_service = AuctionService(
        registry=service.registry,
        executor="serial",
        coalesce_window=0.0,
        solve_time_hint=30.0,
        degrade_headroom=1.0,
    )
    with triage_service:
        with GatewayServer(triage_service) as server:
            valuations = random_xor_valuations(N, K, seed=9)
            status, payload = raw_exchange(
                server.port,
                "POST",
                "/v1/solve",
                request_to_wire(AuctionRequest(scene_id, K, valuations, seed=9)),
                headers={"X-Auction-Deadline": "5.0"},
            )
            print(
                f"deadline-header solve -> {status}, details={payload['details']}"
            )


if __name__ == "__main__":
    main()
