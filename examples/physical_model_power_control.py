"""Physical (SINR) model with power control — the Theorem 17 pipeline.

Scenario: 24 links must share 3 channels under SINR constraints with
α = 3, β = 1.5, and the auctioneer also chooses transmission powers.

Pipeline (Section 4.3 + Theorem 17):
 1. build the Theorem 17 edge-weighted conflict graph (τ-scaled weights,
    decreasing-length ordering, measured ρ certificate);
 2. solve LP (4) and round with Algorithm 2, finish with Algorithm 3;
 3. per channel, run Kesselheim's recursive power assignment on the
    winners and verify every SINR constraint;
 4. cross-check with the exact spectral-radius power-control oracle.

Run:  python examples/physical_model_power_control.py
"""

import numpy as np

from repro import (
    AuctionProblem,
    PhysicalModel,
    SpectrumAuctionSolver,
    kesselheim_power_assignment,
    min_power_assignment,
    power_control_structure,
    random_links,
    random_xor_valuations,
)

ALPHA, BETA = 3.0, 1.5


def main() -> None:
    links = random_links(24, seed=42, length_range=(0.02, 0.07))
    structure = power_control_structure(links, alpha=ALPHA, beta=BETA)
    print(f"Theorem 17 weighted conflict graph, measured rho = {structure.rho:.2f}")

    k = 2
    problem = AuctionProblem(structure, k, random_xor_valuations(24, k, seed=43))
    result = SpectrumAuctionSolver(problem).solve(seed=44, derandomize=True)

    print(f"LP (4) optimum: {result.lp_value:.1f}")
    print(f"welfare:        {result.welfare:.1f}")
    print(f"Algorithm 3 rounds: {result.rounds_algorithm3}")
    print(f"SINR verified on every channel: {result.sinr_feasible}")

    physical = PhysicalModel(links, ALPHA, BETA)
    for j in range(k):
        members = sorted(v for v, s in result.allocation.items() if j in s)
        if not members:
            print(f"\nchannel {j}: unused")
            continue
        powers = result.channel_powers[j]
        sinrs = physical.sinr(np.array(members), powers)
        print(f"\nchannel {j}: links {members}")
        for m, s in zip(members, sinrs):
            print(
                f"  link {m:2d}: length={links.lengths[m]:.3f} "
                f"power={powers[m]:.3e} SINR={s:.2f} (β={BETA})"
            )

        # Cross-check: the exact oracle agrees the set is feasible, and its
        # minimal powers also satisfy the constraints.
        feasible, min_powers = min_power_assignment(links, members, ALPHA, BETA)
        assert feasible and physical.is_feasible(members, min_powers)
        if len(members) > 1:
            # With ν = 0 powers are scale-free, so compare SINR margins
            # instead of raw magnitudes.
            kp = kesselheim_power_assignment(links, members, ALPHA, BETA)
            sinr_k = float(physical.sinr(np.array(members), kp).min())
            sinr_m = float(physical.sinr(np.array(members), min_powers).min())
            print(
                f"  min SINR: Kesselheim={sinr_k:.2f}, exact-oracle powers="
                f"{sinr_m:.2f} (both >= β={BETA})"
            )


if __name__ == "__main__":
    main()
