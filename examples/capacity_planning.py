"""Capacity planning: how many channels does this market need?

A regulator question the paper's machinery answers from both sides:

* **scheduling** (serve *everyone*): greedy peeling over the conflict
  structure gives an upper bound on the channels required to grant every
  request — the "no scarcity" operating point;
* **auction** (k fixed): sweeping k through the auction shows how welfare
  approaches the no-scarcity total, i.e. where additional spectrum stops
  buying welfare.

Run:  python examples/capacity_planning.py
"""

from repro import (
    AuctionProblem,
    SpectrumAuctionSolver,
    protocol_model,
    random_links,
)
from repro.core.scheduling import schedule_all
from repro.util.tables import Table
from repro.valuations.generators import random_unit_demand_valuations


def main() -> None:
    n = 40
    links = random_links(n, seed=21, length_range=(0.02, 0.08))
    structure = protocol_model(links, delta=1.0)

    schedule = schedule_all(structure)
    assert schedule.validate(structure.graph)
    k_all = schedule.num_channels
    print(f"{n} bidders; serving everyone needs {k_all} channels (greedy peeling)")
    for j, cls in enumerate(schedule.classes):
        print(f"  channel {j}: {len(cls)} links")

    # Unit-demand bidders: each wants one channel.  The per-bidder value is
    # fixed across the k sweep (their best-channel value at k_max), so
    # "fraction of no-scarcity" is comparable between rows.
    k_max = k_all + 1
    base_vals = random_unit_demand_valuations(n, k_max, seed=22)
    no_scarcity = sum(v.max_value() for v in base_vals)
    table = Table(["k", "welfare", "winners", "fraction_of_no_scarcity"])
    for k in range(1, k_max + 1):
        from repro.valuations.additive import UnitDemandValuation

        vals = [UnitDemandValuation(v.per_channel[:k]) for v in base_vals]
        problem = AuctionProblem(structure, k, vals)
        result = SpectrumAuctionSolver(problem).solve(seed=23, derandomize=True)
        assert result.feasible
        winners = len([v for v, s in result.allocation.items() if s])
        table.add_row(k, result.welfare, winners, result.welfare / no_scarcity)
    print()
    print(table.render())
    print(
        f"\nwelfare saturates around k = {k_all} — the scheduler's channel"
        "\ncount marks where artificial scarcity ends, the paper's Section 1"
        "\nmotivation quantified."
    )


if __name__ == "__main__":
    main()
