"""Asymmetric channels and the Theorem 18 hardness construction (Section 6).

Builds the paper's lower-bound instance — the edges of a d-regular graph
split across k per-channel conflict graphs, with all-or-nothing bidders —
and runs the asymmetric O(kρ) algorithm on it.  Allocations of welfare b
correspond exactly to independent sets of size b in the base graph, which
is what makes the instance hard.

Run:  python examples/asymmetric_channels.py
"""

import numpy as np

from repro import VertexOrdering
from repro.core.asymmetric import AsymmetricAuctionLP, AsymmetricAuctionProblem, round_asymmetric
from repro.graphs.generators import random_regular_graph, theorem18_edge_partition
from repro.graphs.independence import max_weight_independent_set
from repro.valuations.generators import all_or_nothing_valuations


def main() -> None:
    n, d = 24, 6
    base = random_regular_graph(n, d, seed=1)
    _, alpha_g = max_weight_independent_set(base)
    print(f"base graph: {n} vertices, {d}-regular, alpha(G) = {int(alpha_g)}")

    for k in (1, 2, 3, 6):
        ordering = VertexOrdering.identity(n)
        channel_graphs = theorem18_edge_partition(base, k, ordering)
        rho = max(1, -(-d // k))  # ⌈d/k⌉ per Theorem 18
        problem = AsymmetricAuctionProblem(
            channel_graphs,
            ordering,
            rho,
            all_or_nothing_valuations(n, k),
        )
        solution = AsymmetricAuctionLP(problem).solve()

        rng = np.random.default_rng(100 + k)
        best_alloc, best_welfare = {}, -1.0
        for _ in range(50):
            alloc, _ = round_asymmetric(problem, solution, rng)
            w = problem.welfare(alloc)
            if w > best_welfare:
                best_alloc, best_welfare = alloc, w
        winners = sorted(v for v, s in best_alloc.items() if len(s) == k)
        assert base.is_independent(winners), "Theorem 18 correspondence broken"
        print(
            f"k={k}: rho=ceil(d/k)={rho}  LP={solution.value:6.2f}  "
            f"OPT=alpha(G)={int(alpha_g)}  best-of-50 welfare={best_welfare:4.1f}  "
            f"bound 4k*rho={4 * k * rho}"
        )
    print(
        "\nNote: per Theorem 18, no algorithm can beat ~kρ on these instances"
        "\nin general — welfare b always corresponds to an independent set of"
        "\nsize b in the base graph."
    )


if __name__ == "__main__":
    main()
