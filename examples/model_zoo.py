"""Model zoo: every Section 4 interference model, side by side.

For each model: build its conflict structure from one random scenario,
report the certified ρ against the measured ρ(π) of the certified
ordering, then run the same 2-channel auction through the solver.

Run:  python examples/model_zoo.py
"""

from repro import (
    AuctionProblem,
    SpectrumAuctionSolver,
    civilized_distance2_model,
    disk_transmitter_model,
    distance2_coloring_model,
    distance2_matching_model,
    ieee80211_model,
    linear_power,
    physical_model_structure,
    power_control_structure,
    protocol_model,
    random_disk_instance,
    random_links,
    random_xor_valuations,
    rho_of_ordering,
    weighted_rho_of_ordering,
)
from repro.interference.civilized import CivilizedInstance
from repro.util.tables import Table


def main() -> None:
    links = random_links(20, seed=1, length_range=(0.02, 0.08))
    disks = random_disk_instance(20, seed=2, radius_range=(0.04, 0.12))
    civilized = CivilizedInstance.sample(20, r=0.15, s=0.08, seed=3)

    structures = {
        "protocol (Δ=1)": protocol_model(links, 1.0),
        "IEEE 802.11 (Δ=1)": ieee80211_model(links, 1.0),
        "disk transmitters": disk_transmitter_model(disks),
        "distance-2 coloring": distance2_coloring_model(disks),
        "distance-2 matching": distance2_matching_model(disks),
        "civilized dist-2": civilized_distance2_model(civilized),
        "physical, linear p": physical_model_structure(links, linear_power(links, 3.0)),
        "power control": power_control_structure(links),
    }

    table = Table(["model", "n", "certified_rho", "measured_rho", "welfare", "lp"])
    k = 2
    for name, structure in structures.items():
        from repro.interference.base import WeightedConflictStructure

        if isinstance(structure, WeightedConflictStructure):
            bounds = weighted_rho_of_ordering(structure.graph, structure.ordering)
            measured = round(bounds.upper, 2)
        else:
            measured = rho_of_ordering(structure.graph, structure.ordering)
        vals = random_xor_valuations(structure.n, k, seed=7)
        problem = AuctionProblem(structure, k, vals)
        result = SpectrumAuctionSolver(problem).solve(seed=8, derandomize=True)
        assert result.feasible
        table.add_row(
            name,
            structure.n,
            round(structure.rho, 2),
            measured,
            result.welfare,
            round(result.lp_value, 1),
        )
    print(table.render())
    print(
        "\nmeasured_rho <= certified_rho everywhere: the certificates the LP"
        "\nrelies on hold on sampled instances (E2-E5 sweep this claim)."
    )


if __name__ == "__main__":
    main()
