"""Truthful-in-expectation spectrum auction (Section 5, Lavi–Swamy).

Runs the full mechanism on a 12-bidder protocol-model instance:
LP → decomposition of x*/α into feasible integral allocations → scaled
VCG payments → sampling.  Then demonstrates truthfulness: a bidder's
exactly-computed expected utility never improves under misreports.

Run:  python examples/truthful_mechanism.py
"""

import numpy as np

from repro import (
    TruthfulMechanism,
    XORValuation,
    protocol_model,
    random_links,
    random_xor_valuations,
)


def main() -> None:
    links = random_links(12, seed=3, length_range=(0.04, 0.12))
    structure = protocol_model(links, delta=1.0)
    k = 3
    valuations = random_xor_valuations(12, k, seed=5, bids_per_bidder=2)

    mech = TruthfulMechanism(structure, k)
    outcome = mech.run(valuations, seed=8)
    dec = outcome.decomposition

    print(f"alpha (verified integrality gap): {outcome.alpha:.1f}")
    print(f"LP optimum b*: {outcome.lp_value:.1f}")
    print(f"decomposition pool: {len(dec.allocations)} feasible allocations")
    print(f"expected welfare (= b*/alpha): {dec.expected_welfare():.3f}")

    mass = dec.pair_mass()
    err = max(abs(mass[p] - dec.target[p]) for p in dec.target)
    print(f"pair-mass error vs x*/alpha: {err:.2e} (exact by construction)")

    print("\nper-bidder expected utilities and payments:")
    for v in range(12):
        ev = outcome.expected_value_for(v, valuations[v])
        pay = outcome.payments[v]
        print(f"  bidder {v:2d}: E[value]={ev:7.4f}  payment={pay:7.4f}  E[u]={ev - pay:7.4f}")

    sampled = outcome.sampled_allocation
    print(f"\nsampled allocation: { {v: sorted(s) for v, s in sampled.items()} }")

    # --- truthfulness demo -------------------------------------------------
    bidder = 1
    truth_u = outcome.expected_utility(bidder, valuations[bidder])
    print(f"\nbidder {bidder} truthful expected utility: {truth_u:.4f}")
    rng = np.random.default_rng(9)
    for trial in range(5):
        lied = list(valuations)
        fake_bids = {
            b: float(rng.integers(1, 200))
            for b in valuations[bidder].support()
        }
        lied[bidder] = XORValuation(k, fake_bids)
        lied_outcome = mech.run(lied, seed=10 + trial, sample=False)
        lie_u = lied_outcome.expected_utility(bidder, valuations[bidder])
        marker = "<= truthful (as proven)" if lie_u <= truth_u + 1e-9 else "VIOLATION!"
        print(f"  misreport {fake_bids}: E[u] = {lie_u:.4f}  {marker}")
        assert lie_u <= truth_u + 1e-6

    # --- fast path vs reference pipeline ----------------------------------
    # The default mechanism runs on the engine-compiled fast path (compiled
    # pricing, warm VCG probes, vectorized derandomization); the seed-era
    # pipeline survives as pricing="reference" and publishes the exact same
    # distribution — same marginals, same pool, same samples per seed.
    reference = TruthfulMechanism(structure, k, pricing="reference")
    ref_outcome = reference.run(valuations, seed=8)
    assert ref_outcome.decomposition.target == dec.target
    assert ref_outcome.sampled_allocation == sampled
    gap = float(np.abs(ref_outcome.payments - outcome.payments).max())
    print(f"\nfast vs reference pipeline: identical samples, payment gap {gap:.1e}")


if __name__ == "__main__":
    main()
