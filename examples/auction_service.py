"""Serve auction requests with the AuctionService.

Registers two metro scenes, drives a repeat-heavy Poisson trace through
the coalescing queue (threaded shard pool), then replays the same trace
through a no-cache/no-coalescing configuration to show what the caches
buy — a miniature of benchmarks/bench_service.py.

With ``--workers N`` (default 2) a final segment drives a distinct-heavy
trace through the multi-process shard pool (``executor="process"``):
N long-lived worker processes, each owning its HiGHS backend and caches,
with allocations bit-identical to the in-process path.  ``--workers 0``
skips the pool segment.  The service context manager — backed by the
pool's own ``atexit`` hook — guarantees no stray worker processes
outlive the example.

Run from the repository root:

    PYTHONPATH=src python examples/auction_service.py
    PYTHONPATH=src python examples/auction_service.py --workers 4
"""

from __future__ import annotations

import argparse

from repro.experiments.workloads import metro_disk_scene, metro_protocol_scene
from repro.service import AuctionService, poisson_trace


def build_service(**overrides) -> AuctionService:
    options = {
        "executor": "thread",
        "num_shards": 2,
        "coalesce_window": 0.01,
    }
    options.update(overrides)
    return AuctionService(**options)


def demo_process_pool(registry, scene_id: str, workers: int) -> None:
    """Distinct-heavy traffic on the GIL-free worker-process tier."""
    trace = poisson_trace(
        registry,
        [scene_id],
        k=4,
        rate=400.0,
        num_requests=12,
        seed=21,
        repeat_fraction=0.0,  # every request a fresh profile: cache-miss traffic
        unique_profiles=0,
    )
    pooled = build_service(
        registry=registry,
        executor="process",
        num_shards=workers,
        coalesce_window=0.0,
        max_batch=1,
    )
    serial = build_service(registry=registry, executor="serial", coalesce_window=0.0)
    # the with-blocks are the stray-process guard: close() joins every
    # worker (and the pool registers an atexit fallback besides)
    with pooled, serial:
        futures = [pooled.submit(item.request) for item in trace]
        pool_results = [f.result(timeout=300) for f in futures]
        serial_results = serial.run_trace(trace)
    assert [r.allocation for r in pool_results] == [
        r.allocation for r in serial_results
    ], "process pool must be placement-invariant"
    snap = pooled.metrics_snapshot()
    pool = snap["pool"]
    print(
        f"process pool ({workers} workers, {pool['start_method']}, "
        f"{pool['cores']} cores): {snap['requests_completed']} distinct "
        f"requests, {snap['throughput_rps']:.1f} req/s, "
        f"{pool['ipc_bytes_sent'] + pool['ipc_bytes_received']} IPC bytes, "
        f"jobs per worker {[w['jobs'] for w in pool['workers']]}"
    )
    print(
        f"pool allocations bit-identical to the serial path: "
        f"{len(pool_results)}/{len(trace)} requests match"
    )
    assert not any(w["alive"] for w in pooled._pool.stats()["workers"])


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the pool segment; 0 skips it "
        "(default %(default)s)",
    )
    args = parser.parse_args(argv)

    service = build_service()
    disk = service.register_scene(metro_disk_scene(150, seed=11))
    protocol = service.register_scene(metro_protocol_scene(150, seed=12))
    print(f"registered scenes {disk} (disk) and {protocol} (protocol)")

    trace = poisson_trace(
        service.registry,
        [disk, protocol],
        k=4,
        rate=400.0,
        num_requests=60,
        seed=7,
        repeat_fraction=0.85,
        unique_profiles=4,
    )
    print(f"trace: {len(trace)} requests over {trace.duration:.2f}s, "
          f"{len(trace.profile_keys())} reusable profiles")

    with service:
        results = service.run_trace(trace, realtime=True)
    welfare = sum(r.welfare for r in results)
    assert all(r.feasible for r in results)

    snap = service.metrics_snapshot()
    lat = snap["latency_seconds"]
    caches = snap["caches"]
    print(f"served {snap['requests_completed']} requests, total welfare {welfare:.0f}")
    print(f"throughput {snap['throughput_rps']:.1f} req/s | latency "
          f"p50 {lat['p50'] * 1e3:.1f}ms p95 {lat['p95'] * 1e3:.1f}ms "
          f"p99 {lat['p99'] * 1e3:.1f}ms")
    print(f"problem cache hit rate {caches['problems']['hit_rate']:.0%} "
          f"({caches['problems']['hits']} hits, "
          f"{caches['problems']['misses']} misses), mean batch "
          f"{snap['mean_batch_size']:.1f}")

    # same trace, cold configuration: every request recompiles and re-solves
    baseline = build_service(
        executor="serial",
        coalesce_window=0.0,
        structure_cache_size=0,
        problem_cache_size=0,
    )
    baseline.registry = service.registry  # same scenes
    baseline_results = baseline.run_trace(trace)  # simulated (no sleeping)
    assert sum(r.welfare for r in baseline_results) > 0
    cold = baseline.metrics_snapshot()
    print(f"no-cache/no-coalescing baseline: {cold['throughput_rps']:.1f} req/s "
          f"vs {snap['throughput_rps']:.1f} req/s served "
          f"({cold['caches']['problems']['hits']} cache hits by construction)")

    if args.workers > 0:
        demo_process_pool(service.registry, disk, args.workers)


if __name__ == "__main__":
    main()
