"""Quickstart: a secondary spectrum auction in the protocol model.

Builds 30 random wireless links in the unit square, derives the protocol
model's conflict graph with its certified inductive independence number,
runs the paper's LP + rounding pipeline for 4 channels, and reports welfare
against the LP upper bound and Theorem 3's guarantee.

Run:  python examples/quickstart.py
"""

from repro import (
    AuctionProblem,
    SpectrumAuctionSolver,
    protocol_model,
    random_links,
    random_xor_valuations,
    rho_of_ordering,
)


def main() -> None:
    # 1. Geometry: 30 sender→receiver links in the unit square.
    links = random_links(30, seed=7, length_range=(0.02, 0.08))

    # 2. Interference: protocol model with guard-zone parameter Δ = 1.
    #    The structure carries the conflict graph, the decreasing-length
    #    ordering π, and Proposition 13's certified ρ.
    structure = protocol_model(links, delta=1.0)
    print(f"conflict graph: n={structure.graph.n}, m={structure.graph.m}")
    print(f"certified rho = {structure.rho}  ({structure.rho_source})")
    print(f"measured rho(pi) = {rho_of_ordering(structure.graph, structure.ordering)}")

    # 3. Bidders: XOR valuations over bundles of k = 4 channels.
    k = 4
    valuations = random_xor_valuations(30, k, seed=11)
    problem = AuctionProblem(structure, k, valuations)

    # 4. Solve: LP (1) + Algorithm 1 (best of 5 randomized roundings).
    solver = SpectrumAuctionSolver(problem)
    result = solver.solve(seed=13, rounding_attempts=5)

    print(f"\nLP optimum (fractional upper bound): {result.lp_value:.1f}")
    print(f"achieved welfare:                    {result.welfare:.1f}")
    print(f"feasible (re-validated):             {result.feasible}")
    print(f"Theorem 3 guarantee factor 8√kρ:     {result.guarantee:.1f}")
    print(f"empirical LP/welfare ratio:          {result.lp_ratio:.2f}")

    # 5. The deterministic variant meets the bound with certainty — and is
    #    much stronger in practice (the randomized scale 2√kρ is built for
    #    the worst case; see ablation A3).
    det = solver.solve(derandomize=True)
    print(f"\nderandomized welfare: {det.welfare:.1f} (deterministic)")
    assert det.meets_guarantee()

    winners = {v: sorted(s) for v, s in det.allocation.items() if s}
    print(f"{len(winners)} winners (derandomized):")
    for v, channels in sorted(winners.items()):
        print(f"  bidder {v:2d} <- channels {channels}")


if __name__ == "__main__":
    main()
