"""A6 — ordering-quality sensitivity of the full pipeline."""

from conftest import run_and_record

from repro.experiments import run_a6_ordering_sensitivity


def test_a6_ordering(benchmark):
    out = run_and_record(benchmark, run_a6_ordering_sensitivity, "a6")
    # The exact-optimal ordering never has larger rho than any heuristic.
    exact_rho = out.summary["exact-optimal"]["rho"]
    assert all(entry["rho"] >= exact_rho for entry in out.summary.values())
