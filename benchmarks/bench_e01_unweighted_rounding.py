"""E1 — Theorem 3: Algorithm 1 achieves b*/(8√k ρ); ratio scales ~√k."""

from conftest import run_and_record

from repro.experiments import run_e1


def test_e1_unweighted_rounding(benchmark):
    out = run_and_record(benchmark, run_e1, "e01")
    assert out.summary["all_bounds_met"]
