"""Gateway load benchmark — writes BENCH_gateway.json.

Drives the HTTP serving edge end to end — real localhost sockets, the
asyncio gateway (:mod:`repro.service.gateway`), the pooled keep-alive
client (:mod:`repro.service.client`) — with the same open-loop traces
the in-process service benchmarks use, so the wire layer's overhead and
scaling are measured against known baselines:

* ``gateway_pool_scaling_distinct_n1000`` — the acceptance scenario: a
  distinct-heavy n=1000 trace served over localhost HTTP with
  ``executor="process"`` at 1/2/4/… workers (capped at the host's cores,
  which are recorded).  The ≥2x-vs-one-worker criterion is only
  evaluable on a ≥2-core host; single-core runs record ``met: null``
  honestly, and the regression gate compares like-to-like by core count.
  Every worker count's results must be bit-identical to an in-process
  serial replay of the same trace — the wire layer may add latency, never
  different answers.
* ``gateway_overhead_n300`` — the same n=300 distinct trace through the
  in-process queue and through the gateway (serial backing both times):
  what HTTP framing + JSON costs relative to calling ``submit`` directly.
* ``smoke_n300`` (``--smoke``) — the CI scenario: n=300 distinct trace
  through a real localhost socket, replay parity asserted, accepted-
  request p99 recorded.  Cheap enough for the regression gate to
  re-measure on every PR.

Latency is reported from both vantage points: client-observed
(submit→response, includes the wire) and server-side (the service's own
submit→resolve metrics).  "Accepted-request p99" is the client-observed
p99 over requests that returned a result — shed requests fail fast and
would flatter the tail.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_gateway.py          # full
    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.experiments.workloads import metro_disk_scene
from repro.service import (
    AuctionService,
    GatewayServer,
    SceneRegistry,
    SyncGatewayClient,
    poisson_trace,
)

OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_gateway.json"

# acceptance: process executor over the gateway >= 2x one-worker throughput
# on distinct-heavy traffic — only evaluable when there are cores to scale to
GATEWAY_MIN_SPEEDUP = 2.0
GATEWAY_MIN_CORES = 2


def _distinct_trace(registry, scene_id, *, k, num_requests, trace_seed):
    return poisson_trace(
        registry,
        [scene_id],
        k=k,
        rate=500.0,
        num_requests=num_requests,
        seed=trace_seed,
        repeat_fraction=0.0,
        unique_profiles=0,
    )


def _queue_service(registry, executor: str, shards: int) -> AuctionService:
    # max_batch=1 keeps every request an independent job (same configuration
    # as the bench_service pool scenarios, so numbers are comparable)
    return AuctionService(
        registry=registry,
        executor=executor,
        num_shards=shards,
        coalesce_window=0.0,
        max_batch=1,
    )


def _drive_gateway(
    service: AuctionService, trace, *, max_connections: int = 32
) -> tuple[list, dict]:
    """Open-loop max-rate drive through a real localhost socket.

    Starts a gateway over ``service``, submits every request up front via
    the pooled client (arrival stamps ignored — saturation, like the
    in-process ``_drive_queue``), and measures client-observed latency
    per request.  The first request is replayed once untimed: it spawns
    the worker pool under ``executor="process"``, and that is startup
    cost, not steady-state throughput.
    """
    with GatewayServer(service) as server:
        with SyncGatewayClient(
            port=server.port, max_connections=max_connections
        ) as client:
            client.solve(trace[0].request)
            service.metrics.reset()
            latencies: list[float] = []  # appended from client-loop callbacks
            start = time.perf_counter()
            futures = []
            for item in trace:
                t0 = time.perf_counter()
                future = client.submit(item.request)
                future.add_done_callback(
                    lambda _f, t0=t0: latencies.append(time.perf_counter() - t0)
                )
                futures.append(future)
            results = [f.result(timeout=600) for f in futures]
            wall = time.perf_counter() - start
        counters = server.gateway.counters()
    snap = service.metrics_snapshot()
    server_lat = snap["latency_seconds"]
    client_lat = np.array(latencies)
    summary = {
        "requests": len(results),
        "wall_seconds": wall,
        "throughput_rps": len(results) / wall,
        "client_latency_p50_ms": float(np.percentile(client_lat, 50)) * 1e3,
        "client_latency_p95_ms": float(np.percentile(client_lat, 95)) * 1e3,
        "client_latency_p99_ms": float(np.percentile(client_lat, 99)) * 1e3,
        "server_latency_p99_ms": server_lat["p99"] * 1e3,
        "gateway_counters": counters,
        "total_welfare": float(sum(r.welfare for r in results)),
        "all_feasible": bool(all(r.feasible for r in results)),
    }
    pool = snap.get("pool")
    if pool is not None:
        summary["pool_stats"] = {
            "restarts": pool["restarts"],
            "failed_batches": pool["failed_batches"],
            "jobs_per_worker": [w["jobs"] for w in pool["workers"]],
        }
    return results, summary


def _drive_queue(service: AuctionService, trace) -> tuple[list, dict]:
    """In-process reference drive: same saturation protocol, no socket."""
    service.submit(trace[0].request).result(timeout=600)
    service.metrics.reset()
    start = time.perf_counter()
    futures = [service.submit(item.request) for item in trace]
    results = [f.result(timeout=600) for f in futures]
    wall = time.perf_counter() - start
    snap = service.metrics_snapshot()
    return results, {
        "requests": len(results),
        "wall_seconds": wall,
        "throughput_rps": len(results) / wall,
        "server_latency_p99_ms": snap["latency_seconds"]["p99"] * 1e3,
        "total_welfare": float(sum(r.welfare for r in results)),
        "all_feasible": bool(all(r.feasible for r in results)),
    }


def _reference_results(registry, trace) -> list:
    """The canonical in-process serial replay the gateway must match."""
    service = _queue_service(registry, "serial", 1)
    try:
        results, _ = _drive_queue(service, trace)
    finally:
        service.close()
    return results


def _worker_counts(cores: int) -> list[int]:
    return [c for c in (1, 2, 4, 8) if c <= cores] or [1]


def bench_pool_scaling(
    n: int = 1000,
    *,
    k: int = 6,
    num_requests: int = 16,
    scene_seed: int = 1000,
    trace_seed: int = 44,
) -> dict:
    """Distinct-heavy trace over localhost HTTP, process pool at 1..N workers.

    Replays the *identical* trace (same valuations, same per-request
    seeds) at every worker count; results are compared against an
    in-process serial replay with full ``AuctionResponse`` equality
    (``timing`` excluded by the schema), so "bit-identical across the
    wire" is an assertion, not a hope.
    """
    cores = os.cpu_count() or 1
    counts = _worker_counts(cores)
    registry = SceneRegistry()
    scene_id = registry.register(metro_disk_scene(n, seed=scene_seed))
    trace = _distinct_trace(
        registry, scene_id, k=k, num_requests=num_requests, trace_seed=trace_seed
    )
    reference = _reference_results(registry, trace)

    entry: dict = {
        "workload": (
            f"{num_requests} distinct-profile requests, 1 metro disk scene "
            f"n={n}, k={k}, open-loop max rate over localhost HTTP, "
            f"executor=process, max_batch=1"
        ),
        "cores": cores,
        "worker_counts": counts,
        "pool": {},
    }
    for workers in counts:
        service = _queue_service(registry, "process", workers)
        try:
            results, summary = _drive_gateway(service, trace)
        finally:
            service.close()
        assert results == reference, (
            f"gateway replay ({workers} workers) diverged from the "
            "in-process serial replay"
        )
        summary["identical_to_in_process"] = True
        entry["pool"][str(workers)] = summary
    best_workers = max(counts, key=lambda w: entry["pool"][str(w)]["throughput_rps"])
    one = entry["pool"]["1"]["throughput_rps"]
    entry["best_workers"] = best_workers
    entry["speedup_vs_one_worker"] = (
        entry["pool"][str(best_workers)]["throughput_rps"] / one
    )
    entry["accepted_p99_ms"] = entry["pool"][str(best_workers)][
        "client_latency_p99_ms"
    ]
    entry["criterion"] = (
        f"process executor over the gateway >= {GATEWAY_MIN_SPEEDUP}x "
        f"one-worker throughput on the distinct-heavy n={n} trace; evaluable "
        f"only on hosts with >= {GATEWAY_MIN_CORES} cores (cores recorded "
        "above); gateway results bit-identical to in-process replay"
    )
    entry["met"] = (
        entry["speedup_vs_one_worker"] >= GATEWAY_MIN_SPEEDUP
        if cores >= GATEWAY_MIN_CORES
        else None
    )
    return entry


def bench_overhead(
    n: int = 300,
    *,
    k: int = 6,
    num_requests: int = 16,
    scene_seed: int = 1200,
    trace_seed: int = 47,
) -> dict:
    """What the wire costs: in-process queue vs gateway, serial backing."""
    registry = SceneRegistry()
    scene_id = registry.register(metro_disk_scene(n, seed=scene_seed))
    trace = _distinct_trace(
        registry, scene_id, k=k, num_requests=num_requests, trace_seed=trace_seed
    )
    inproc_service = _queue_service(registry, "serial", 1)
    try:
        inproc_results, inproc = _drive_queue(inproc_service, trace)
    finally:
        inproc_service.close()
    gateway_service = _queue_service(registry, "serial", 1)
    try:
        gateway_results, gateway = _drive_gateway(gateway_service, trace)
    finally:
        gateway_service.close()
    assert gateway_results == inproc_results, (
        "gateway replay diverged from the in-process replay"
    )
    return {
        "workload": (
            f"{num_requests} distinct-profile requests, 1 metro disk scene "
            f"n={n}, k={k}, serial backing, in-process queue vs localhost HTTP"
        ),
        "in_process": inproc,
        "gateway": gateway,
        "overhead_factor": inproc["throughput_rps"] / gateway["throughput_rps"],
        "identical_results": True,
    }


def bench_smoke(
    n: int = 300,
    *,
    k: int = 6,
    num_requests: int = 24,
    scene_seed: int = 1200,
    trace_seed: int = 42,
) -> dict:
    """Budgeted CI scenario: n=300 distinct trace through a real socket.

    Pins replay parity (gateway results == in-process serial replay, full
    response equality) and records gateway throughput plus the accepted-
    request p99.  Cheap enough for the CI regression gate to re-measure.
    """
    cores = os.cpu_count() or 1
    registry = SceneRegistry()
    scene_id = registry.register(metro_disk_scene(n, seed=scene_seed))
    trace = _distinct_trace(
        registry, scene_id, k=k, num_requests=num_requests, trace_seed=trace_seed
    )
    reference = _reference_results(registry, trace)
    service = _queue_service(registry, "serial", 1)
    try:
        results, summary = _drive_gateway(service, trace)
    finally:
        service.close()
    identical = results == reference
    assert identical, "gateway smoke diverged from the in-process replay"
    return {
        "workload": (
            f"{num_requests} distinct-profile requests, 1 metro disk scene "
            f"n={n}, k={k}, serial backing over localhost HTTP"
        ),
        "cores": cores,
        "gateway": summary,
        "accepted_p99_ms": summary["client_latency_p99_ms"],
        "replay_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="n=300 trace through a real localhost socket only; exit nonzero "
        "on replay divergence or infeasible results",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        smoke = bench_smoke()
        ok = smoke["replay_identical"] and smoke["gateway"]["all_feasible"]
        print(
            f"gateway smoke n=300: {smoke['gateway']['throughput_rps']:.2f} rps "
            f"over localhost HTTP, accepted p99 {smoke['accepted_p99_ms']:.0f}ms, "
            f"replay {'identical' if smoke['replay_identical'] else 'DIVERGED'} "
            f"-> {'OK' if ok else 'FAIL'}"
        )
        return 0 if ok else 1

    overhead = bench_overhead()
    print(
        f"gateway overhead n=300: {overhead['overhead_factor']:.2f}x vs "
        f"in-process ({overhead['gateway']['throughput_rps']:.2f} vs "
        f"{overhead['in_process']['throughput_rps']:.2f} rps)",
        flush=True,
    )
    scaling = bench_pool_scaling()
    print(
        f"gateway pool scaling distinct n=1000 ({scaling['cores']} cores): "
        f"{scaling['speedup_vs_one_worker']:.2f}x vs one worker at "
        f"{scaling['best_workers']} workers, accepted p99 "
        f"{scaling['accepted_p99_ms']:.0f}ms "
        f"(criterion {'n/a: <2 cores' if scaling['met'] is None else scaling['met']})",
        flush=True,
    )
    smoke = bench_smoke()

    results = {
        "config": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cores": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "gateway_overhead_n300": overhead,
        "gateway_pool_scaling_distinct_n1000": scaling,
        "smoke_n300": smoke,
        "headline": {
            "criterion": scaling["criterion"],
            "cores": scaling["cores"],
            "speedup_vs_one_worker": scaling["speedup_vs_one_worker"],
            "best_workers": scaling["best_workers"],
            "accepted_p99_ms": scaling["accepted_p99_ms"],
            "replay_identical": smoke["replay_identical"],
            "met": scaling["met"],
        },
    }
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results["headline"], indent=2))
    print(f"wrote {OUTPUT}")
    # met=None (too few cores) is recorded honestly, not a failure
    ok = (
        results["headline"]["met"] is not False
        and results["headline"]["replay_identical"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
