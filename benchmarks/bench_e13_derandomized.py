"""E13 — derandomized rounding meets Theorem 3 deterministically."""

from conftest import run_and_record

from repro.experiments import run_e13


def test_e13_derandomized(benchmark):
    out = run_and_record(benchmark, run_e13, "e13")
    assert out.summary["all_bounds_met"]
