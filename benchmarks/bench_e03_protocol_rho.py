"""E3 — Proposition 13: protocol-model ρ within ⌈π/arcsin(Δ/2(Δ+1))⌉ − 1."""

from conftest import run_and_record

from repro.experiments import run_e3


def test_e3_protocol_rho(benchmark):
    out = run_and_record(benchmark, run_e3, "e03")
    assert out.summary["all_within_bound"]
