"""A4 — ablation: Theorem 17 weights raw vs clipped at 1."""

from conftest import run_and_record

from repro.experiments import run_a4_clip_ablation


def test_a4_clip_ablation(benchmark):
    out = run_and_record(benchmark, run_a4_clip_ablation, "a4")
    assert out.summary["clipped"]["rho"] <= out.summary["raw"]["rho"]
