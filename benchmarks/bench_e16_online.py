"""E16 — online greedy baseline vs offline exact optimum (extension)."""

from conftest import run_and_record

from repro.experiments import run_e16


def test_e16_online(benchmark):
    out = run_and_record(benchmark, run_e16, "e16")
    assert 0 < out.summary["mean_competitive_ratio"] <= 1.0 + 1e-9
