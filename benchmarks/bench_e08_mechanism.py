"""E8 — Section 5: Lavi–Swamy decomposition exact; truthful in expectation."""

from conftest import run_and_record

from repro.experiments import run_e8


def test_e8_mechanism(benchmark):
    out = run_and_record(benchmark, run_e8, "e08")
    assert out.summary["mass_error"] <= 1e-7
    assert out.summary["welfare_error"] <= 1e-7
    assert out.summary["max_misreport_gain"] <= 1e-6
