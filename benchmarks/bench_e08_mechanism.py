"""E8 — Section 5: Lavi–Swamy decomposition exact; truthful in expectation.

Since PR 5 the experiment runs on the compiled fast path (cold-persistent
pricing + warm VCG probes) and additionally checks payoff/marginal parity
against the preserved ``pricing="reference"`` pipeline on the same small
instance.
"""

from conftest import run_and_record

from repro.experiments import run_e8


def test_e8_mechanism(benchmark):
    out = run_and_record(benchmark, run_e8, "e08")
    assert out.summary["mass_error"] <= 1e-7
    assert out.summary["welfare_error"] <= 1e-7
    assert out.summary["max_misreport_gain"] <= 1e-6
    # fast path vs reference (pre-fast-path) parity on the same instance
    assert out.summary["marginals_identical"]
    assert out.summary["pool_identical"]
    assert out.summary["payment_parity_gap"] <= 1e-6
