"""E9 — Theorem 18 / Section 6: asymmetric channels at O(kρ)."""

from conftest import run_and_record

from repro.experiments import run_e9


def test_e9_asymmetric(benchmark):
    out = run_and_record(benchmark, run_e9, "e09")
    assert out.summary["all_bounds_met"]
