"""Batch-engine performance baseline — writes BENCH_engine.json.

Measures the compile-once/solve-many engine against the seed pipeline on
50 protocol-model auction solves (n=40, k=8) in two shapes, plus a
vectorized-vs-loop rounding microbenchmark, and persists machine-readable
numbers so future PRs have a trajectory to compare against:

* ``repeat_trace_50`` — the acceptance workload: 50 solve calls over 10
  auctions, 5 solves each.  This is the repeated-solve shape the engine
  exists for (ISSUE motivation: E7 re-solves the identical LP on every
  repetition; mechanism sampling and misreport probes re-solve per
  reported profile) — the naive pipeline rebuilds and re-solves the LP
  all 50 times, the engine compiles and solves each distinct LP once.
* ``distinct_fleet_50`` — the adversarial lower bound: 50 auctions with
  50 distinct valuation profiles (5 regions × 10 epochs), so the engine
  must solve 50 distinct LPs and only the structure compilation, the
  vectorized assembly/rounding, and the persistent LP backend can help.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_engine.py

The "naive" baseline replicates the seed ``SpectrumAuctionSolver.solve``
exactly — fresh ``AuctionLP`` build + scipy solve + per-attempt Python
rounding + feasibility re-validation per call — and runs on its own
identically-generated problem objects so neither path warms caches for
the other.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

import numpy as np

from repro.core.auction_lp import AuctionLP
from repro.core.conflict_resolution import make_fully_feasible
from repro.core.rounding import round_unweighted, round_weighted
from repro.engine import (
    BatchAuctionEngine,
    compile_auction,
    fast_backend_available,
    round_batch,
    stack_draws,
    warm_start_stats,
)
from repro.experiments.workloads import (
    protocol_auction,
    protocol_auction_fleet,
    reauction_fleet,
)
from repro.util.rng import ensure_rng, spawn_rngs

OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_engine.json"


def naive_solve(problem, seed, rounding_attempts: int = 1):
    """The seed pipeline verbatim: rebuild and re-solve everything per call,
    including the final feasibility re-validation the seed solver ran."""
    rng = ensure_rng(seed)
    solution = AuctionLP(problem).solve()
    best_alloc, best_welfare = {}, -1.0
    for _ in range(max(1, rounding_attempts)):
        if problem.is_weighted:
            partly, _ = round_weighted(problem, solution, rng)
            allocation = make_fully_feasible(problem, partly).allocation
        else:
            allocation, _ = round_unweighted(problem, solution, rng)
        welfare = problem.welfare(allocation)
        if welfare > best_welfare:
            best_alloc, best_welfare = allocation, welfare
    assert problem.is_feasible(best_alloc)
    return best_alloc, max(best_welfare, 0.0), solution.value


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def bench_batch_50(regions: int = 5, epochs: int = 10, n: int = 40, k: int = 8):
    """Acceptance workload: 50 auctions, one per region/epoch.

    Naive and engine each get their own identically-generated fleet so
    neither path warms caches (compiled structures, valuation closures)
    for the other, and both consume the same spawned per-instance seed
    streams so the welfare totals must agree exactly.
    """
    fleet_naive = protocol_auction_fleet(regions, epochs, n, k, seed=900)
    fleet_engine = protocol_auction_fleet(regions, epochs, n, k, seed=900)
    fleet_thread = protocol_auction_fleet(regions, epochs, n, k, seed=900)
    seeds = np.random.SeedSequence(5).spawn(len(fleet_naive))
    # warm both code paths (imports, numpy/scipy dispatch) on a throwaway pair
    warm_naive = protocol_auction_fleet(1, 1, n, k, seed=899)
    warm_engine = protocol_auction_fleet(1, 1, n, k, seed=899)
    naive_solve(warm_naive[0], seed=1)
    BatchAuctionEngine(executor="serial").solve_many(warm_engine, seed=1)

    def run_naive():
        return sum(
            naive_solve(p, seed=np.random.default_rng(s))[1]
            for p, s in zip(fleet_naive, seeds)
        )

    naive_time, naive_welfare = _timed(run_naive)
    engine = BatchAuctionEngine(executor="serial")
    engine_time, batch = _timed(lambda: engine.solve_many(fleet_engine, seed=5))
    thread_engine = BatchAuctionEngine(executor="thread", max_workers=4)
    thread_time, _ = _timed(lambda: thread_engine.solve_many(fleet_thread, seed=5))
    assert batch.total_welfare == naive_welfare, "engine diverged from seed pipeline"
    return {
        "workload": f"{regions} regions x {epochs} epochs, n={n}, k={k}",
        "instances": len(fleet_naive),
        "naive_seconds": naive_time,
        "engine_serial_seconds": engine_time,
        "engine_thread_seconds": thread_time,
        "speedup_serial": naive_time / engine_time,
        "speedup_thread": naive_time / thread_time,
        "total_welfare": batch.total_welfare,
        "lp_solves": batch.lp_solves,
    }


def bench_repeat_solves(unique: int = 10, repeats: int = 5, n: int = 40, k: int = 8):
    """Acceptance workload — E7/mechanism shape: instances solved repeatedly.

    Both paths run the same 50 solve calls with the same spawned seed per
    call; welfare totals must agree exactly.
    """
    problems = [protocol_auction(n, k, seed=2000 + i) for i in range(unique)]
    workload_naive = [p for p in problems for _ in range(repeats)]
    problems2 = [protocol_auction(n, k, seed=2000 + i) for i in range(unique)]
    workload_engine = [p for p in problems2 for _ in range(repeats)]
    seeds = np.random.SeedSequence(7).spawn(len(workload_naive))

    def run_naive():
        return sum(
            naive_solve(p, seed=np.random.default_rng(s))[1]
            for p, s in zip(workload_naive, seeds)
        )

    naive_time, naive_welfare = _timed(run_naive)
    engine = BatchAuctionEngine(executor="serial")
    engine_time, batch = _timed(lambda: engine.solve_many(workload_engine, seed=7))
    assert batch.total_welfare == naive_welfare, "engine diverged from seed pipeline"
    return {
        "workload": f"{unique} unique auctions x {repeats} solves each, n={n}, k={k}",
        "instances": len(workload_naive),
        "naive_seconds": naive_time,
        "engine_serial_seconds": engine_time,
        "speedup_serial": naive_time / engine_time,
        "total_welfare": batch.total_welfare,
        "lp_solves": batch.lp_solves,
    }


def bench_warm_reauction(epochs: int = 50, n: int = 40, k: int = 8):
    """Warm-start workload: one region, stable bundle interests, re-priced
    bids each epoch — consecutive LPs share their constraint matrix, so the
    warm engine mutates the loaded HiGHS objective and re-solves from the
    previous basis.

    The cold engine stays bit-identical to the naive pipeline (asserted on
    total welfare); the warm engine is asserted on the per-epoch LP optima
    (its vertices, and hence allocations, are not pinned — see
    ``BatchAuctionEngine(lp_warm_start=...)``).
    """
    fleet_naive = reauction_fleet(epochs, n, k, seed=321)
    fleet_cold = reauction_fleet(epochs, n, k, seed=321)
    fleet_warm = reauction_fleet(epochs, n, k, seed=321)
    seeds = np.random.SeedSequence(9).spawn(epochs)
    warm_n = reauction_fleet(1, n, k, seed=320)
    naive_solve(warm_n[0], seed=1)
    BatchAuctionEngine(executor="serial").solve_many(
        reauction_fleet(1, n, k, seed=320), seed=1
    )

    def run_naive():
        return sum(
            naive_solve(p, seed=np.random.default_rng(s))[1]
            for p, s in zip(fleet_naive, seeds)
        )

    naive_time, naive_welfare = _timed(run_naive)
    cold_engine = BatchAuctionEngine(executor="serial")
    cold_time, cold_batch = _timed(lambda: cold_engine.solve_many(fleet_cold, seed=9))
    stats_before = warm_start_stats()
    warm_engine = BatchAuctionEngine(executor="serial", lp_warm_start=True)
    warm_time, warm_batch = _timed(lambda: warm_engine.solve_many(fleet_warm, seed=9))
    stats_after = warm_start_stats()
    warm_hits = stats_after["warm"] - stats_before["warm"]
    assert cold_batch.total_welfare == naive_welfare, "cold engine diverged from seed"
    assert abs(warm_batch.total_lp_value - cold_batch.total_lp_value) < 1e-6 * max(
        1.0, cold_batch.total_lp_value
    ), "warm-started LP optima diverged"
    assert warm_hits >= epochs - 1, "warm path not exercised"
    return {
        "workload": f"{epochs} re-priced epochs of one region, n={n}, k={k}",
        "instances": epochs,
        "naive_seconds": naive_time,
        "engine_cold_seconds": cold_time,
        "engine_warm_seconds": warm_time,
        "speedup_cold": naive_time / cold_time,
        "speedup_warm": naive_time / warm_time,
        "warm_solves": warm_hits,
        "total_lp_value": cold_batch.total_lp_value,
        "total_welfare_cold": cold_batch.total_welfare,
        "total_welfare_warm": warm_batch.total_welfare,
    }


def bench_rounding(n: int = 40, k: int = 8, attempts: int = 200):
    """Vectorized rounding kernel vs the per-attempt Python loop."""
    problem = protocol_auction(n, k, seed=900)
    compiled = compile_auction(problem)
    solution = compiled.solve_lp()
    plan = compiled.rounding_plan(solution)

    def run_loop():
        return [
            round_unweighted(problem, solution, child)
            for child in spawn_rngs(11, attempts)
        ]

    def run_vectorized():
        return round_batch(
            compiled, plan, stack_draws(spawn_rngs(11, attempts), plan.width)
        )

    run_loop(), run_vectorized()  # warm both code paths
    loop_time, _ = _timed(run_loop)
    vector_time, _ = _timed(run_vectorized)
    return {
        "workload": f"{attempts} rounding attempts, n={n}, k={k}",
        "loop_seconds": loop_time,
        "vectorized_seconds": vector_time,
        "speedup": loop_time / vector_time,
    }


def main() -> int:
    results = {
        "config": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "fast_lp_backend": fast_backend_available(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "repeat_trace_50": bench_repeat_solves(),
        "distinct_fleet_50": bench_batch_50(),
        "warm_reauction_50": bench_warm_reauction(),
        "vectorized_rounding": bench_rounding(),
    }
    repeat = results["repeat_trace_50"]["speedup_serial"]
    distinct = results["distinct_fleet_50"]["speedup_serial"]
    warm = results["warm_reauction_50"]["speedup_warm"]
    results["headline"] = {
        "criterion": "engine >= 3x over 50 naive seed-pipeline "
        "SpectrumAuctionSolver-style solve calls (n=40, k=8 protocol auctions)",
        "repeat_trace_50": {"speedup": repeat, "met": repeat >= 3.0},
        "distinct_fleet_50": {"speedup": distinct, "met": distinct >= 3.0},
        "warm_reauction_50": {"speedup": warm, "met": warm >= 3.0},
        "note": "repeat_trace_50 re-solves identical problems (LPs cached); "
        "distinct_fleet_50 is the cold lower bound — all 50 LPs distinct, "
        "bit-identical to the seed pipeline, sped up by structure sharing, "
        "vectorized assembly/rounding, the persistent single-threaded HiGHS "
        "backend, and eager valuation closures; warm_reauction_50 re-prices "
        "one region's bids so consecutive LPs share their matrix and the "
        "warm-started backend mutates only the objective (optimal values "
        "asserted, vertices not pinned).",
    }
    met = repeat >= 3.0 and distinct >= 3.0
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nheadline: engine {repeat:.2f}x on the 50-solve repeat trace, "
          f"{distinct:.2f}x on 50 distinct auctions, "
          f"{warm:.2f}x warm-started re-auctions")
    print(f"wrote {OUTPUT}")
    return 0 if met else 1


if __name__ == "__main__":
    sys.exit(main())
