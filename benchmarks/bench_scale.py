"""Metro-scale scaling benchmark — writes BENCH_scale.json.

Measures the large-n fast path (spatial-index graph construction, sparse
compiled structures, size-aware LP solver selection) against the dense
seed-equivalent pipeline on metro disk-model auctions of growing n, and
persists the scaling curve.  Three configurations per n:

* ``dense_seed_equivalent`` — what the system did before the fast path:
  O(n²) distance-matrix graph construction, dense compile, simplex LP.
  This is the baseline of the ≥5x acceptance criterion.
* ``dense_auto_solver`` — dense construction but the new size-aware solver
  policy, isolating how much of the win is solver selection vs spatial
  indexing (reported for transparency).
* ``sparse_fast_path`` — KD-tree CSR graphs, sparse compile, auto solver.

Dense and sparse paths build the identical conflict graph and LP (pinned by
the parity tests), so the per-n welfare assertion cross-checks the whole
pipeline while timing it.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_scale.py            # full curve
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke    # CI: one
        n=2000 sparse end-to-end solve under a time budget (exit 1 on miss)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

import numpy as np

from repro.engine.compiled import (
    CompiledAuction,
    clear_auction_cache,
    clear_structure_cache,
)
from repro.experiments.workloads import metro_disk_auction

OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_scale.json"

FULL_SIZES = (500, 1000, 2000, 5000)
DENSE_MAX_N = 5000  # dense is O(n²); cap where we still measure it
SMOKE_N = 2000
SMOKE_BUDGET_SECONDS = 90.0


def run_path(n: int, k: int, method: str, solver: str, seed: int = 42) -> dict:
    """Build + compile + solve one metro auction; per-stage wall times."""
    clear_structure_cache()
    clear_auction_cache()
    t0 = time.perf_counter()
    problem = metro_disk_auction(n, k, seed=seed, method=method)
    t_build = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = CompiledAuction(problem)
    a, b, c = compiled._build_csc()
    t_compile = time.perf_counter() - t0

    t0 = time.perf_counter()
    raw = compiled._solve_raw(solver=solver)
    t_lp = time.perf_counter() - t0

    t0 = time.perf_counter()
    result = compiled.solve(seed=7, lp_solver=solver)  # LP cached: rounding only
    t_round = time.perf_counter() - t0

    return {
        "n": n,
        "k": k,
        "method": method,
        "solver": solver,
        "edges": problem.graph.m,
        "avg_degree": problem.graph.average_degree(),
        "lp_rows": int(a.shape[0]),
        "lp_cols": int(a.shape[1]),
        "lp_nnz": int(a.nnz),
        "graph_seconds": t_build,
        "compile_seconds": t_compile,
        "lp_seconds": t_lp,
        "round_validate_seconds": t_round,
        "end_to_end_seconds": t_build + t_compile + t_lp + t_round,
        "lp_value": raw.value,
        "welfare": result.welfare,
        "feasible": bool(result.feasible),
    }


def bench_curve(sizes=FULL_SIZES, k: int = 6) -> dict:
    points = []
    for n in sizes:
        sparse = run_path(n, k, method="spatial", solver="auto")
        entry = {"n": n, "sparse_fast_path": sparse}
        if n <= DENSE_MAX_N:
            dense_seed = run_path(n, k, method="dense", solver="simplex")
            dense_auto = run_path(n, k, method="dense", solver="auto")
            # same instance, same LP, same solver policy: the dense and
            # sparse builds must round to the identical outcome ...
            assert dense_auto["welfare"] == sparse["welfare"], "dense/sparse diverged"
            # ... and the seed-equivalent solver agrees on the LP optimum
            assert abs(dense_seed["lp_value"] - sparse["lp_value"]) < 1e-6 * max(
                1.0, abs(sparse["lp_value"])
            )
            entry["dense_seed_equivalent"] = dense_seed
            entry["dense_auto_solver"] = dense_auto
            entry["speedup_vs_dense_seed"] = (
                dense_seed["end_to_end_seconds"] / sparse["end_to_end_seconds"]
            )
            entry["speedup_vs_dense_auto"] = (
                dense_auto["end_to_end_seconds"] / sparse["end_to_end_seconds"]
            )
        points.append(entry)
        line = (
            f"n={n}: sparse {sparse['end_to_end_seconds']:.2f}s"
        )
        if "dense_seed_equivalent" in entry:
            line += (
                f", dense {entry['dense_seed_equivalent']['end_to_end_seconds']:.2f}s"
                f" ({entry['speedup_vs_dense_seed']:.1f}x)"
            )
        print(line, flush=True)
    return {"k": k, "points": points}


def smoke(n: int = SMOKE_N, k: int = 6, budget: float = SMOKE_BUDGET_SECONDS) -> int:
    """CI guard: one metro auction end-to-end on the sparse path."""
    t0 = time.perf_counter()
    entry = run_path(n, k, method="spatial", solver="auto")
    wall = time.perf_counter() - t0
    ok = wall <= budget and entry["feasible"]
    print(
        f"smoke n={n}: {wall:.1f}s (budget {budget:.0f}s), "
        f"welfare={entry['welfare']}, feasible={entry['feasible']} -> "
        f"{'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI smoke run")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()

    curve = bench_curve()
    largest = next(p for p in curve["points"] if p["n"] == 5000)
    results = {
        "config": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "scaling": curve,
        "headline": {
            "criterion": "sparse fast path >= 5x over the dense seed-equivalent "
            "path on an n=5000 disk-model auction, end-to-end in single-digit "
            "seconds",
            "n5000_speedup_vs_dense_seed": largest["speedup_vs_dense_seed"],
            "n5000_sparse_end_to_end_seconds": largest["sparse_fast_path"][
                "end_to_end_seconds"
            ],
            "met": largest["speedup_vs_dense_seed"] >= 5.0
            and largest["sparse_fast_path"]["end_to_end_seconds"] < 10.0,
        },
    }
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results["headline"], indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if results["headline"]["met"] else 1


if __name__ == "__main__":
    sys.exit(main())
