"""Truthful-mechanism benchmark — writes BENCH_mechanism.json.

Measures the Section 5 truthful-in-expectation mechanism on the compiled
fast path (PR 5) against the reference (pre-fast-path) pipeline:

* ``truthful_trace_n300`` — the acceptance scenario: a repeat-heavy
  Poisson trace of truthful requests (85% reuse one of 6 valuation
  profiles) against one n≈300 metro disk scene, replayed at maximum
  service rate.  The fast service prepares each profile's decomposition +
  payments once (compiled pricing, warm-started VCG probes, vectorized
  derandomization) and serves repeats by sampling; the baseline service
  recomputes the full reference mechanism — seed-era ``AuctionLP``
  rebuilds and per-bidder cold VCG solves — for every request, exactly
  the pre-PR cost.  Sampled allocations must be bit-identical between
  the two replays and payments equal to VCG-probe tolerance.
* ``truthful_n1000`` — one n=1000 metro disk truthful auction end to end
  on the fast path (LP → decomposition → payments → sample), which the
  reference pipeline cannot finish in reasonable time; the acceptance
  criterion is single-digit seconds.
* ``decomposition_parity`` — a direct ``pricing="approx"`` vs
  ``pricing="reference"`` decomposition on one instance: pool, weights,
  keep probabilities, and samples compared bit-for-bit (the same
  invariant ``tests/test_mechanism_parity.py`` pins across models).
* ``smoke_truthful_n150`` — a scaled-down trace cheap enough for the CI
  regression gate to re-measure (see check_regression.py).

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_mechanism.py            # full
    PYTHONPATH=src python benchmarks/bench_mechanism.py --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

import numpy as np

from repro.core.solver import SpectrumAuctionSolver
from repro.experiments.workloads import metro_disk_scene, metro_truthful_auction
from repro.mechanism.lavi_swamy import decompose_lp_solution
from repro.mechanism.truthful import TruthfulMechanism
from repro.service import AuctionService, SceneRegistry, poisson_trace

OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_mechanism.json"

HEADLINE_MIN_SPEEDUP = 4.0
SMOKE_MIN_SPEEDUP = 3.0
N1000_MAX_SECONDS = 10.0


def _service(registry: SceneRegistry, fast: bool) -> AuctionService:
    """The benchmark's two configurations of the same service."""
    options: dict = {"registry": registry, "executor": "serial"}
    if fast:
        options.update(coalesce_window=0.05, max_batch=16)
    else:  # baseline: no caches, no coalescing, reference mechanism pipeline
        options.update(
            coalesce_window=0.0,
            max_batch=1,
            structure_cache_size=0,
            problem_cache_size=0,
            mechanism_cache_size=0,
            mechanism_pricing="reference",
        )
    return AuctionService(**options)


def bench_truthful_trace(
    n: int,
    *,
    k: int = 4,
    num_requests: int = 36,
    repeat_fraction: float = 0.85,
    unique_profiles: int = 6,
    bids_per_bidder: int = 2,
    scene_seed: int = 1500,
    trace_seed: int = 51,
) -> dict:
    """Max-rate replay of one truthful Poisson trace, fast vs reference.

    Both configurations replay the *identical* trace (same valuations,
    same per-request sampling seeds) in simulated time.  The fast path's
    caching, coalescing, compiled pricing, and warm VCG probes are
    result-preserving: sampled allocations are asserted bit-identical and
    payments equal within probe tolerance.
    """
    registry = SceneRegistry()
    scene_id = registry.register(metro_disk_scene(n, seed=scene_seed))
    trace = poisson_trace(
        registry,
        [scene_id],
        k=k,
        rate=100.0,
        num_requests=num_requests,
        seed=trace_seed,
        repeat_fraction=repeat_fraction,
        unique_profiles=unique_profiles,
        bids_per_bidder=bids_per_bidder,
        mode="truthful",
    )
    entry: dict = {
        "workload": (
            f"{num_requests} truthful requests, 1 metro disk scene n={n}, "
            f"k={k}, repeat_fraction={repeat_fraction}, "
            f"{unique_profiles} reusable profiles, {bids_per_bidder} bids/bidder"
        ),
    }
    outcomes = {}
    for label, fast in (("baseline", False), ("fast", True)):
        service = _service(registry, fast)
        start = time.perf_counter()
        results = service.run_trace(trace)
        wall = time.perf_counter() - start
        outcomes[label] = results
        snap = service.metrics_snapshot()
        entry[label] = {
            "requests": snap["requests_completed"],
            "wall_seconds": wall,
            "throughput_rps": snap["requests_completed"] / wall,
            "latency_p50_ms": snap["latency_seconds"]["p50"] * 1e3,
            "latency_p95_ms": snap["latency_seconds"]["p95"] * 1e3,
            "mechanism_cache_hit_rate": snap["caches"]["mechanisms"]["hit_rate"],
            "expected_welfare": float(
                sum(r.decomposition.expected_welfare() for r in results)
            ),
        }
    fast_r, base_r = outcomes["fast"], outcomes["baseline"]
    samples_identical = all(
        f.sampled_allocation == b.sampled_allocation
        for f, b in zip(fast_r, base_r)
    )
    payment_gap = float(
        max(
            np.abs(f.payments - b.payments).max()
            for f, b in zip(fast_r, base_r)
        )
    )
    marginals_identical = all(
        f.decomposition.target == b.decomposition.target
        for f, b in zip(fast_r, base_r)
    )
    assert samples_identical, "fast path sampled different allocations"
    assert marginals_identical, "fast path published different marginals"
    assert payment_gap < 1e-6, f"payments diverged by {payment_gap}"
    entry["samples_identical"] = samples_identical
    entry["marginals_identical"] = marginals_identical
    entry["max_payment_gap"] = payment_gap
    entry["speedup"] = (
        entry["fast"]["throughput_rps"] / entry["baseline"]["throughput_rps"]
    )
    return entry


def bench_n1000(n: int = 1000, k: int = 4, seed: int = 1700) -> dict:
    """One n=1000 truthful metro disk auction end to end on the fast path."""
    problem = metro_truthful_auction(n, k, seed=seed)
    mechanism = TruthfulMechanism(problem.structure, problem.k)
    start = time.perf_counter()
    outcome = mechanism.run(problem.valuations, seed=1)
    wall = time.perf_counter() - start
    mass = outcome.decomposition.pair_mass()
    mass_error = max(
        (abs(mass[p] - t) for p, t in outcome.decomposition.target.items()),
        default=0.0,
    )
    return {
        "workload": f"metro_truthful_auction(n={n}, k={k}), single fast-path run",
        "wall_seconds": wall,
        "n": n,
        "k": k,
        "lp_value": float(outcome.lp_value),
        "decomposition_iterations": outcome.decomposition.iterations,
        "pool_size": len(outcome.decomposition.allocations),
        "pair_mass_error": float(mass_error),
        "revenue": float(outcome.payments.sum()),
        "winners_sampled": len(outcome.sampled_allocation),
    }


def bench_decomposition_parity(n: int = 200, k: int = 4, seed: int = 1600) -> dict:
    """Direct approx-vs-reference decomposition comparison on one instance."""
    problem = metro_truthful_auction(n, k, seed=seed)
    solution = SpectrumAuctionSolver(problem).solve_lp("explicit")
    timings = {}
    results = {}
    for mode in ("reference", "approx", "warm"):
        start = time.perf_counter()
        results[mode] = decompose_lp_solution(
            problem, solution, seed=7, pricing=mode
        )
        timings[mode] = time.perf_counter() - start
    ref, fast, warm = results["reference"], results["approx"], results["warm"]
    rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
    entry = {
        "workload": f"decompose x*/alpha, metro_truthful_auction(n={n}, k={k})",
        "iterations": ref.iterations,
        "pool_size": len(ref.allocations),
        "seconds_reference": timings["reference"],
        "seconds_approx": timings["approx"],
        "seconds_warm": timings["warm"],
        "decompose_speedup": timings["reference"] / timings["approx"],
        "pool_identical": ref.allocations == fast.allocations,
        "weights_identical": bool(np.array_equal(ref.weights, fast.weights)),
        "keep_identical": ref.keep_probability == fast.keep_probability,
        "samples_identical": all(
            ref.sample(rng_a) == fast.sample(rng_b) for _ in range(100)
        ),
        # the warm profile is not vertex-pinned; its guarantee is the exact
        # marginal, which we verify instead of bit-parity
        "warm_pair_mass_error": float(
            max(
                abs(m - warm.target[p])
                for p, m in warm.pair_mass().items()
            )
        ),
    }
    assert entry["pool_identical"] and entry["weights_identical"]
    assert entry["keep_identical"] and entry["samples_identical"]
    assert entry["warm_pair_mass_error"] < 1e-7
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small repeat-heavy truthful trace only; exit nonzero below "
        f"{SMOKE_MIN_SPEEDUP}x",
    )
    args = parser.parse_args(argv)

    # warm imports/HiGHS on a throwaway scene so neither config pays cold-start
    bench_truthful_trace(
        60, num_requests=4, unique_profiles=2, scene_seed=19, trace_seed=19
    )

    if args.smoke:
        smoke = bench_truthful_trace(
            150, num_requests=10, unique_profiles=4, scene_seed=1400, trace_seed=52
        )
        ok = smoke["speedup"] >= SMOKE_MIN_SPEEDUP and smoke["samples_identical"]
        print(
            f"mechanism smoke n=150: {smoke['speedup']:.2f}x "
            f"(floor {SMOKE_MIN_SPEEDUP}x), samples identical -> "
            f"{'OK' if ok else 'FAIL'}"
        )
        return 0 if ok else 1

    trace = bench_truthful_trace(300)
    print(
        f"truthful trace n=300: {trace['speedup']:.2f}x "
        f"({trace['fast']['throughput_rps']:.2f} vs "
        f"{trace['baseline']['throughput_rps']:.2f} rps), "
        f"samples identical: {trace['samples_identical']}",
        flush=True,
    )
    parity = bench_decomposition_parity()
    print(
        f"decomposition parity n=200: approx {parity['decompose_speedup']:.1f}x "
        f"vs reference, bit-identical: {parity['pool_identical']}",
        flush=True,
    )
    n1000 = bench_n1000()
    print(
        f"truthful n=1000: {n1000['wall_seconds']:.2f}s "
        f"({n1000['decomposition_iterations']} pricing iterations, "
        f"pool {n1000['pool_size']})",
        flush=True,
    )
    smoke = bench_truthful_trace(
        150, num_requests=10, unique_profiles=4, scene_seed=1400, trace_seed=52
    )

    results = {
        "config": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "truthful_trace_n300": trace,
        "decomposition_parity": parity,
        "truthful_n1000": n1000,
        "smoke_truthful_n150": smoke,
        "headline": {
            "criterion": (
                "fast truthful path >= 4x throughput of the reference "
                "(pre-fast-path) pipeline on a repeat-heavy truthful metro "
                "trace, with bit-identical decomposition marginals and "
                "sampled allocations for fixed seeds, and a truthful n=1000 "
                "disk auction in single-digit seconds"
            ),
            "trace_speedup": trace["speedup"],
            "samples_identical": trace["samples_identical"],
            "marginals_identical": trace["marginals_identical"],
            "n1000_seconds": n1000["wall_seconds"],
            "met": bool(
                trace["speedup"] >= HEADLINE_MIN_SPEEDUP
                and trace["samples_identical"]
                and trace["marginals_identical"]
                and n1000["wall_seconds"] < N1000_MAX_SECONDS
            ),
        },
    }
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results["headline"], indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if results["headline"]["met"] else 1


if __name__ == "__main__":
    sys.exit(main())
