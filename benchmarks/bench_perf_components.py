"""Component performance benchmarks (proper multi-round timing).

Unlike the experiment benches (single-shot pedantic runs of whole
experiments), these time the hot components of the pipeline with
pytest-benchmark's statistical machinery, so regressions in the LP
assembly, the solver, the rounding, the rho computation, or the batch
engine show up as timing shifts.  ``bench_engine.py`` is the companion
one-shot script that persists the engine-vs-seed numbers to
``BENCH_engine.json``.
"""

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP
from repro.core.conflict_resolution import check_condition5, make_fully_feasible
from repro.core.derandomize import derandomize_rounding
from repro.core.rounding import round_unweighted
from repro.engine import (
    BatchAuctionEngine,
    CompiledAuction,
    round_batch,
    stack_draws,
)
from repro.experiments.workloads import (
    metro_disk_auction,
    physical_auction,
    protocol_auction,
    protocol_auction_fleet,
)
from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.inductive import inductive_independence_number
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.geometry.disks import random_disk_instance
from repro.interference.base import WeightedConflictStructure
from repro.util.rng import spawn_rngs
from repro.valuations.explicit import XORValuation


@pytest.fixture(scope="module")
def problem():
    return protocol_auction(40, 8, seed=900)


@pytest.fixture(scope="module")
def lp_solution(problem):
    return AuctionLP(problem).solve()


def test_perf_lp_build(benchmark, problem):
    lp = AuctionLP(problem)
    benchmark(lp.build)


def test_perf_lp_solve(benchmark, problem):
    lp = AuctionLP(problem)
    benchmark(lp.solve)


def test_perf_rounding(benchmark, problem, lp_solution):
    rng = np.random.default_rng(901)
    benchmark(lambda: round_unweighted(problem, lp_solution, rng))


def test_perf_derandomize(benchmark, problem, lp_solution):
    benchmark(lambda: derandomize_rounding(problem, lp_solution))


def test_perf_exact_rho_disk(benchmark):
    inst = random_disk_instance(60, seed=902)
    benchmark(lambda: inductive_independence_number(inst.graph))


def test_perf_weighted_lp_pipeline(benchmark):
    problem = physical_auction(25, 4, seed=903)

    def pipeline():
        from repro.core.conflict_resolution import make_fully_feasible
        from repro.core.rounding import round_weighted

        lp = AuctionLP(problem).solve()
        partly, _ = round_weighted(problem, lp, np.random.default_rng(904))
        return make_fully_feasible(problem, partly)

    benchmark(pipeline)


# ----------------------------------------------------------------------
# mechanism-path kernels at metro scale (n >= 300): the vectorized
# derandomization estimator and Algorithm 3 — statistical regression
# coverage for the PR 5 fast path
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def metro_problem():
    return metro_disk_auction(300, 4, seed=910, bids_per_bidder=3)


@pytest.fixture(scope="module")
def metro_lp_solution(metro_problem):
    return CompiledAuction(metro_problem).solve_lp()


def test_perf_derandomize_n300(benchmark, metro_problem, metro_lp_solution):
    benchmark(lambda: derandomize_rounding(metro_problem, metro_lp_solution))


@pytest.fixture(scope="module")
def weighted_resolution_case():
    """A dense-winner Algorithm 3 workload: n=400 vertices all allocated,
    sparse symmetric w̄ rescaled so Condition (5) holds with margin while
    the per-vertex totals still force multiple peel rounds."""
    n = 400
    rng = np.random.default_rng(911)
    w = np.zeros((n, n))
    for v in range(n):
        nbrs = rng.choice(n, size=8, replace=False)
        w[v, nbrs] = rng.uniform(0.05, 0.4, size=8)
    w = (w + w.T) / 2.0
    np.fill_diagonal(w, 0.0)
    # scale so the largest backward w̄ sum (w̄ = w + wᵀ doubles the entries)
    # is 0.45 — Condition (5) holds with margin
    backward = np.tril(w + w.T, -1).sum(axis=1).max()
    w *= 0.45 / backward
    structure = WeightedConflictStructure(
        WeightedConflictGraph(w), VertexOrdering.identity(n), rho=1.0
    )
    vals = [XORValuation(1, {frozenset({0}): float(1 + v % 7)}) for v in range(n)]
    problem = AuctionProblem(structure, 1, vals)
    allocation = {v: frozenset({0}) for v in range(n)}
    assert check_condition5(problem, allocation)
    return problem, allocation


def test_perf_condition5_n400(benchmark, weighted_resolution_case):
    problem, allocation = weighted_resolution_case
    benchmark(lambda: check_condition5(problem, allocation))


def test_perf_algorithm3_n400(benchmark, weighted_resolution_case):
    problem, allocation = weighted_resolution_case
    result = benchmark(lambda: make_fully_feasible(problem, allocation))
    assert problem.is_feasible(result.allocation)


# ----------------------------------------------------------------------
# engine path
# ----------------------------------------------------------------------
def test_perf_engine_compile(benchmark, problem):
    benchmark(lambda: CompiledAuction(problem))


def test_perf_engine_lp_solve(benchmark, problem):
    def compile_and_solve():
        return CompiledAuction(problem).solve_lp()

    benchmark(compile_and_solve)


def test_perf_engine_vectorized_rounding(benchmark, problem):
    compiled = CompiledAuction(problem)
    solution = compiled.solve_lp()
    plan = compiled.rounding_plan(solution)

    def vectorized_20():
        draws = stack_draws(spawn_rngs(901, 20), plan.width)
        return round_batch(compiled, plan, draws)

    benchmark(vectorized_20)


def test_perf_loop_rounding_20(benchmark, problem, lp_solution):
    def loop_20():
        return [
            round_unweighted(problem, lp_solution, child)
            for child in spawn_rngs(901, 20)
        ]

    benchmark(loop_20)


def test_perf_engine_batch_fleet(benchmark):
    fleet = protocol_auction_fleet(2, 5, 30, 4, seed=905)
    engine = BatchAuctionEngine(executor="serial")
    benchmark(lambda: engine.solve_many(fleet, seed=906))
