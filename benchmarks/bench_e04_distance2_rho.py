"""E4 — Propositions 11/12: distance-2 coloring ρ = O(1) / (4r/s+2)²."""

from conftest import run_and_record

from repro.experiments import run_e4


def test_e4_distance2_rho(benchmark):
    out = run_and_record(benchmark, run_e4, "e04")
    assert out.summary["all_within_bound"]
