"""E7 — Theorem 17: power-control pipeline outputs SINR-feasible sets."""

from conftest import run_and_record

from repro.experiments import run_e7


def test_e7_power_control(benchmark):
    out = run_and_record(benchmark, run_e7, "e07")
    assert out.summary["sinr_always_feasible"]
