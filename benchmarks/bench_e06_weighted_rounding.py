"""E6 — Lemmas 7+8: Algorithm 2 + Algorithm 3 meet 16√kρ·⌈log n⌉."""

from conftest import run_and_record

from repro.experiments import run_e6


def test_e6_weighted_rounding(benchmark):
    out = run_and_record(benchmark, run_e6, "e06")
    assert out.summary["all_bounds_met"]
    assert out.summary["rounds_within_log"]
