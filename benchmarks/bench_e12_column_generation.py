"""E12 — Section 2.2: demand-oracle column generation solves the LP."""

from conftest import run_and_record

from repro.experiments import run_e12


def test_e12_column_generation(benchmark):
    out = run_and_record(benchmark, run_e12, "e12")
    assert out.summary["values_agree"]
    assert out.summary["max_iterations"] >= 2  # pricing actually iterates
