"""E5 — Proposition 15: fixed-power physical model has ρ = O(log n)."""

from conftest import run_and_record

from repro.experiments import run_e5


def test_e5_physical_rho(benchmark):
    out = run_and_record(benchmark, run_e5, "e05")
    # O(log n) shape: rho normalized by log2(n) stays below a small constant.
    assert out.summary["max_rho_over_log2n"] <= 3.0
