"""A1 — ablation: the √k bundle-size split of Algorithm 1."""

from conftest import run_and_record

from repro.experiments import run_a1_split_ablation


def test_a1_split_ablation(benchmark):
    out = run_and_record(benchmark, run_a1_split_ablation, "a1")
    assert out.summary["split"] > 0 and out.summary["no_split"] > 0
