"""A3 — ablation: rounding scale (paper: 2√kρ) vs smaller multipliers."""

from conftest import run_and_record

from repro.experiments import run_a3_scaling_ablation


def test_a3_scaling_ablation(benchmark):
    out = run_and_record(benchmark, run_a3_scaling_ablation, "a3")
    assert all(v >= 0 for v in out.summary.values())
