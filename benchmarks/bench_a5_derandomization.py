"""A5 — derandomization strategies compared."""

from conftest import run_and_record

from repro.experiments import run_a5_derandomization_comparison


def test_a5_derandomization(benchmark):
    out = run_and_record(benchmark, run_a5_derandomization_comparison, "a5")
    # Both deterministic methods beat the randomized mean on these sizes.
    assert out.summary["conditional"] >= out.summary["randomized_mean"]
    assert out.summary["pairwise"] >= out.summary["randomized_mean"]
