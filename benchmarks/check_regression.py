"""CI perf-regression gate: re-measure smoke workloads, compare to baselines.

The repo commits six benchmark baselines — BENCH_engine.json (PR 1),
BENCH_scale.json (PR 2), BENCH_service.json (PR 4), BENCH_mechanism.json
(PR 5), BENCH_chaos.json (PR 8), BENCH_gateway.json (PR 9) — that CI
used to run but never compare
against, so a PR could quietly halve the engine's speedups.  This script
closes the loop:

1. **measure** — re-run budgeted versions of the baseline workloads
   (the n=40 engine fleets, one n=1000 scale point, the n=300 service
   smoke scenario, the n=300 process-pool smoke, the n=150
   truthful-mechanism smoke trace, the chaos scenarios at n=120, the
   n=300 gateway smoke over a localhost socket; a few CPU-seconds each,
   best-of ``--repeats``);
2. **compare** — each checked metric's *slowdown factor* against the
   committed baseline must stay under the noise tolerance.

Process-pool metrics are *cores-guarded*: the baseline records the core
count it was measured on, and the gate only compares pool throughput
like-to-like — a mismatched core count reports the check as skipped
(machine-dependent scaling is not a regression signal).

Speedup-ratio metrics (engine vs naive, sparse vs dense, tuned service
vs no-cache baseline) are self-normalizing — both sides of the ratio run
on the same machine — so they carry a tight default tolerance
(``--tolerance``, 1.5x).  Absolute wall-clock metrics depend on the host,
so they get a looser default (``--time-tolerance``, 2.5x) that still
catches order-of-magnitude rot.  Chaos-invariant metrics (completion
rate under the seeded crash storm, invariant verdicts, the
overload-shed criterion — all from BENCH_chaos.json) are exact booleans
and rates: they carry a per-check tolerance of 1.0x, so *any* drop from
the committed baseline fails the gate.

Exit status is the gate: 0 when every check passes, 1 otherwise.
``--measured FILE`` skips measurement and compares a recorded
measurement instead — that is how the test suite proves an injected
slowdown fails the gate, and how a CI failure can be replayed locally.

Run from the repository root:

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass

REPO = pathlib.Path(__file__).parent.parent
BASELINE_FILES = {
    "engine": REPO / "BENCH_engine.json",
    "scale": REPO / "BENCH_scale.json",
    "service": REPO / "BENCH_service.json",
    "mechanism": REPO / "BENCH_mechanism.json",
    "chaos": REPO / "BENCH_chaos.json",
    "gateway": REPO / "BENCH_gateway.json",
}

SPEEDUP_TOLERANCE = 1.5
SECONDS_TOLERANCE = 2.5


def _lookup(data: dict, path: str) -> float:
    """Fetch a float at a dotted path; integer segments index lists."""
    node = data
    for segment in path.split("."):
        node = node[int(segment)] if isinstance(node, list) else node[segment]
    return float(node)


@dataclass(frozen=True)
class Check:
    """One gated metric: where it lives and how slowdown is computed."""

    source: str  # family: engine | scale | service | mechanism | chaos | gateway
    path: str  # dotted path into both the baseline and the measured dict
    # "speedup": self-normalized ratio, higher is better, tight tolerance.
    # "seconds" / "throughput": absolute wall-clock-dependent values (lower /
    # higher is better), compared under the looser --time-tolerance.
    # "rate": an exact fraction/boolean (completion rate, invariant verdict);
    # higher is better and the per-check tolerance pins it (1.0 = any drop
    # from the baseline fails).
    kind: str
    # optional dotted path (same family) that must hold the *same* value in
    # baseline and measurement for the comparison to mean anything — the
    # process-pool metrics guard on the recorded core count, so a baseline
    # taken on a 1-core box is never compared against a 4-core CI runner
    # (the check is reported as skipped, not passed-by-luck or failed)
    guard: str | None = None
    # per-check tolerance override; None falls back to the kind's default
    tol: float | None = None

    @property
    def name(self) -> str:
        return f"{self.source}:{self.path}"

    def slowdown(self, baseline: float, measured: float) -> float:
        if self.kind == "seconds":
            return measured / baseline if baseline > 0 else float("inf")
        return baseline / measured if measured > 0 else float("inf")


CHECKS = [
    Check("engine", "repeat_trace_50.speedup_serial", "speedup"),
    Check("engine", "distinct_fleet_50.speedup_serial", "speedup"),
    Check("engine", "warm_reauction_50.speedup_warm", "speedup"),
    Check("engine", "vectorized_rounding.speedup", "speedup"),
    # scaling.points[1] is the n=1000 point of the committed curve
    Check("scale", "scaling.points.1.speedup_vs_dense_auto", "speedup"),
    Check("scale", "scaling.points.1.sparse_fast_path.end_to_end_seconds", "seconds"),
    Check("service", "smoke_repeat_n300.speedup", "speedup"),
    Check("service", "smoke_repeat_n300.tuned.throughput_rps", "throughput"),
    # process-pool family: cores-guarded so the gate compares like to like
    Check(
        "service",
        "pool_smoke_n300.speedup_vs_serial",
        "speedup",
        guard="pool_smoke_n300.cores",
    ),
    Check(
        "service",
        "pool_smoke_n300.pool.throughput_rps",
        "throughput",
        guard="pool_smoke_n300.cores",
    ),
    Check("mechanism", "smoke_truthful_n150.speedup", "speedup"),
    Check("mechanism", "smoke_truthful_n150.fast.throughput_rps", "throughput"),
    # chaos family: exact pins (tol=1.0) — the fault-tolerance contract is
    # a boolean, and "mostly fault-tolerant" is a regression
    Check("chaos", "crash_storm_n300.completion_rate", "rate", tol=1.0),
    Check("chaos", "crash_storm_n300.invariants_ok", "rate", tol=1.0),
    Check("chaos", "slow_worker_n300.completion_rate", "rate", tol=1.0),
    Check("chaos", "slow_worker_n300.invariants_ok", "rate", tol=1.0),
    Check("chaos", "overload_shed_n300.criterion_ok", "rate", tol=1.0),
    # network-chaos family: the resilient-edge contract over a real
    # localhost gateway — completion, invariant verdicts, and the
    # exactly-once pin (no duplicate solves) are all exact booleans
    Check("chaos", "flaky_network_n300.completion_rate", "rate", tol=1.0),
    Check("chaos", "flaky_network_n300.invariants_ok", "rate", tol=1.0),
    Check(
        "chaos",
        "flaky_network_n300.invariants.no_duplicate_solves",
        "rate",
        tol=1.0,
    ),
    Check("chaos", "gateway_partition_n300.completion_rate", "rate", tol=1.0),
    Check("chaos", "gateway_partition_n300.invariants_ok", "rate", tol=1.0),
    # gateway family: HTTP serving-edge smoke — replay parity over the wire
    # is an exact pin, throughput rides the wall-clock tolerance
    Check("gateway", "smoke_n300.replay_identical", "rate", tol=1.0),
    Check("gateway", "smoke_n300.gateway.throughput_rps", "throughput"),
]


# ----------------------------------------------------------------------
# measurement (mirrors the baseline JSON shapes; budgeted versions)
# ----------------------------------------------------------------------
def measure(repeats: int = 2) -> dict:
    """Re-run the gated workloads, best-of ``repeats`` per metric.

    Returns one nested dict per baseline family (engine, scale, service,
    mechanism, chaos) with the same shape as the committed baseline
    files, restricted to the paths in :data:`CHECKS`.  Best-of keeps one
    noisy scheduler stall from failing the gate while a genuine
    regression still fails every repeat.
    """
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    import bench_chaos
    import bench_engine
    import bench_gateway
    import bench_mechanism
    import bench_scale
    import bench_service

    def best(values: list[dict], path: str, kind: str) -> float:
        picked = [_lookup(v, path) for v in values]
        return min(picked) if kind == "seconds" else max(picked)

    # one warm pass so imports/HiGHS setup are not billed to the first repeat
    bench_engine.bench_repeat_solves(unique=2, repeats=2, n=12, k=2)
    bench_service.bench_sustained(
        60, num_requests=4, unique_profiles=2, scene_seed=9, trace_seed=9
    )

    engine_runs = [
        {
            "repeat_trace_50": bench_engine.bench_repeat_solves(),
            "distinct_fleet_50": bench_engine.bench_batch_50(),
            "warm_reauction_50": bench_engine.bench_warm_reauction(),
            "vectorized_rounding": bench_engine.bench_rounding(),
        }
        for _ in range(repeats)
    ]
    scale_runs = []
    for _ in range(repeats):
        sparse = bench_scale.run_path(1000, 6, method="spatial", solver="auto")
        dense = bench_scale.run_path(1000, 6, method="dense", solver="auto")
        scale_runs.append(
            {
                "scaling": {
                    "points": [
                        None,  # align with the baseline: index 1 is n=1000
                        {
                            "speedup_vs_dense_auto": dense["end_to_end_seconds"]
                            / sparse["end_to_end_seconds"],
                            "sparse_fast_path": sparse,
                        },
                    ]
                }
            }
        )
    service_runs = [
        {
            "smoke_repeat_n300": bench_service.bench_sustained(
                300, num_requests=24, scene_seed=1200, trace_seed=42
            ),
            "pool_smoke_n300": bench_service.bench_pool_smoke(),
        }
        for _ in range(repeats)
    ]
    mechanism_runs = [
        {
            "smoke_truthful_n150": bench_mechanism.bench_truthful_trace(
                150,
                num_requests=10,
                unique_profiles=4,
                scene_seed=1400,
                trace_seed=52,
            )
        }
        for _ in range(repeats)
    ]

    # chaos: one budgeted run (n=120 traces), not best-of — the gated
    # metrics are invariant verdicts, and a verdict that only holds on the
    # best of N runs is exactly the flakiness the gate exists to catch
    chaos_runs = [bench_chaos.measure_gate(num_requests=120, overload_requests=200)]
    # gateway: replay parity is asserted inside bench_smoke (a divergence
    # raises, failing the measurement outright); best-of applies to the
    # throughput metric only
    gateway_runs = [{"smoke_n300": bench_gateway.bench_smoke()} for _ in range(repeats)]

    runs = {
        "engine": engine_runs,
        "scale": scale_runs,
        "service": service_runs,
        "mechanism": mechanism_runs,
        "chaos": chaos_runs,
        "gateway": gateway_runs,
    }
    measured: dict = {name: {} for name in runs}
    for chk in CHECKS:
        _assign(measured[chk.source], chk.path, best(runs[chk.source], chk.path, chk.kind))
        if chk.guard is not None:
            # guard values (e.g. core counts) are host constants — first run's
            _assign(
                measured[chk.source],
                chk.guard,
                _lookup(runs[chk.source][0], chk.guard),
            )
    return measured


def _assign(data: dict, path: str, value: float) -> None:
    """Set a dotted path (creating dicts/lists) — inverse of :func:`_lookup`."""
    segments = path.split(".")
    node = data
    for here, ahead in zip(segments[:-1], segments[1:]):
        if isinstance(node, list):
            here = int(here)
            while len(node) <= here:
                node.append(None)
            if node[here] is None:
                node[here] = [] if ahead.isdigit() else {}
            node = node[here]
        else:
            node = node.setdefault(here, [] if ahead.isdigit() else {})
    last = segments[-1]
    if isinstance(node, list):
        last = int(last)
        while len(node) <= last:
            node.append(None)
        node[last] = value
    else:
        node[last] = value


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def compare(
    measured: dict,
    baselines: dict,
    tolerance: float = SPEEDUP_TOLERANCE,
    time_tolerance: float = SECONDS_TOLERANCE,
    checks: list[Check] = CHECKS,
) -> list[dict]:
    """Evaluate every check; returns one row per metric (``ok`` flags).

    ``measured`` and ``baselines`` both map source name → nested dict.
    A metric missing on either side is reported as failed rather than
    skipped — a silently vanished baseline must not pass the gate.  A
    guarded check whose guard values differ (baseline recorded on a host
    with a different core count) is reported with ``skipped`` set and
    counts as ok: the comparison is meaningless, not broken.
    """
    rows = []
    for chk in checks:
        if chk.tol is not None:
            tol = chk.tol
        else:
            tol = tolerance if chk.kind == "speedup" else time_tolerance
        row = {"check": chk.name, "kind": chk.kind, "tolerance": tol}
        try:
            base = _lookup(baselines[chk.source], chk.path)
            got = _lookup(measured[chk.source], chk.path)
            if chk.guard is not None:
                guard_base = _lookup(baselines[chk.source], chk.guard)
                guard_got = _lookup(measured[chk.source], chk.guard)
        except (KeyError, IndexError, TypeError) as exc:
            row.update(ok=False, error=f"missing metric: {exc!r}")
            rows.append(row)
            continue
        if chk.guard is not None and guard_base != guard_got:
            row.update(
                ok=True,
                skipped=(
                    f"guard {chk.guard}: baseline {guard_base:g} != "
                    f"measured {guard_got:g} — not comparable"
                ),
                baseline=base,
                measured=got,
            )
            rows.append(row)
            continue
        slowdown = chk.slowdown(base, got)
        row.update(
            baseline=base,
            measured=got,
            slowdown=slowdown,
            ok=bool(slowdown <= tol),
        )
        rows.append(row)
    return rows


def load_baselines(files: dict[str, pathlib.Path] = BASELINE_FILES) -> dict:
    return {name: json.loads(path.read_text()) for name, path in files.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=SPEEDUP_TOLERANCE,
        help="max slowdown factor for speedup-ratio metrics (default %(default)s)",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=SECONDS_TOLERANCE,
        help="max slowdown factor for wall-clock metrics (default %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="measurement repeats, best-of (default %(default)s)",
    )
    parser.add_argument(
        "--measured",
        type=pathlib.Path,
        default=None,
        help="compare this recorded measurement JSON instead of re-measuring",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help="also write measurement + comparison rows to this path",
    )
    args = parser.parse_args(argv)

    baselines = load_baselines()
    if args.measured is not None:
        measured = json.loads(args.measured.read_text())
    else:
        measured = measure(repeats=max(1, args.repeats))
    rows = compare(
        measured,
        baselines,
        tolerance=args.tolerance,
        time_tolerance=args.time_tolerance,
    )
    failures = [row for row in rows if not row["ok"]]
    width = max(len(row["check"]) for row in rows)
    for row in rows:
        if "error" in row:
            print(f"FAIL {row['check']:<{width}}  {row['error']}")
            continue
        if "skipped" in row:
            print(f"skip {row['check']:<{width}}  {row['skipped']}")
            continue
        print(
            f"{'ok  ' if row['ok'] else 'FAIL'} {row['check']:<{width}}  "
            f"baseline {row['baseline']:8.3f}  measured {row['measured']:8.3f}  "
            f"slowdown {row['slowdown']:5.2f}x (tol {row['tolerance']}x)"
        )
    if args.json is not None:
        args.json.write_text(
            json.dumps({"measured": measured, "checks": rows}, indent=2) + "\n"
        )
    if failures:
        print(f"\nperf regression gate: {len(failures)}/{len(rows)} checks failed")
        return 1
    print(f"\nperf regression gate: all {len(rows)} checks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
