"""Shared benchmark plumbing: run an experiment once under timing, print
its table, and persist it under benchmarks/results/."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_record(benchmark, experiment_fn, name: str, **kwargs):
    """Time one execution of ``experiment_fn`` and persist its table."""
    output = benchmark.pedantic(
        lambda: experiment_fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    text = output.render() + "\nsummary: " + repr(output.summary) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return output
