"""E14 — Theorem 17's fading-metric hypothesis via path-loss exponents."""

from conftest import run_and_record

from repro.experiments import run_e14


def test_e14_fading_metrics(benchmark):
    out = run_and_record(benchmark, run_e14, "e14")
    # Fading exponents must enable at least as much spatial reuse.
    assert (
        out.summary["mean_parallelism_fading"]
        >= out.summary["mean_parallelism_nonfading"]
    )
