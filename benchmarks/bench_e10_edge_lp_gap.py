"""E10 — Section 2.1: edge LP gap n/2 on cliques; inductive LP bounded."""

from conftest import run_and_record

from repro.experiments import run_e10


def test_e10_edge_lp_gap(benchmark):
    out = run_and_record(benchmark, run_e10, "e10")
    assert out.summary["max_inductive_gap"] <= 2.0 + 1e-9
