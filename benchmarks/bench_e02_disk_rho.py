"""E2 — Proposition 9: disk graphs have inductive independence ≤ 5."""

from conftest import run_and_record

from repro.experiments import run_e2


def test_e2_disk_rho(benchmark):
    out = run_and_record(benchmark, run_e2, "e02")
    assert out.summary["worst_measured"] <= out.summary["bound"]
