"""E11 — empirical comparison: rounding/derandomized/greedy vs MILP optimum."""

from conftest import run_and_record

from repro.experiments import run_e11


def test_e11_vs_exact(benchmark):
    out = run_and_record(benchmark, run_e11, "e11")
    # The derandomized algorithm should capture most of the optimum and
    # beat the channel-greedy baseline on average.
    assert out.summary["derandomized"] >= 0.6
    assert out.summary["derandomized"] >= out.summary["greedy"]
