"""Chaos acceptance benchmark — writes BENCH_chaos.json.

Pins the fault-tolerance contract of the serving layer (DESIGN.md →
"Fault tolerance & chaos") as regression-gated numbers:

* ``crash_storm_n300`` — the library's seeded crash+slow plan against
  the 2-worker process pool: worker incarnations 0–1 crash on half the
  batches (keyed Bernoulli, so retries refire deterministically) while
  5% of solves brown out.  The acceptance pin: **100% of accepted
  requests complete, bit-identical to a fault-free serial replay** —
  crash recovery must lose nothing and change nothing.
* ``slow_worker_n300`` — injected per-batch worker latency only; the
  parent sees a browning-out shard, nothing fails, replay stays
  identical.
* ``overload_shed_n300`` — a repeat-heavy serial scenario driven twice
  over the same trace: once unloaded (arrival rate far below service
  rate, unbounded queue) and once overloaded (near-simultaneous
  arrivals against a small bounded queue).  The overloaded run must
  shed typed (ShedError at admission, nothing accepted then dropped)
  and serve what it accepts with **p99 within 2x of the unloaded p99**
  — the queue bound, not the backlog, sets the tail.
* ``flaky_network_n300`` / ``gateway_partition_n300`` — the network
  scenarios driven over a real localhost gateway
  (``transport="gateway"``): dropped and truncated responses,
  connection resets, injected connect latency, and a 30%-refusal
  partition.  The retrying client (RetryPolicy + idempotency keys) must
  land **every accepted request bit-identically with zero duplicate
  solves** — lost responses are replayed from the gateway's
  idempotency journal, never re-solved.

Each block records its invariant verdicts as 1.0/0.0 rates so
check_regression.py can gate them exactly (tolerance 1.0x: any drop
from the committed baseline fails the gate).

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_chaos.py                 # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke         # CI chaos-smoke
    PYTHONPATH=src python benchmarks/bench_chaos.py --network-smoke # CI network-chaos-smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.service import ChaosReport, Scenario, run_scenario, scenario_library

OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_chaos.json"

OVERLOAD_P99_FACTOR = 2.0  # accepted p99 under overload vs unloaded


def _report_block(report: ChaosReport) -> dict:
    """The JSON block shared by every scenario: counts + gated rates."""
    return {
        "scenario": report.scenario,
        "accepted": report.accepted,
        "shed": report.shed,
        "completed": report.completed,
        "degraded": report.degraded,
        "failed_typed": report.failed_typed,
        "failed_untyped": report.failed_untyped,
        "replay_mismatches": report.replay_mismatches,
        "completion_rate": report.completion_rate,
        "invariants_ok": 1.0 if report.ok() else 0.0,
        "invariants": report.invariants,
        "pool_healthy": report.pool_healthy,
        "p99_seconds": report.p99_seconds,
        "fired": report.fired,
    }


def bench_fault_scenario(name: str, num_requests: int | None = None) -> dict:
    """One library scenario under its own fault plan, replay-checked."""
    scenario = scenario_library()[name]
    if num_requests is not None:
        scenario = dataclasses.replace(scenario, num_requests=num_requests)
    report = run_scenario(scenario)
    block = _report_block(report)
    block["num_requests"] = scenario.num_requests
    block["cores"] = os.cpu_count()
    block["fault_plan"] = report.fault_plan
    return block


def bench_network_scenario(name: str, num_requests: int | None = None) -> dict:
    """One network scenario over a real localhost gateway, replay-checked.

    The fault plan bites the wire (dropped/truncated responses, connect
    resets, refused accepts), the client retries under the scenario's
    RetryPolicy, and the gateway's idempotency journal turns replayed
    deliveries into cache hits — the block records both sides' counters
    so the baseline pins *how* the trace survived, not just that it did.
    """
    scenario = scenario_library()[name]
    if num_requests is not None:
        scenario = dataclasses.replace(scenario, num_requests=num_requests)
    report = run_scenario(scenario, transport="gateway")
    block = _report_block(report)
    block["num_requests"] = scenario.num_requests
    block["fault_plan"] = report.fault_plan
    block["gateway"] = report.gateway
    block["client"] = report.client
    return block


def _overload_base(num_requests: int) -> Scenario:
    return Scenario(
        name="overload_shed",
        description=(
            "repeat-heavy serial traffic, run unloaded (reference tail) "
            "and overloaded against a bounded queue (shed + tail pin)"
        ),
        scene_size=24,
        num_scenes=1,
        num_requests=num_requests,
        rate=100.0,  # unloaded: inter-arrival ≫ cached solve time
        repeat_fraction=0.9,
        unique_profiles=4,
        service={"executor": "serial", "coalesce_window": 0.002},
    )


def bench_overload(num_requests: int = 300) -> dict:
    """Shed-under-overload: typed admission control with a bounded tail.

    Both runs replay the *same* trace (same seeds, same profiles) with
    the profile cache pre-warmed, so the p99 comparison is steady state
    against steady state: the overloaded tail measures what the queue
    bound admits, not cold-start LP solves stacking in the backlog.
    """
    base = _overload_base(num_requests)
    unloaded = run_scenario(base, check_replay=False, warmup_profiles=True)
    overloaded_scenario = dataclasses.replace(
        base,
        rate=6000.0,  # near-simultaneous arrivals: the queue must flood
        service={**base.service, "max_queue": 8},
    )
    overloaded = run_scenario(
        overloaded_scenario, check_replay=False, warmup_profiles=True
    )
    p99_ratio = (
        overloaded.p99_seconds / unloaded.p99_seconds
        if overloaded.p99_seconds and unloaded.p99_seconds
        else float("inf")
    )
    criterion_ok = (
        unloaded.ok()
        and overloaded.ok()
        and overloaded.shed > 0
        and overloaded.completed == overloaded.accepted
        and p99_ratio <= OVERLOAD_P99_FACTOR
    )
    return {
        "num_requests": num_requests,
        "criterion": (
            f"overload sheds typed (ShedError at admission) and accepted "
            f"p99 stays within {OVERLOAD_P99_FACTOR}x of the unloaded p99"
        ),
        "unloaded": _report_block(unloaded),
        "overloaded": _report_block(overloaded),
        "p99_ratio": p99_ratio,
        "shed_fraction": overloaded.shed / num_requests,
        "criterion_ok": 1.0 if criterion_ok else 0.0,
    }


def measure_gate(num_requests: int = 300, overload_requests: int = 300) -> dict:
    """The regression-gated chaos metrics (shape of BENCH_chaos.json).

    check_regression.py calls this with a smaller ``num_requests`` budget
    — the gated metrics are rates (completion, invariant verdicts), so
    they compare across trace lengths; wall-clock fields are recorded
    for context, not gated.
    """
    return {
        "crash_storm_n300": bench_fault_scenario("crash_storm", num_requests),
        "slow_worker_n300": bench_fault_scenario("slow_worker_brownout", num_requests),
        "overload_shed_n300": bench_overload(overload_requests),
        "flaky_network_n300": bench_network_scenario("flaky_network", num_requests),
        "gateway_partition_n300": bench_network_scenario(
            "gateway_partition", num_requests
        ),
    }


def _warm() -> None:
    """One throwaway serial run so HiGHS/import cold-start is not billed."""
    scenario = dataclasses.replace(
        scenario_library()["dense_metro"], num_requests=4, scene_size=12, num_scenes=1
    )
    run_scenario(scenario, check_replay=False)


def _gate_ok(results: dict) -> bool:
    return (
        results["crash_storm_n300"]["completion_rate"] == 1.0
        and results["crash_storm_n300"]["invariants_ok"] == 1.0
        and results["slow_worker_n300"]["completion_rate"] == 1.0
        and results["slow_worker_n300"]["invariants_ok"] == 1.0
        and results["overload_shed_n300"]["criterion_ok"] == 1.0
        and results["flaky_network_n300"]["completion_rate"] == 1.0
        and results["flaky_network_n300"]["invariants_ok"] == 1.0
        and results["gateway_partition_n300"]["completion_rate"] == 1.0
        and results["gateway_partition_n300"]["invariants_ok"] == 1.0
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the two n=300 fault scenarios only (the CI chaos-smoke "
        "job); exit nonzero unless every invariant holds with 100%% "
        "completion",
    )
    parser.add_argument(
        "--network-smoke",
        action="store_true",
        help="run the two n=300 network scenarios over a localhost "
        "gateway only (the CI network-chaos-smoke job); exit nonzero "
        "unless every invariant holds with 100%% completion and zero "
        "duplicate solves",
    )
    args = parser.parse_args(argv)
    _warm()

    if args.smoke:
        ok = True
        for name in ("crash_storm", "slow_worker_brownout"):
            block = bench_fault_scenario(name)
            good = block["completion_rate"] == 1.0 and block["invariants_ok"] == 1.0
            ok = ok and good
            print(
                f"{name} n={block['num_requests']}: "
                f"{block['completed']}/{block['accepted']} completed, "
                f"{block['replay_mismatches']} replay mismatches, "
                f"pool {'healthy' if block['pool_healthy'] else 'UNHEALTHY'} -> "
                f"{'OK' if good else 'FAIL'}"
            )
        return 0 if ok else 1

    if args.network_smoke:
        ok = True
        for name in ("flaky_network", "gateway_partition"):
            block = bench_network_scenario(name)
            good = block["completion_rate"] == 1.0 and block["invariants_ok"] == 1.0
            ok = ok and good
            print(
                f"{name} n={block['num_requests']}: "
                f"{block['completed']}/{block['accepted']} completed, "
                f"{block['client'].get('retries', 0)} retries, "
                f"{block['gateway'].get('journal_hits', 0)} journal hits, "
                f"{block['gateway'].get('duplicate_solves', 0)} duplicate "
                f"solves, fired {block['fired']} -> "
                f"{'OK' if good else 'FAIL'}"
            )
        return 0 if ok else 1

    results = measure_gate()
    storm = results["crash_storm_n300"]
    print(
        f"crash storm n=300: {storm['completed']}/{storm['accepted']} completed, "
        f"replay {'identical' if storm['invariants']['replay_identical'] else 'DIVERGED'}, "
        f"p99 {storm['p99_seconds']:.3f}s",
        flush=True,
    )
    brownout = results["slow_worker_n300"]
    print(
        f"slow-worker brownout n=300: {brownout['completed']}/{brownout['accepted']} "
        f"completed, p99 {brownout['p99_seconds']:.3f}s",
        flush=True,
    )
    overload = results["overload_shed_n300"]
    print(
        f"overload shed n=300: shed {overload['overloaded']['shed']} "
        f"({overload['shed_fraction']:.0%}), accepted p99 ratio "
        f"{overload['p99_ratio']:.2f}x (cap {OVERLOAD_P99_FACTOR}x) -> "
        f"{'OK' if overload['criterion_ok'] else 'FAIL'}",
        flush=True,
    )
    for key, label in (
        ("flaky_network_n300", "flaky network"),
        ("gateway_partition_n300", "gateway partition"),
    ):
        net = results[key]
        print(
            f"{label} n=300: {net['completed']}/{net['accepted']} completed, "
            f"{net['client'].get('retries', 0)} retries, "
            f"{net['gateway'].get('journal_hits', 0)} journal hits, "
            f"{net['gateway'].get('duplicate_solves', 0)} duplicate solves",
            flush=True,
        )

    results["config"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cores": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    results["headline"] = {
        "criterion": (
            "seeded crash+slow plan on n=300: 100% of accepted requests "
            "complete bit-identically to a fault-free replay; overload "
            "sheds typed with accepted p99 within "
            f"{OVERLOAD_P99_FACTOR}x of unloaded; the network scenarios "
            "complete 100% bit-identically over a faulted localhost "
            "gateway with zero duplicate solves"
        ),
        "crash_storm_completion_rate": storm["completion_rate"],
        "crash_storm_replay_identical": storm["invariants"]["replay_identical"],
        "overload_p99_ratio": overload["p99_ratio"],
        "flaky_network_completion_rate": results["flaky_network_n300"][
            "completion_rate"
        ],
        "flaky_network_duplicate_solves": results["flaky_network_n300"]["gateway"].get(
            "duplicate_solves", 0
        ),
        "gateway_partition_completion_rate": results["gateway_partition_n300"][
            "completion_rate"
        ],
        "met": _gate_ok(results),
    }
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results["headline"], indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if results["headline"]["met"] else 1


if __name__ == "__main__":
    sys.exit(main())
