"""Auction-service load benchmark — writes BENCH_service.json.

Drives the AuctionService with open-loop traffic over metro scenes and
records throughput, latency percentiles, and cache accounting for a
tuned configuration against the **no-cache/no-coalescing baseline of the
same service** (structure/problem cache capacity 0, coalescing window 0,
same engine, same trace):

* ``sustained_repeat_n1000`` — the acceptance scenario: a repeat-heavy
  Poisson trace (85% of requests reuse one of 8 valuation profiles)
  against one n≈1000 metro disk scene, replayed at maximum service rate.
  The tuned service collapses repeated profiles onto cached compiled
  auctions (one LP solve per profile) and stage-batches coalesced
  groups; the baseline recompiles and re-solves per request.
* ``sustained_distinct_n1000`` — the adversarial mix: every request is a
  fresh profile, so only the compiled structure is reusable.  The
  service's adaptive coalescing detects the distinct-heavy stream and
  bypasses the batching window (batch size 1, same code path as the
  baseline), so the tuned configuration no longer pays a stage-batching
  penalty here — the honest result is parity, not a speedup.
* ``burst_realtime`` — 4 bursts of 12 simultaneous requests through the
  threaded queue/shard pool in real time: what the coalescing window and
  shard affinity do to tail latency.
* ``smoke_repeat_n300`` — a scaled-down repeat scenario cheap enough for
  the CI regression gate to re-measure (see check_regression.py).
* ``pool_scaling_distinct_n1000`` — the process-pool cores-scaling curve:
  the distinct-heavy n=1000 trace driven open-loop at maximum rate
  through the queue, against the thread-shard baseline and the
  :class:`~repro.service.pool.ProcessShardPool` at 1/2/4/… workers (capped
  at the host's cores, which are recorded — the ≥3x acceptance criterion
  is only evaluable on a ≥4-core runner, and the regression gate compares
  pool metrics like-to-like by core count).
* ``pool_smoke_n300`` — a 2-worker distinct-heavy pool scenario cheap
  enough for CI: parity with the serial path asserted, throughput and
  IPC overhead recorded.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_service.py              # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke      # CI smoke
    PYTHONPATH=src python benchmarks/bench_service.py --pool-smoke # CI pool smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.experiments.workloads import metro_disk_scene
from repro.service import (
    AuctionService,
    SceneRegistry,
    burst_trace,
    poisson_trace,
)

OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_service.json"

HEADLINE_MIN_SPEEDUP = 3.0
SMOKE_MIN_SPEEDUP = 2.0
# pool acceptance: >=3x over the thread-shard baseline on distinct-heavy
# traffic — only evaluable when the host actually has cores to scale onto
POOL_MIN_SPEEDUP = 3.0
POOL_MIN_CORES = 4
# pool smoke floor (2 workers vs serial); applied only on multi-core hosts
POOL_SMOKE_MIN_SPEEDUP = 1.2


def _service(registry: SceneRegistry, tuned: bool, **overrides) -> AuctionService:
    """The benchmark's two configurations of the same service."""
    options: dict = {"registry": registry, "executor": "serial"}
    if tuned:
        options.update(coalesce_window=0.05, max_batch=16)
    else:  # baseline: no caches, no coalescing — everything else identical
        options.update(
            coalesce_window=0.0,
            max_batch=1,
            structure_cache_size=0,
            problem_cache_size=0,
        )
    options.update(overrides)
    return AuctionService(**options)


def _summarize(service: AuctionService, results, wall: float) -> dict:
    snap = service.metrics_snapshot()
    caches = snap["caches"]
    lat = snap["latency_seconds"]
    return {
        "requests": snap["requests_completed"],
        "wall_seconds": wall,
        "throughput_rps": snap["requests_completed"] / wall,
        "latency_p50_ms": lat["p50"] * 1e3,
        "latency_p95_ms": lat["p95"] * 1e3,
        "latency_p99_ms": lat["p99"] * 1e3,
        "mean_batch_size": snap["mean_batch_size"],
        "problem_cache_hit_rate": caches["problems"]["hit_rate"],
        "structure_cache_hit_rate": caches["structures"]["hit_rate"],
        "lp_solves": caches["lp_warm_solves"]["warm"]
        + caches["lp_warm_solves"]["cold"],
        "total_welfare": float(sum(r.welfare for r in results)),
        "all_feasible": bool(all(r.feasible for r in results)),
    }


def bench_sustained(
    n: int,
    *,
    k: int = 6,
    num_requests: int = 48,
    repeat_fraction: float = 0.85,
    unique_profiles: int = 8,
    scene_seed: int = 1000,
    trace_seed: int = 41,
) -> dict:
    """Max-rate replay of one Poisson trace under tuned vs baseline config.

    Both configurations replay the *identical* trace (same valuations,
    same per-request seeds) in simulated time — no sleeping — so the
    wall clock measures pure service throughput.  Welfare totals must
    agree: the tuned path's caching and coalescing are result-invariant.
    """
    registry = SceneRegistry()
    scene_id = registry.register(metro_disk_scene(n, seed=scene_seed))
    trace = poisson_trace(
        registry,
        [scene_id],
        k=k,
        rate=100.0,
        num_requests=num_requests,
        seed=trace_seed,
        repeat_fraction=repeat_fraction,
        unique_profiles=unique_profiles,
    )
    entry = {
        "workload": (
            f"{num_requests} requests, 1 metro disk scene n={n}, k={k}, "
            f"repeat_fraction={repeat_fraction}, "
            f"{unique_profiles} reusable profiles"
        ),
    }
    for label, tuned in (("baseline", False), ("tuned", True)):
        service = _service(registry, tuned)
        start = time.perf_counter()
        results = service.run_trace(trace)
        wall = time.perf_counter() - start
        entry[label] = _summarize(service, results, wall)
    assert entry["tuned"]["total_welfare"] == entry["baseline"]["total_welfare"], (
        "tuned service diverged from baseline on the same trace"
    )
    entry["speedup"] = (
        entry["tuned"]["throughput_rps"] / entry["baseline"]["throughput_rps"]
    )
    return entry


def _drive_queue(service: AuctionService, trace) -> tuple[list, float]:
    """Open-loop max-rate drive through the live queue.

    Unlike ``run_trace`` this submits every request up front (arrival
    stamps ignored) so the dispatcher, shards, or worker processes run at
    saturation.  The first request is replayed once as an untimed warm-up:
    with ``executor="process"`` the first submit is what spawns the worker
    pool, and spawn cost is startup, not steady-state throughput.
    """
    service.submit(trace[0].request).result(timeout=600)
    service.metrics.reset()
    start = time.perf_counter()
    futures = [service.submit(item.request) for item in trace]
    results = [f.result(timeout=600) for f in futures]
    wall = time.perf_counter() - start
    return results, wall


def _summarize_queue(service: AuctionService, results, wall: float) -> dict:
    """Throughput/latency summary for queue-driven runs.

    Parent-side cache counters are meaningless under ``executor="process"``
    (the workers own the caches), so this reports only what is placement
    independent plus the pool's own accounting when present.
    """
    snap = service.metrics_snapshot()
    lat = snap["latency_seconds"]
    entry = {
        "requests": snap["requests_completed"],
        "wall_seconds": wall,
        "throughput_rps": snap["requests_completed"] / wall,
        "latency_p50_ms": lat["p50"] * 1e3,
        "latency_p95_ms": lat["p95"] * 1e3,
        "latency_p99_ms": lat["p99"] * 1e3,
        "latency_samples": lat["samples"],
        "total_welfare": float(sum(r.welfare for r in results)),
        "all_feasible": bool(all(r.feasible for r in results)),
    }
    pool = snap.get("pool")
    if pool is not None:
        entry["pool_stats"] = {
            "start_method": pool["start_method"],
            "restarts": pool["restarts"],
            "failed_batches": pool["failed_batches"],
            "ipc_bytes_sent": pool["ipc_bytes_sent"],
            "ipc_bytes_received": pool["ipc_bytes_received"],
            "ipc_seconds": pool["ipc_seconds"],
            "scenes_shipped": pool["scenes_shipped"],
            "jobs_per_worker": [w["jobs"] for w in pool["workers"]],
        }
    return entry


def _distinct_trace(registry, scene_id, *, k, num_requests, trace_seed):
    return poisson_trace(
        registry,
        [scene_id],
        k=k,
        rate=500.0,
        num_requests=num_requests,
        seed=trace_seed,
        repeat_fraction=0.0,
        unique_profiles=0,
    )


def _queue_service(registry, executor: str, shards: int) -> AuctionService:
    # max_batch=1 keeps every request an independent job, so all shards or
    # workers can be busy at once — coalescing distinct-heavy traffic would
    # only serialize batches behind single shards
    return AuctionService(
        registry=registry,
        executor=executor,
        num_shards=shards,
        coalesce_window=0.0,
        max_batch=1,
    )


def _pool_worker_counts(cores: int) -> list[int]:
    return [c for c in (1, 2, 4, 8) if c <= cores] or [1]


def bench_pool_scaling(
    n: int = 1000,
    *,
    k: int = 6,
    num_requests: int = 16,
    scene_seed: int = 1000,
    trace_seed: int = 44,
) -> dict:
    """Cores-scaling curve: thread shards vs the multi-process pool.

    Every configuration replays the identical distinct-heavy trace (every
    request a fresh valuation profile — only the compiled structure is
    reusable, so per-request work is irreducible and the thread shards sit
    on the GIL).  Allocations must be bit-identical across placements.
    The host core count is recorded and the >=3x acceptance criterion is
    evaluated only on hosts with >= POOL_MIN_CORES cores; the regression
    gate compares pool numbers like-to-like by the recorded core count.
    """
    cores = os.cpu_count() or 1
    counts = _pool_worker_counts(cores)
    registry = SceneRegistry()
    scene_id = registry.register(metro_disk_scene(n, seed=scene_seed))
    trace = _distinct_trace(
        registry, scene_id, k=k, num_requests=num_requests, trace_seed=trace_seed
    )

    def run(executor: str, shards: int) -> tuple[list, dict]:
        service = _queue_service(registry, executor, shards)
        try:
            results, wall = _drive_queue(service, trace)
            summary = _summarize_queue(service, results, wall)
        finally:
            service.close()
        return results, summary

    base_results, base = run("thread", max(counts))
    entry: dict = {
        "workload": (
            f"{num_requests} distinct-profile requests, 1 metro disk scene "
            f"n={n}, k={k}, open-loop max rate, max_batch=1"
        ),
        "cores": cores,
        "worker_counts": counts,
        "thread_baseline": {"num_shards": max(counts), **base},
        "pool": {},
    }
    expected = [r.allocation for r in base_results]
    for workers in counts:
        pool_results, summary = run("process", workers)
        assert [r.allocation for r in pool_results] == expected, (
            f"process pool ({workers} workers) diverged from thread baseline"
        )
        entry["pool"][str(workers)] = summary
    best_workers = max(counts, key=lambda w: entry["pool"][str(w)]["throughput_rps"])
    best = entry["pool"][str(best_workers)]["throughput_rps"]
    one = entry["pool"]["1"]["throughput_rps"]
    entry["best_workers"] = best_workers
    entry["speedup_vs_threads"] = best / entry["thread_baseline"]["throughput_rps"]
    entry["scaling_vs_one_worker"] = {
        str(w): entry["pool"][str(w)]["throughput_rps"] / one for w in counts
    }
    entry["criterion"] = (
        f"process pool >= {POOL_MIN_SPEEDUP}x thread-shard baseline throughput "
        f"on the distinct-heavy n={n} trace; evaluable only on hosts with "
        f">= {POOL_MIN_CORES} cores (cores recorded above)"
    )
    entry["met"] = (
        entry["speedup_vs_threads"] >= POOL_MIN_SPEEDUP
        if cores >= POOL_MIN_CORES
        else None
    )
    return entry


def bench_pool_smoke(
    n: int = 300,
    *,
    k: int = 6,
    num_requests: int = 16,
    workers: int = 2,
    scene_seed: int = 1200,
    trace_seed: int = 47,
) -> dict:
    """Budgeted pool scenario for CI: 2 workers, n=300 distinct trace.

    Pins parity (pool allocations bit-identical to the serial path) and
    records throughput plus IPC accounting.  Cheap enough for the CI
    regression gate to re-measure on every PR.
    """
    cores = os.cpu_count() or 1
    registry = SceneRegistry()
    scene_id = registry.register(metro_disk_scene(n, seed=scene_seed))
    trace = _distinct_trace(
        registry, scene_id, k=k, num_requests=num_requests, trace_seed=trace_seed
    )
    serial = _queue_service(registry, "serial", 1)
    try:
        serial_results, serial_wall = _drive_queue(serial, trace)
        serial_summary = _summarize_queue(serial, serial_results, serial_wall)
    finally:
        serial.close()
    pooled = _queue_service(registry, "process", workers)
    try:
        pool_results, pool_wall = _drive_queue(pooled, trace)
        pool_summary = _summarize_queue(pooled, pool_results, pool_wall)
    finally:
        pooled.close()
    identical = [r.allocation for r in pool_results] == [
        r.allocation for r in serial_results
    ]
    assert identical, "process pool diverged from the serial path"
    return {
        "workload": (
            f"{num_requests} distinct-profile requests, 1 metro disk scene "
            f"n={n}, k={k}, open-loop max rate, {workers} worker processes"
        ),
        "cores": cores,
        "workers": workers,
        "serial": serial_summary,
        "pool": pool_summary,
        "speedup_vs_serial": (
            pool_summary["throughput_rps"] / serial_summary["throughput_rps"]
        ),
        "identical_allocations": identical,
    }


def bench_burst(
    n: int = 300, *, k: int = 6, burst_size: int = 12, bursts: int = 4
) -> dict:
    """Real-time bursts through the threaded queue and shard pool."""
    registry = SceneRegistry()
    scene_a = registry.register(metro_disk_scene(n, seed=1300))
    scene_b = registry.register(metro_disk_scene(n, seed=1301))
    trace = burst_trace(
        registry,
        [scene_a, scene_b],
        k=k,
        burst_size=burst_size,
        bursts=bursts,
        gap=1.0,
        seed=43,
        repeat_fraction=0.75,
        unique_profiles=4,
    )
    service = _service(
        registry, tuned=True, executor="thread", num_shards=2, coalesce_window=0.01
    )
    start = time.perf_counter()
    with service:
        results = service.run_trace(trace, realtime=True)
        service.drain()
    wall = time.perf_counter() - start
    entry = _summarize(service, results, wall)
    entry["workload"] = (
        f"{bursts} bursts x {burst_size} requests, 2 scenes n={n}, k={k}, "
        f"realtime open-loop, threaded 2-shard pool"
    )
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small repeat-heavy scenario only; exit nonzero below "
        f"{SMOKE_MIN_SPEEDUP}x",
    )
    parser.add_argument(
        "--pool-smoke",
        action="store_true",
        help="budgeted 2-worker process-pool scenario only (n=300 distinct "
        "trace); exit nonzero on parity failure, or below "
        f"{POOL_SMOKE_MIN_SPEEDUP}x vs serial on multi-core hosts",
    )
    args = parser.parse_args(argv)

    # warm imports/HiGHS on a throwaway scene so neither config pays cold-start
    bench_sustained(60, num_requests=4, unique_profiles=2, scene_seed=9, trace_seed=9)

    if args.pool_smoke:
        smoke = bench_pool_smoke()
        ok = smoke["identical_allocations"] and smoke["pool"]["all_feasible"]
        floor_applies = smoke["cores"] >= 2 and smoke["workers"] >= 2
        if floor_applies:
            ok = ok and smoke["speedup_vs_serial"] >= POOL_SMOKE_MIN_SPEEDUP
        print(
            f"pool smoke n=300 ({smoke['workers']} workers, "
            f"{smoke['cores']} cores): {smoke['speedup_vs_serial']:.2f}x vs "
            f"serial (floor {POOL_SMOKE_MIN_SPEEDUP}x"
            f"{' applied' if floor_applies else ' waived: single core'}), "
            f"pool {smoke['pool']['throughput_rps']:.2f} rps, "
            f"parity {'OK' if smoke['identical_allocations'] else 'BROKEN'} -> "
            f"{'OK' if ok else 'FAIL'}"
        )
        return 0 if ok else 1

    if args.smoke:
        smoke = bench_sustained(300, num_requests=24, scene_seed=1200, trace_seed=42)
        ok = smoke["speedup"] >= SMOKE_MIN_SPEEDUP and smoke["tuned"]["all_feasible"]
        print(
            f"service smoke n=300: {smoke['speedup']:.2f}x "
            f"(floor {SMOKE_MIN_SPEEDUP}x), tuned "
            f"{smoke['tuned']['throughput_rps']:.1f} rps -> "
            f"{'OK' if ok else 'FAIL'}"
        )
        return 0 if ok else 1

    repeat = bench_sustained(1000)
    print(
        f"sustained repeat n=1000: {repeat['speedup']:.2f}x "
        f"({repeat['tuned']['throughput_rps']:.1f} vs "
        f"{repeat['baseline']['throughput_rps']:.1f} rps)",
        flush=True,
    )
    distinct = bench_sustained(
        1000, num_requests=16, repeat_fraction=0.0, unique_profiles=0, trace_seed=44
    )
    print(f"sustained distinct n=1000: {distinct['speedup']:.2f}x", flush=True)
    burst = bench_burst()
    print(
        f"burst realtime: p95 {burst['latency_p95_ms']:.0f}ms, "
        f"mean batch {burst['mean_batch_size']:.1f}",
        flush=True,
    )
    smoke = bench_sustained(300, num_requests=24, scene_seed=1200, trace_seed=42)
    pool_scaling = bench_pool_scaling()
    print(
        f"pool scaling distinct n=1000 ({pool_scaling['cores']} cores): "
        f"{pool_scaling['speedup_vs_threads']:.2f}x vs thread shards at "
        f"{pool_scaling['best_workers']} workers "
        f"(criterion {'n/a: <4 cores' if pool_scaling['met'] is None else pool_scaling['met']})",
        flush=True,
    )
    pool_smoke = bench_pool_smoke()

    results = {
        "config": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cores": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "sustained_repeat_n1000": repeat,
        "sustained_distinct_n1000": distinct,
        "burst_realtime": burst,
        "smoke_repeat_n300": smoke,
        "pool_scaling_distinct_n1000": pool_scaling,
        "pool_smoke_n300": pool_smoke,
        "headline": {
            "criterion": (
                "tuned service >= 3x throughput of the no-cache/no-coalescing "
                "baseline configuration on a repeat-heavy n=1000 metro trace, "
                "p50/p95 latency and cache hit rate reported"
            ),
            "speedup": repeat["speedup"],
            "tuned_throughput_rps": repeat["tuned"]["throughput_rps"],
            "tuned_latency_p50_ms": repeat["tuned"]["latency_p50_ms"],
            "tuned_latency_p95_ms": repeat["tuned"]["latency_p95_ms"],
            "problem_cache_hit_rate": repeat["tuned"]["problem_cache_hit_rate"],
            "met": repeat["speedup"] >= HEADLINE_MIN_SPEEDUP,
        },
        "pool_headline": {
            "criterion": pool_scaling["criterion"],
            "cores": pool_scaling["cores"],
            "speedup_vs_threads": pool_scaling["speedup_vs_threads"],
            "best_workers": pool_scaling["best_workers"],
            "met": pool_scaling["met"],
        },
    }
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results["headline"], indent=2))
    print(json.dumps(results["pool_headline"], indent=2))
    print(f"wrote {OUTPUT}")
    # pool_headline met=None (too few cores) is not a failure — recorded honestly
    ok = results["headline"]["met"] and results["pool_headline"]["met"] is not False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
