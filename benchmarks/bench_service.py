"""Auction-service load benchmark — writes BENCH_service.json.

Drives the AuctionService with open-loop traffic over metro scenes and
records throughput, latency percentiles, and cache accounting for a
tuned configuration against the **no-cache/no-coalescing baseline of the
same service** (structure/problem cache capacity 0, coalescing window 0,
same engine, same trace):

* ``sustained_repeat_n1000`` — the acceptance scenario: a repeat-heavy
  Poisson trace (85% of requests reuse one of 8 valuation profiles)
  against one n≈1000 metro disk scene, replayed at maximum service rate.
  The tuned service collapses repeated profiles onto cached compiled
  auctions (one LP solve per profile) and stage-batches coalesced
  groups; the baseline recompiles and re-solves per request.
* ``sustained_distinct_n1000`` — the adversarial mix: every request is a
  fresh profile, so only the compiled structure is reusable.  The
  service's adaptive coalescing detects the distinct-heavy stream and
  bypasses the batching window (batch size 1, same code path as the
  baseline), so the tuned configuration no longer pays a stage-batching
  penalty here — the honest result is parity, not a speedup.
* ``burst_realtime`` — 4 bursts of 12 simultaneous requests through the
  threaded queue/shard pool in real time: what the coalescing window and
  shard affinity do to tail latency.
* ``smoke_repeat_n300`` — a scaled-down repeat scenario cheap enough for
  the CI regression gate to re-measure (see check_regression.py).

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

import numpy as np

from repro.experiments.workloads import metro_disk_scene
from repro.service import (
    AuctionService,
    SceneRegistry,
    burst_trace,
    poisson_trace,
)

OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_service.json"

HEADLINE_MIN_SPEEDUP = 3.0
SMOKE_MIN_SPEEDUP = 2.0


def _service(registry: SceneRegistry, tuned: bool, **overrides) -> AuctionService:
    """The benchmark's two configurations of the same service."""
    options: dict = {"registry": registry, "executor": "serial"}
    if tuned:
        options.update(coalesce_window=0.05, max_batch=16)
    else:  # baseline: no caches, no coalescing — everything else identical
        options.update(
            coalesce_window=0.0,
            max_batch=1,
            structure_cache_size=0,
            problem_cache_size=0,
        )
    options.update(overrides)
    return AuctionService(**options)


def _summarize(service: AuctionService, results, wall: float) -> dict:
    snap = service.metrics_snapshot()
    caches = snap["caches"]
    lat = snap["latency_seconds"]
    return {
        "requests": snap["requests_completed"],
        "wall_seconds": wall,
        "throughput_rps": snap["requests_completed"] / wall,
        "latency_p50_ms": lat["p50"] * 1e3,
        "latency_p95_ms": lat["p95"] * 1e3,
        "latency_p99_ms": lat["p99"] * 1e3,
        "mean_batch_size": snap["mean_batch_size"],
        "problem_cache_hit_rate": caches["problems"]["hit_rate"],
        "structure_cache_hit_rate": caches["structures"]["hit_rate"],
        "lp_solves": caches["lp_warm_solves"]["warm"]
        + caches["lp_warm_solves"]["cold"],
        "total_welfare": float(sum(r.welfare for r in results)),
        "all_feasible": bool(all(r.feasible for r in results)),
    }


def bench_sustained(
    n: int,
    *,
    k: int = 6,
    num_requests: int = 48,
    repeat_fraction: float = 0.85,
    unique_profiles: int = 8,
    scene_seed: int = 1000,
    trace_seed: int = 41,
) -> dict:
    """Max-rate replay of one Poisson trace under tuned vs baseline config.

    Both configurations replay the *identical* trace (same valuations,
    same per-request seeds) in simulated time — no sleeping — so the
    wall clock measures pure service throughput.  Welfare totals must
    agree: the tuned path's caching and coalescing are result-invariant.
    """
    registry = SceneRegistry()
    scene_id = registry.register(metro_disk_scene(n, seed=scene_seed))
    trace = poisson_trace(
        registry,
        [scene_id],
        k=k,
        rate=100.0,
        num_requests=num_requests,
        seed=trace_seed,
        repeat_fraction=repeat_fraction,
        unique_profiles=unique_profiles,
    )
    entry = {
        "workload": (
            f"{num_requests} requests, 1 metro disk scene n={n}, k={k}, "
            f"repeat_fraction={repeat_fraction}, "
            f"{unique_profiles} reusable profiles"
        ),
    }
    for label, tuned in (("baseline", False), ("tuned", True)):
        service = _service(registry, tuned)
        start = time.perf_counter()
        results = service.run_trace(trace)
        wall = time.perf_counter() - start
        entry[label] = _summarize(service, results, wall)
    assert entry["tuned"]["total_welfare"] == entry["baseline"]["total_welfare"], (
        "tuned service diverged from baseline on the same trace"
    )
    entry["speedup"] = (
        entry["tuned"]["throughput_rps"] / entry["baseline"]["throughput_rps"]
    )
    return entry


def bench_burst(
    n: int = 300, *, k: int = 6, burst_size: int = 12, bursts: int = 4
) -> dict:
    """Real-time bursts through the threaded queue and shard pool."""
    registry = SceneRegistry()
    scene_a = registry.register(metro_disk_scene(n, seed=1300))
    scene_b = registry.register(metro_disk_scene(n, seed=1301))
    trace = burst_trace(
        registry,
        [scene_a, scene_b],
        k=k,
        burst_size=burst_size,
        bursts=bursts,
        gap=1.0,
        seed=43,
        repeat_fraction=0.75,
        unique_profiles=4,
    )
    service = _service(
        registry, tuned=True, executor="thread", num_shards=2, coalesce_window=0.01
    )
    start = time.perf_counter()
    with service:
        results = service.run_trace(trace, realtime=True)
        service.drain()
    wall = time.perf_counter() - start
    entry = _summarize(service, results, wall)
    entry["workload"] = (
        f"{bursts} bursts x {burst_size} requests, 2 scenes n={n}, k={k}, "
        f"realtime open-loop, threaded 2-shard pool"
    )
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small repeat-heavy scenario only; exit nonzero below "
        f"{SMOKE_MIN_SPEEDUP}x",
    )
    args = parser.parse_args(argv)

    # warm imports/HiGHS on a throwaway scene so neither config pays cold-start
    bench_sustained(60, num_requests=4, unique_profiles=2, scene_seed=9, trace_seed=9)

    if args.smoke:
        smoke = bench_sustained(300, num_requests=24, scene_seed=1200, trace_seed=42)
        ok = smoke["speedup"] >= SMOKE_MIN_SPEEDUP and smoke["tuned"]["all_feasible"]
        print(
            f"service smoke n=300: {smoke['speedup']:.2f}x "
            f"(floor {SMOKE_MIN_SPEEDUP}x), tuned "
            f"{smoke['tuned']['throughput_rps']:.1f} rps -> "
            f"{'OK' if ok else 'FAIL'}"
        )
        return 0 if ok else 1

    repeat = bench_sustained(1000)
    print(
        f"sustained repeat n=1000: {repeat['speedup']:.2f}x "
        f"({repeat['tuned']['throughput_rps']:.1f} vs "
        f"{repeat['baseline']['throughput_rps']:.1f} rps)",
        flush=True,
    )
    distinct = bench_sustained(
        1000, num_requests=16, repeat_fraction=0.0, unique_profiles=0, trace_seed=44
    )
    print(f"sustained distinct n=1000: {distinct['speedup']:.2f}x", flush=True)
    burst = bench_burst()
    print(
        f"burst realtime: p95 {burst['latency_p95_ms']:.0f}ms, "
        f"mean batch {burst['mean_batch_size']:.1f}",
        flush=True,
    )
    smoke = bench_sustained(300, num_requests=24, scene_seed=1200, trace_seed=42)

    results = {
        "config": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "sustained_repeat_n1000": repeat,
        "sustained_distinct_n1000": distinct,
        "burst_realtime": burst,
        "smoke_repeat_n300": smoke,
        "headline": {
            "criterion": (
                "tuned service >= 3x throughput of the no-cache/no-coalescing "
                "baseline configuration on a repeat-heavy n=1000 metro trace, "
                "p50/p95 latency and cache hit rate reported"
            ),
            "speedup": repeat["speedup"],
            "tuned_throughput_rps": repeat["tuned"]["throughput_rps"],
            "tuned_latency_p50_ms": repeat["tuned"]["latency_p50_ms"],
            "tuned_latency_p95_ms": repeat["tuned"]["latency_p95_ms"],
            "problem_cache_hit_rate": repeat["tuned"]["problem_cache_hit_rate"],
            "met": repeat["speedup"] >= HEADLINE_MIN_SPEEDUP,
        },
    }
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results["headline"], indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if results["headline"]["met"] else 1


if __name__ == "__main__":
    sys.exit(main())
