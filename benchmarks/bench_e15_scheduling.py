"""E15 — scheduling extension: channels needed to serve all bidders."""

from conftest import run_and_record

from repro.experiments import run_e15


def test_e15_scheduling(benchmark):
    out = run_and_record(benchmark, run_e15, "e15")
    assert out.summary["all_valid"]
