"""A2 — ablation: conflict resolution vs survivors or tentative bundles."""

from conftest import run_and_record

from repro.experiments import run_a2_resolution_ablation


def test_a2_resolution_ablation(benchmark):
    out = run_and_record(benchmark, run_a2_resolution_ablation, "a2")
    # Survivors-based resolution can only keep more vertices.
    assert out.summary["survivors"] >= out.summary["tentative"] - 1e-9
