"""Batch auction engine: many instances, one compilation pass, pooled solves.

:class:`BatchAuctionEngine` accepts a list (or generator) of
:class:`~repro.core.auction.AuctionProblem`\\ s — or zero-argument callables
producing them — compiles each distinct problem once (structures shared via
the keyed cache), dispatches across a serial loop, a thread pool, or a
process pool, and returns per-instance :class:`SolverResult`\\ s plus
aggregate stats.

Determinism: one root :class:`numpy.random.SeedSequence` is spawned into
per-instance children *by position*, so results are identical for the same
seed no matter the executor or worker count (pinned by the engine tests).
Repeated occurrences of the same problem object share one
:class:`CompiledAuction` — and therefore one LP solve — which is exactly
the E7 / mechanism-sampling workload the engine exists for.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.auction import AuctionProblem
from repro.core.result import SolverResult
from repro.engine.compiled import CompiledAuction, compile_auction, compile_structure
from repro.util.lru import LRUCache
from repro.util.mp import mp_context
from repro.util.rng import SeedLike

__all__ = ["BatchAuctionEngine", "BatchResult"]

_EXECUTORS = ("auto", "serial", "thread", "process")


@dataclass
class BatchResult:
    """Results plus aggregate accounting for one engine batch."""

    results: list[SolverResult]
    wall_time: float
    executor: str
    unique_problems: int
    lp_solves: int
    summary: dict[str, Any] = field(default_factory=dict)

    @property
    def n_instances(self) -> int:
        return len(self.results)

    @property
    def total_welfare(self) -> float:
        return float(sum(r.welfare for r in self.results))

    @property
    def total_lp_value(self) -> float:
        return float(sum(r.lp_value for r in self.results))

    @property
    def guarantee_met_fraction(self) -> float:
        if not self.results:
            return 1.0
        return sum(r.meets_guarantee() for r in self.results) / len(self.results)


def _materialize(
    problems: Iterable[AuctionProblem | Callable[[], AuctionProblem]],
) -> list[AuctionProblem]:
    out: list[AuctionProblem] = []
    for item in problems:
        problem = item() if callable(item) else item
        if not isinstance(problem, AuctionProblem):
            raise TypeError(f"expected AuctionProblem or spec callable, got {type(item)}")
        out.append(problem)
    return out


def _solve_group(
    problem: AuctionProblem,
    seeds: list[np.random.SeedSequence],
    solve_kwargs: dict[str, Any],
) -> list[SolverResult]:
    """Process-pool worker: one compiled instance, many seeds."""
    compiled = compile_auction(problem)
    return [compiled.solve(seed=seed, **solve_kwargs) for seed in seeds]


class BatchAuctionEngine:
    """Compile-once/solve-many driver for fleets of auction problems."""

    def __init__(
        self,
        *,
        rounding_attempts: int = 1,
        derandomize: bool | str = False,
        verify_power_control: bool = True,
        executor: str = "auto",
        max_workers: int | None = None,
        lp_warm_start: bool = False,
        structure_cache: LRUCache | None = None,
        auction_cache: LRUCache | None = None,
        mp_start_method: str = "auto",
    ) -> None:
        """``lp_warm_start=True`` lets instances sharing a compiled structure
        (and bundle pattern) re-solve the LP by mutating the loaded HiGHS
        model's objective from the previous optimal basis.  Every LP value is
        still optimal, but on degenerate LPs the returned vertex — and hence
        the rounded allocation — may differ from a cold solve, so the flag
        defaults to off where bit-parity with the seed pipeline matters.

        ``structure_cache`` / ``auction_cache`` inject caller-owned
        :class:`~repro.util.lru.LRUCache` instances for the compilation
        layers (``None`` keeps the process-wide defaults); the auction
        service uses this to bound and account its caches per service.

        ``mp_start_method`` controls how ``executor="process"`` workers
        start (``"auto"`` resolves via :mod:`repro.util.mp` — forkserver
        where available, never bare fork from a threaded parent).
        """
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        self.solve_kwargs: dict[str, Any] = {
            "rounding_attempts": rounding_attempts,
            "derandomize": derandomize,
            "verify_power_control": verify_power_control,
            "lp_warm_start": lp_warm_start,
        }
        self.executor = executor
        self.max_workers = max_workers
        self.structure_cache = structure_cache
        self.auction_cache = auction_cache
        self.mp_start_method = mp_start_method

    # ------------------------------------------------------------------
    def _resolve_executor(self, n_tasks: int) -> tuple[str, int]:
        workers = self.max_workers or min(8, os.cpu_count() or 1)
        workers = max(1, min(workers, n_tasks))
        executor = self.executor
        if executor == "auto":
            # the solve path is GIL-bound Python + NumPy: on the reference
            # workload (BENCH_engine.json) the thread pool is measurably
            # slower than the serial loop, so pools stay opt-in
            executor = "serial"
        return executor, workers

    def compile(
        self, problems: Iterable[AuctionProblem]
    ) -> dict[int, CompiledAuction]:
        """Compile every distinct problem (by identity), sharing structures."""
        compiled: dict[int, CompiledAuction] = {}
        for problem in problems:
            if id(problem) not in compiled:
                compiled[id(problem)] = compile_auction(
                    problem,
                    structure=compile_structure(
                        problem.structure, cache=self.structure_cache
                    ),
                    cache=self.auction_cache,
                )
        return compiled

    def solve_compiled(
        self, tasks: list[tuple[CompiledAuction, SeedLike]]
    ) -> list[SolverResult]:
        """Stage-batched solve of ``(compiled auction, seed)`` pairs.

        Runs each pipeline layer across all tasks before the next (columns
        → assembly → LP → plans → rounding).  Results are identical to
        calling ``compiled.solve(seed=...)`` per task — every stage is
        cached per compiled auction — but keeping one kernel hot across the
        batch is measurably faster (BENCH_engine.json).  This is the entry
        point the auction service's coalesced batches go through: unlike
        :meth:`solve_many` it takes explicit per-task seeds, so a request's
        result does not depend on which batch it was coalesced into.
        """
        warm = self.solve_kwargs.get("lp_warm_start", False)
        distinct: dict[int, CompiledAuction] = {}
        for ca, _ in tasks:
            distinct.setdefault(id(ca), ca)
        for ca in distinct.values():
            ca.cols
            ca._build_csc()
        for ca in distinct.values():
            ca._solve_raw(warm_start=warm)
        if not self.solve_kwargs.get("derandomize"):
            for ca in distinct.values():
                ca._default_plan()
        return [ca.solve(seed=seed, **self.solve_kwargs) for ca, seed in tasks]

    # ------------------------------------------------------------------
    def solve_many(
        self,
        problems: Iterable[AuctionProblem | Callable[[], AuctionProblem]],
        seed: int | None = None,
    ) -> BatchResult:
        """Solve every instance; deterministic from ``seed`` across executors."""
        start = time.perf_counter()
        instances = _materialize(problems)
        seeds = np.random.SeedSequence(seed).spawn(len(instances)) if instances else []
        executor, workers = self._resolve_executor(len(instances))

        if executor == "process":
            results = self._run_process(instances, seeds, workers)
            # each worker group compiles its problem fresh and solves its LP once
            lp_solves = len({id(p) for p in instances})
        else:
            compiled = self.compile(instances)
            solves_before = sum(ca.lp_solve_count for ca in compiled.values())
            tasks = [
                (compiled[id(problem)], child) for problem, child in zip(instances, seeds)
            ]
            if executor == "thread":
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    results = list(
                        pool.map(
                            lambda task: task[0].solve(seed=task[1], **self.solve_kwargs),
                            tasks,
                        )
                    )
            else:
                results = self.solve_compiled(tasks)
            # only LP solves performed by *this* batch (compiled instances may
            # arrive from the global cache with their LP already solved)
            lp_solves = (
                sum(ca.lp_solve_count for ca in compiled.values()) - solves_before
            )
        batch = BatchResult(
            results=results,
            wall_time=time.perf_counter() - start,
            executor=executor,
            unique_problems=len({id(p) for p in instances}),
            lp_solves=lp_solves,
        )
        batch.summary = {
            "n_instances": batch.n_instances,
            "unique_problems": batch.unique_problems,
            "lp_solves": batch.lp_solves,
            "total_welfare": batch.total_welfare,
            "total_lp_value": batch.total_lp_value,
            "guarantee_met_fraction": batch.guarantee_met_fraction,
            "wall_time": batch.wall_time,
            "executor": batch.executor,
        }
        return batch

    # ------------------------------------------------------------------
    def _run_process(
        self,
        instances: list[AuctionProblem],
        seeds: list[np.random.SeedSequence],
        workers: int,
    ) -> list[SolverResult]:
        """Group instances by problem identity so each worker compiles once."""
        groups: dict[int, tuple[AuctionProblem, list[int], list[np.random.SeedSequence]]] = {}
        for i, (problem, child) in enumerate(zip(instances, seeds)):
            entry = groups.setdefault(id(problem), (problem, [], []))
            entry[1].append(i)
            entry[2].append(child)
        results: list[SolverResult | None] = [None] * len(instances)
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=mp_context(self.mp_start_method)
        ) as pool:
            futures = [
                (indices, pool.submit(_solve_group, problem, children, self.solve_kwargs))
                for problem, indices, children in groups.values()
            ]
            for indices, future in futures:
                for i, result in zip(indices, future.result()):
                    results[i] = result
        return results  # type: ignore[return-value]
