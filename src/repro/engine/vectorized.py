"""Vectorized randomized rounding — Algorithms 1/2 without per-attempt loops.

The seed implementation (:mod:`repro.core.rounding`) runs one Python loop
per attempt, per vertex, per backward neighbor.  Here the whole batch of
``attempts × n`` bundle choices is drawn as one RNG matrix and conflicts
are resolved with boolean mask operations over the precompiled incidence
matrices: the only remaining Python loop is over vertices in π order (the
survivors rule is inherently sequential in π), and it processes *all
attempts at once*.

Equivalence contract (pinned by ``tests/test_engine_equivalence.py``): for
the same :class:`numpy.random.Generator` the kernels consume uniforms in
exactly the order of the seed implementation — per attempt, the |T| ≤ √k
class before the |T| > √k class, vertices in LP-support order within each —
so every allocation, removal count, and class choice is identical to
running ``round_unweighted``/``round_weighted`` in a loop.  NumPy fills
``rng.random((attempts, width))`` in C order with the same doubles as
``width`` successive scalar draws, which makes the one-matrix draw a pure
reshape of the sequential stream.

One caveat on the weighted path: the Condition (5) total is a vectorized
dot product over vertex-index order while the seed accumulates w̄
sequentially in π order, and class/attempt welfares are NumPy pairwise
sums versus the seed's sequential Python sums — so an instance whose
shared-channel weight total (or a welfare tie) lands within one ulp of
the 0.5 threshold (or of the competing value) could resolve differently.
The stock generators draw integer-valued weights/valuations where these
sums are exact, and no test workload sits on such a knife edge.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.auction import Allocation, AuctionProblem
from repro.core.auction_lp import AuctionLPSolution
from repro.core.rounding import default_scale

if TYPE_CHECKING:  # compiled imports this module, so only type-import back
    from repro.engine.compiled import CompiledAuction, _ColumnArrays

# one LP-support entry for a vertex: (bundle, x, value)
_Entry = tuple[frozenset[int], float, float]

__all__ = [
    "ClassTable",
    "RoundingPlan",
    "BatchRoundingOutcome",
    "build_rounding_plan",
    "build_plan_from_arrays",
    "round_batch",
    "stack_draws",
]


@dataclass
class ClassTable:
    """One bundle-size class of the LP support, flattened for sampling.

    ``vertices`` lists the class's active vertices in the order the seed
    implementation draws for them; entries are grouped per vertex with
    ``offsets`` boundaries.  ``cum`` holds the within-group running sums of
    ``x/scale`` (computed with the same sequential additions as the seed's
    accumulator), and ``cum_pad`` is the same data padded to a rectangle
    with ``+inf`` so bundle selection is one broadcast comparison.
    """

    vertices: np.ndarray  # (nv,)
    offsets: np.ndarray  # (nv + 1,)
    cum: np.ndarray  # (ne,)
    values: np.ndarray  # (ne,)
    bundles: list[frozenset[int]]
    chan: np.ndarray  # (ne, k) bool
    cum_pad: np.ndarray  # (nv, L) padded with +inf
    group_len: np.ndarray  # (nv,)


@dataclass
class RoundingPlan:
    """Sampling tables for one (LP solution, scale, split) combination."""

    scale: float
    split: bool
    k: int
    classes: list[ClassTable]
    width: int  # uniforms consumed per attempt


@dataclass
class BatchRoundingOutcome:
    """Per-attempt results of one vectorized rounding batch.

    For unweighted problems the allocations are feasible (Algorithm 1
    output); for weighted problems they are partly feasible and must be
    finished per attempt with Algorithm 3, exactly as in the seed pipeline.
    """

    allocations: list[Allocation]
    welfares: np.ndarray  # (attempts,) welfare of the winning class
    chosen_class: np.ndarray  # (attempts,)
    class_welfares: np.ndarray  # (attempts, n_classes)
    tentative_sizes: np.ndarray  # (attempts, n_classes)
    removed_counts: np.ndarray  # (attempts, n_classes)


def build_rounding_plan(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    scale: float | None = None,
    split: bool = True,
    cols: _ColumnArrays | None = None,
) -> RoundingPlan:
    """Compile the LP support into sampling tables (reused across batches).

    ``cols`` is the compiled column arrays of a
    :class:`~repro.engine.compiled.CompiledAuction` *whose columns back
    this solution* — when provided (and the support is vertex-grouped, as
    enumerated columns are) the tables are built with array gathers instead
    of per-entry Python loops.  Both paths produce identical plans.
    """
    eff_scale = default_scale(problem) if scale is None else float(scale)
    if eff_scale < 1.0:
        raise ValueError("scale must be at least 1 for valid probabilities")
    k = problem.k
    if cols is not None:
        fast = _fast_plan(solution.x, cols, eff_scale, split, k)
        if fast is not None:
            return fast
    per_vertex = solution.per_vertex()
    for v, entries in per_vertex.items():
        if not 0 <= v < problem.n or any(
            not 0 <= j < k for bundle, _, _ in entries for j in bundle
        ):
            raise ValueError(
                "lp_solution does not belong to this problem: column for "
                f"vertex {v} is out of range for n={problem.n}, k={k}"
            )
    if split:
        threshold = math.sqrt(k)
        class_dicts: list[dict[int, list[_Entry]]] = [{}, {}]
        for v, entries in per_vertex.items():
            for entry in entries:
                target = class_dicts[0] if len(entry[0]) <= threshold else class_dicts[1]
                target.setdefault(v, []).append(entry)
    else:
        class_dicts = [per_vertex]

    classes: list[ClassTable] = []
    for cls in class_dicts:
        vertices = np.fromiter(cls.keys(), dtype=np.intp, count=len(cls))
        group_len = np.fromiter(
            (len(entries) for entries in cls.values()), dtype=np.intp, count=len(cls)
        )
        offsets = np.zeros(vertices.size + 1, dtype=np.intp)
        np.cumsum(group_len, out=offsets[1:])
        ne = int(offsets[-1])
        cum = np.empty(ne)
        values = np.empty(ne)
        bundles: list[frozenset[int]] = []
        chan = np.zeros((ne, k), dtype=bool)
        e = 0
        for entries in cls.values():
            acc = 0.0
            for bundle, x, value in entries:
                acc += x / eff_scale  # same additions as the seed's accumulator
                cum[e] = acc
                values[e] = value
                bundles.append(bundle)
                chan[e, list(bundle)] = True
                e += 1
        longest = int(group_len.max(initial=0))
        cum_pad = np.full((vertices.size, longest), np.inf)
        for i in range(vertices.size):
            cum_pad[i, : group_len[i]] = cum[offsets[i] : offsets[i + 1]]
        classes.append(
            ClassTable(vertices, offsets, cum, values, bundles, chan, cum_pad, group_len)
        )
    return RoundingPlan(
        scale=eff_scale,
        split=split,
        k=k,
        classes=classes,
        width=sum(int(ct.vertices.size) for ct in classes),
    )


def build_plan_from_arrays(
    problem: AuctionProblem,
    x: np.ndarray,
    cols: _ColumnArrays,
    scale: float | None = None,
    split: bool = True,
) -> RoundingPlan | None:
    """Plan construction straight from an LP primal vector over compiled
    column arrays — no :class:`AuctionLPSolution` needed.  Returns ``None``
    when the column order is not vertex-grouped (use the generic path)."""
    eff_scale = default_scale(problem) if scale is None else float(scale)
    if eff_scale < 1.0:
        raise ValueError("scale must be at least 1 for valid probabilities")
    return _fast_plan(x, cols, eff_scale, split, problem.k)


def _fast_plan(
    x: np.ndarray, cols: _ColumnArrays, eff_scale: float, split: bool, k: int
) -> RoundingPlan | None:
    """Array-gather plan construction over compiled column arrays.

    Requires the support's vertices to be non-decreasing (true for
    enumerated columns, where bidders are visited in order) so that
    first-occurrence grouping degenerates to run-length encoding; returns
    ``None`` otherwise and the generic path takes over.
    """
    sup = np.flatnonzero(x > 1e-9)
    verts_all = cols.vertex[sup]
    if verts_all.size and np.any(np.diff(verts_all) < 0):
        return None
    probs = x[sup] / eff_scale
    sizes = cols.ch_counts[sup]
    if split:
        small = sizes <= math.sqrt(k)
        masks = [small, ~small]
    else:
        masks = [np.ones(sup.size, dtype=bool)]
    classes: list[ClassTable] = []
    for mask in masks:
        idx = sup[mask]
        verts = verts_all[mask]
        boundaries = np.flatnonzero(np.diff(verts)) + 1
        starts = np.concatenate([[0], boundaries]) if verts.size else np.empty(0, np.intp)
        vertices = verts[starts].astype(np.intp) if verts.size else np.empty(0, np.intp)
        offsets = np.concatenate([starts, [verts.size]]).astype(np.intp)
        group_len = np.diff(offsets)
        xs = probs[mask]
        longest = int(group_len.max(initial=0))
        # one row-wise cumsum gives every group's running sums (trailing
        # zero pads don't perturb the in-group prefixes), bit-equal to the
        # seed's sequential accumulator
        prob_pad = np.zeros((vertices.size, longest))
        if xs.size:
            rows = np.repeat(np.arange(vertices.size), group_len)
            ranks = np.arange(xs.size) - np.repeat(offsets[:-1], group_len)
            prob_pad[rows, ranks] = xs
        cum2d = np.cumsum(prob_pad, axis=1)
        cum = cum2d[rows, ranks] if xs.size else np.empty(0)
        valid = np.arange(longest)[None, :] < group_len[:, None]
        cum_pad = np.where(valid, cum2d, np.inf)
        classes.append(
            ClassTable(
                vertices=vertices,
                offsets=offsets,
                cum=cum,
                values=cols.value[idx],
                bundles=[cols.bundles[i] for i in idx],
                chan=cols.chan_mask[idx],
                cum_pad=cum_pad,
                group_len=group_len,
            )
        )
    return RoundingPlan(
        scale=eff_scale,
        split=split,
        k=k,
        classes=classes,
        width=sum(int(ct.vertices.size) for ct in classes),
    )


def stack_draws(rngs: Iterable[np.random.Generator], width: int) -> np.ndarray:
    """One row of uniforms per generator — the harness's per-repetition form.

    Each row equals what the seed implementation would draw from that
    generator for a single attempt, so per-repetition child RNGs stay
    bit-compatible with the sequential pipeline.
    """
    rng_list = list(rngs)
    out = np.empty((len(rng_list), width))
    for i, rng in enumerate(rng_list):
        out[i] = rng.random(width)
    return out


# ----------------------------------------------------------------------
# conflict resolution kernels (all attempts at once, vertices in π order)
# ----------------------------------------------------------------------
def _resolve_unweighted_batch(
    compiled: CompiledAuction, chan: np.ndarray, order: np.ndarray, resolve: str
) -> np.ndarray:
    """Algorithm 1's scan, batched: returns the (attempts, n) killed mask."""
    backward = compiled.structure.backward
    survivors = resolve == "survivors"
    ref = chan.copy() if survivors else chan
    killed = np.zeros(chan.shape[:2], dtype=bool)
    for v in order:
        nbrs = backward[v]
        if nbrs.size == 0:
            continue
        occupied = ref[:, nbrs, :].any(axis=1)  # (attempts, k)
        conflict = (occupied & chan[:, v, :]).any(axis=1)
        if conflict.any():
            killed[:, v] = conflict
            if survivors:
                ref[conflict, v, :] = False  # repro: allow[kernel-mutation] -- ref is chan.copy() when survivors
    return killed


def _resolve_weighted_batch(
    compiled: CompiledAuction, chan: np.ndarray, order: np.ndarray, resolve: str
) -> np.ndarray:
    """Algorithm 2's partial resolution (Condition (5) threshold), batched.

    Dense-compiled structures use the full backward-w̄ matrix; sparse
    compilations carry per-vertex neighbor/weight lists instead and restrict
    the share test to the actual backward neighborhood — O(|Γ_π(v)|·k) per
    vertex instead of O(n·k).  The Condition (5) total is then a sum over
    the neighbor subset rather than a length-n dot product; as with the
    welfare sums (see module docstring), only an instance sitting within one
    ulp of the 0.5 threshold could resolve differently.
    """
    cs = compiled.structure
    bwbar = cs.backward_wbar
    survivors = resolve == "survivors"
    ref = chan.copy() if survivors else chan
    killed = np.zeros(chan.shape[:2], dtype=bool)
    if bwbar is None:  # sparse compile: flat backward lists
        backward, backward_w = cs.backward, cs.backward_w
        for v in order:
            nbrs = backward[v]
            if nbrs.size == 0:
                continue
            shares = (ref[:, nbrs, :] & chan[:, v, None, :]).any(axis=2)
            total = shares @ backward_w[v]
            drop = total >= 0.5
            if drop.any():
                killed[:, v] = drop
                if survivors:
                    ref[drop, v, :] = False  # repro: allow[kernel-mutation] -- ref is chan.copy() when survivors
        return killed
    for v in order:
        weights = bwbar[v]
        if not weights.any():
            continue
        shares = (ref & chan[:, v, None, :]).any(axis=2)  # (attempts, n)
        total = shares @ weights
        drop = total >= 0.5
        if drop.any():
            killed[:, v] = drop
            if survivors:
                ref[drop, v, :] = False  # repro: allow[kernel-mutation] -- ref is chan.copy() when survivors
    return killed


def round_batch(
    compiled: CompiledAuction,
    plan: RoundingPlan,
    draws: np.ndarray,
    resolve: str = "survivors",
) -> BatchRoundingOutcome:
    """Run the full rounding stage on a matrix of uniforms.

    ``draws`` has one row per attempt; columns are consumed left to right
    by the plan's classes.  Weighted problems get Algorithm 2's *partly
    feasible* output — finish each attempt with
    :func:`repro.core.conflict_resolution.make_fully_feasible`.
    """
    if resolve not in ("survivors", "tentative"):
        raise ValueError(f"unknown resolve mode {resolve!r}")
    problem = compiled.problem
    n = problem.n
    attempts = draws.shape[0]
    if draws.shape[1] != plan.width:
        raise ValueError(f"draws have width {draws.shape[1]}, plan needs {plan.width}")
    resolver = (
        _resolve_weighted_batch if problem.is_weighted else _resolve_unweighted_batch
    )
    pos = compiled.structure.pos

    n_classes = len(plan.classes)
    class_welfares = np.zeros((attempts, n_classes))
    tentative_sizes = np.zeros((attempts, n_classes), dtype=np.intp)
    removed_counts = np.zeros((attempts, n_classes), dtype=np.intp)
    per_class_alloc: list[list[Allocation]] = []

    col = 0
    for ci, table in enumerate(plan.classes):
        nv = int(table.vertices.size)
        u = draws[:, col : col + nv]
        col += nv
        if nv == 0:
            per_class_alloc.append([{} for _ in range(attempts)])
            continue
        # bundle selection: first cumulative bin exceeding the uniform
        chosen = (table.cum_pad[None, :, :] <= u[:, :, None]).sum(axis=2)
        has_choice = chosen < table.group_len[None, :]
        a_idx, v_idx = np.nonzero(has_choice)
        if a_idx.size == 0:  # nobody rounded anything in any attempt
            per_class_alloc.append([{} for _ in range(attempts)])
            continue
        entries = table.offsets[v_idx] + chosen[a_idx, v_idx]
        verts = table.vertices[v_idx]

        chan = np.zeros((attempts, n, plan.k), dtype=bool)
        chan[a_idx, verts] = table.chan[entries]
        values = np.zeros((attempts, n))
        values[a_idx, verts] = table.values[entries]

        # only vertices that picked a bundle in some attempt need scanning
        active = np.unique(verts)
        order = active[np.argsort(pos[active], kind="stable")]
        killed = resolver(compiled, chan, order, resolve)
        alive = chan.any(axis=2) & ~killed

        class_welfares[:, ci] = (values * alive).sum(axis=1)
        tentative_sizes[:, ci] = has_choice.sum(axis=1)
        removed_counts[:, ci] = (killed & chan.any(axis=2)).sum(axis=1)

        entry_of = np.full((attempts, n), -1, dtype=np.intp)
        entry_of[a_idx, verts] = entries
        allocations: list[Allocation] = []
        for a in range(attempts):
            winners = np.flatnonzero(alive[a])
            allocations.append(
                {int(v): table.bundles[entry_of[a, v]] for v in winners}
            )
        per_class_alloc.append(allocations)

    # per attempt, later classes win only on strictly greater welfare —
    # the seed's best_value update rule
    chosen_class = np.zeros(attempts, dtype=np.intp)
    best = class_welfares[:, 0].copy() if n_classes else np.zeros(attempts)
    for ci in range(1, n_classes):
        better = class_welfares[:, ci] > best
        chosen_class[better] = ci
        best = np.maximum(best, class_welfares[:, ci])
    allocations = [
        per_class_alloc[int(chosen_class[a])][a] for a in range(attempts)
    ]
    return BatchRoundingOutcome(
        allocations=allocations,
        welfares=best,
        chosen_class=chosen_class,
        class_welfares=class_welfares,
        tentative_sizes=tentative_sizes,
        removed_counts=removed_counts,
    )
