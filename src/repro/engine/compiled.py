"""Compiled auction instances — the compile-once half of the engine.

The seed pipeline rebuilt everything per ``solve()`` call: LP columns, the
sparse ``(A, b, c)`` of LP (1)/(4) row by row in Python, and the backward
neighborhoods Γ_π(v) on every rounding pass.  This module splits that work
into two cacheable layers:

* :class:`CompiledStructure` — everything derived from the conflict
  structure alone (interference-coefficient lists, backward-neighbor
  lists, backward symmetric weights).  Instances sharing a conflict graph —
  mechanism misreport probes, ablation sweeps, per-epoch re-auctions of one
  region — share one compilation via :func:`compile_structure`'s keyed
  cache.
* :class:`CompiledAuction` — the per-problem layer: LP columns flattened
  into bundle/channel incidence arrays, the vectorized ``(A, b, c)``
  assembly, and the cached LP solution.  The rich
  :class:`~repro.core.auction_lp.Column` objects and
  :class:`AuctionLPSolution` are materialized lazily — the engine's own
  solve path runs entirely on the arrays.

``CompiledAuction.solve`` reproduces the seed
:class:`SpectrumAuctionSolver`'s results bit-for-bit (same RNG draw order,
same tie-breaking); the facade in :mod:`repro.core.solver` delegates here.
Problems are treated as immutable once compiled — mutating a problem after
its first solve is undefined behavior (recompile instead).
"""

from __future__ import annotations

import threading
import weakref
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np
import scipy.sparse as sp

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLPSolution, Column, iter_default_columns
from repro.core.conflict_resolution import make_fully_feasible
from repro.core.derandomize import derandomize_rounding
from repro.core.result import SolverResult
from repro.engine.highs import solve_packing_lp_fast
from repro.util.lru import LRUCache
from repro.util.rng import SeedLike, ensure_rng

if TYPE_CHECKING:
    from repro.engine.vectorized import RoundingPlan
    from repro.interference.base import ConflictStructure, WeightedConflictStructure

    AnyStructure = ConflictStructure | WeightedConflictStructure

__all__ = [
    "CompiledStructure",
    "CompiledAuction",
    "compile_structure",
    "compile_auction",
    "structure_cache_stats",
    "auction_cache_stats",
    "clear_structure_cache",
    "clear_auction_cache",
]


# ----------------------------------------------------------------------
# structure-level compilation (shared across problems)
# ----------------------------------------------------------------------
@dataclass
class CompiledStructure:
    """Per-structure precomputations shared by every auction on it.

    The flattened arrays encode ``κ(u, v)`` for π(u) < π(v) — the
    coefficient vertex ``u``'s columns contribute to packing row ``(v, j)``
    (1 on backward edges for LP (1b), w̄(u, v) for LP (4b)): vertex ``u``
    affects the later vertices ``affected_flat[affected_off[u] :
    affected_off[u+1]]`` with coefficients ``coeff_flat[...]`` (both sorted
    by vertex id).  ``backward`` lists Γ_π(v) per vertex for the rounding
    kernels.

    Weighted structures keep the backward symmetric weights in one of two
    shapes: ``backward_wbar`` is the dense n×n matrix (row ``v`` holds
    w̄(·, v) masked to earlier vertices) for dense-backed graphs, and
    ``backward_w`` is the per-vertex weight list aligned with ``backward``
    for CSR-backed graphs — the sparse compile never materializes an n×n
    array.  Exactly one of the two is set for weighted structures; the
    rounding kernels dispatch on which.
    """

    structure: object
    n: int
    is_weighted: bool
    rho: float
    pos: np.ndarray
    perm: np.ndarray
    affected_flat: np.ndarray  # concat of affected-vertex lists per vertex
    affected_off: np.ndarray  # (n + 1,)
    coeff_flat: np.ndarray  # κ(u, v) aligned with affected_flat
    affected_deg: np.ndarray  # (n,)
    backward: list[np.ndarray]
    backward_wbar: np.ndarray | None
    backward_w: list[np.ndarray] | None = None
    sparse: bool = False


def _build_structure(structure: AnyStructure) -> CompiledStructure:
    from repro.interference.base import WeightedConflictStructure

    is_weighted = isinstance(structure, WeightedConflictStructure)
    if structure.graph.is_sparse:
        return _build_structure_sparse(structure, is_weighted)
    n = structure.n
    pos = structure.ordering.pos
    earlier = pos[None, :] < pos[:, None]  # earlier[v, u]: π(u) < π(v)
    if is_weighted:
        dense = np.where(earlier, structure.graph.wbar_matrix, 0.0)
        backward_wbar = dense
    else:
        dense = np.where(earlier & structure.graph.adjacency, 1.0, 0.0)
        backward_wbar = None
    backward = [np.flatnonzero(dense[v]) for v in range(n)]
    # affected[u] = later vertices u interferes with = nonzeros of column u
    affected = [np.flatnonzero(dense[:, u]) for u in range(n)]
    affected_deg = np.fromiter((a.size for a in affected), dtype=np.intp, count=n)
    affected_off = np.zeros(n + 1, dtype=np.intp)
    np.cumsum(affected_deg, out=affected_off[1:])
    affected_flat = (
        np.concatenate(affected) if n else np.empty(0, dtype=np.intp)
    )
    coeff_flat = (
        np.concatenate([dense[rows, u] for u, rows in enumerate(affected)])
        if n
        else np.empty(0)
    )
    return CompiledStructure(
        structure=structure,
        n=n,
        is_weighted=is_weighted,
        rho=float(structure.rho),
        pos=pos,
        perm=structure.ordering.perm,
        affected_flat=affected_flat,
        affected_off=affected_off,
        coeff_flat=coeff_flat,
        affected_deg=affected_deg,
        backward=backward,
        backward_wbar=backward_wbar,
    )


def _build_structure_sparse(
    structure: AnyStructure, is_weighted: bool
) -> CompiledStructure:
    """CSR-backed compile: same flat arrays and per-vertex lists as the dense
    build (bit-identical — both sort neighbor ids ascending), but O(m)
    memory instead of several n×n intermediates.

    The directed earlier-edge matrix ``B[v, u] = κ(u, v) · [π(u) < π(v)]``
    yields the backward lists as its CSR rows and the affected lists as its
    CSC columns.
    """
    n = structure.n
    pos = structure.ordering.pos
    src = structure.graph.wbar_csr if is_weighted else structure.graph.csr
    coo = src.tocoo()
    mask = pos[coo.col] < pos[coo.row]
    data = coo.data[mask].astype(float) if is_weighted else np.ones(int(mask.sum()))
    b = sp.csr_matrix((data, (coo.row[mask], coo.col[mask])), shape=(n, n))
    b.sort_indices()
    backward = np.split(b.indices.astype(np.intp), b.indptr[1:-1])
    backward_w = np.split(b.data, b.indptr[1:-1]) if is_weighted else None
    bc = b.tocsc()
    bc.sort_indices()
    return CompiledStructure(
        structure=structure,
        n=n,
        is_weighted=is_weighted,
        rho=float(structure.rho),
        pos=pos,
        perm=structure.ordering.perm,
        affected_flat=bc.indices.astype(np.intp),
        affected_off=bc.indptr.astype(np.intp),
        coeff_flat=bc.data,
        affected_deg=np.diff(bc.indptr).astype(np.intp),
        backward=backward,
        backward_wbar=None,
        backward_w=backward_w,
        sparse=True,
    )


_structure_cache = LRUCache(64, name="compiled-structures")


def compile_structure(
    structure: AnyStructure, cache: LRUCache | None = None
) -> CompiledStructure:
    """Compile (or fetch from cache) the structure-level precomputations.

    The cache is keyed by object identity, so two problems built on the
    *same* structure object — the sharing pattern of mechanism probes and
    epoch re-auctions — compile once.  Cached compilations strongly
    reference their structure (which both keeps the memory bounded-but-
    pinned to the cache capacity, LRU-evicted, and makes ``id()`` reuse
    impossible while an entry lives); call :func:`clear_structure_cache`
    to release them eagerly.

    ``cache`` swaps in a caller-owned :class:`~repro.util.lru.LRUCache`
    (the :class:`~repro.service.AuctionService` injects per-service caches
    so its capacity and eviction accounting are isolated); ``None`` uses
    the process-wide default.
    """
    cache = _structure_cache if cache is None else cache
    return cache.get_or_create(id(structure), lambda: _build_structure(structure))


def structure_cache_stats() -> dict[str, int]:
    """Copy of the default structure-cache counters (for tests/benches)."""
    return _structure_cache.stats()


def clear_structure_cache() -> None:
    _structure_cache.clear()


# ----------------------------------------------------------------------
# problem-level compilation
# ----------------------------------------------------------------------
@dataclass
class _ColumnArrays:
    """Column set flattened to NumPy: the engine's working representation."""

    vertex: np.ndarray  # (m,) column → vertex
    value: np.ndarray  # (m,) column → b_v(T)
    ch_flat: np.ndarray  # concatenated sorted channel lists
    ch_off: np.ndarray  # (m+1,) offsets into ch_flat
    ch_counts: np.ndarray  # (m,) bundle sizes
    chan_mask: np.ndarray  # (m, k) bool bundle/channel incidence
    bundles: list[frozenset[int]] = field(default_factory=list)


@dataclass
class _RawLP:
    """Slim LP result the internal solve path runs on (no Column objects)."""

    x: np.ndarray
    value: float
    y: np.ndarray
    z: np.ndarray


class CompiledAuction:
    """One auction problem, compiled for repeated solving.

    Construction enumerates the LP columns (identically to
    :meth:`AuctionLP.default_columns`) straight into incidence arrays; the
    ``(A, b, c)`` assembly and the LP solution are lazy and cached, so
    repeat solves — extra rounding attempts, mechanism sampling, E7-style
    repetitions — pay for the LP exactly once.  ``Column`` objects and the
    public :class:`AuctionLPSolution` are only materialized when a caller
    asks for them.
    """

    def __init__(
        self,
        problem: AuctionProblem,
        structure: CompiledStructure | None = None,
        columns: list[Column] | None = None,
    ) -> None:
        self.problem = problem
        self.structure = structure or compile_structure(problem.structure)
        self.k = problem.k
        if columns is None:
            # deferred: oracle-only bidders have no enumerable columns, and a
            # compiled instance rounding an external (column-generation) LP
            # solution never needs them
            self._columns: list[Column] | None = None
            self._cols: _ColumnArrays | None = None
        else:
            self._columns = list(columns)
            self._cols = self._flatten_columns(self._columns, self.k)
        self._csc: sp.csc_matrix | None = None
        self._b: np.ndarray | None = None
        self._c: np.ndarray | None = None
        self._matrices: tuple[sp.csr_matrix, np.ndarray, np.ndarray] | None = None
        self._raw: _RawLP | None = None
        self._lp_solution: AuctionLPSolution | None = None
        self._internal_plan = None
        self._plan_cache: dict[tuple, tuple[weakref.ref, object]] = {}
        self._lock = threading.RLock()
        self.lp_solve_count = 0

    # ------------------------------------------------------------------
    # column enumeration
    # ------------------------------------------------------------------
    @staticmethod
    def _enumerate_columns(problem: AuctionProblem) -> _ColumnArrays:
        """Default column set flattened to arrays.

        Fast path: when every bidder exposes ``support_items`` the loop
        consumes the pairs directly (bundles are frozensets and values floats
        already, so this applies exactly ``iter_default_columns``'s filter
        without the generator hop — the enumeration sits on the cold-path
        budget of BENCH_engine.json).  Any oracle-only bidder falls back to
        the shared enumerator, keeping the two in lockstep.
        """
        k = problem.k
        bundles: list[frozenset[int]] = []
        val_parts: list[np.ndarray] = []
        size_parts: list[np.ndarray] = []
        chan_parts: list[np.ndarray] = []
        counts = np.empty(len(problem.valuations), dtype=np.intp)
        for v, valuation in enumerate(problem.valuations):
            parts = valuation.support_column_arrays()
            if parts is None:  # oracle-only or custom bidder: generic path
                verts: list[int] = []
                vals: list[float] = []
                bundles = []
                for u, bundle, value in iter_default_columns(problem):
                    verts.append(u)
                    bundles.append(bundle)
                    vals.append(value)
                return CompiledAuction._arrays_from_lists(verts, vals, bundles, k)
            b, values, sizes, channels = parts
            bundles.extend(b)
            val_parts.append(values)
            size_parts.append(sizes)
            chan_parts.append(channels)
            counts[v] = len(b)
        m = len(bundles)
        vertex = np.repeat(np.arange(len(counts), dtype=np.intp), counts)
        value = np.concatenate(val_parts) if m else np.empty(0)
        sizes = (
            np.concatenate(size_parts) if m else np.empty(0, dtype=np.intp)
        )
        channels = (
            np.concatenate(chan_parts) if m else np.empty(0, dtype=np.intp)
        )
        return CompiledAuction._arrays_from_parts(
            vertex, value, sizes, channels, bundles, k
        )

    @staticmethod
    def _flatten_columns(columns: list[Column], k: int) -> _ColumnArrays:
        return CompiledAuction._arrays_from_lists(
            [c.vertex for c in columns],
            [c.value for c in columns],
            [c.bundle for c in columns],
            k,
        )

    @staticmethod
    def _arrays_from_lists(
        verts: Sequence[int],
        vals: Sequence[float],
        bundles: list[frozenset[int]],
        k: int,
    ) -> _ColumnArrays:
        m = len(bundles)
        sizes = np.fromiter((len(b) for b in bundles), dtype=np.intp, count=m)
        channels = np.fromiter(
            (j for b in bundles for j in b), dtype=np.intp, count=int(sizes.sum())
        )
        return CompiledAuction._arrays_from_parts(
            np.asarray(verts, dtype=np.intp),
            np.asarray(vals, dtype=float),
            sizes,
            channels,
            bundles,
            k,
        )

    @staticmethod
    def _arrays_from_parts(
        vertex: np.ndarray,
        value: np.ndarray,
        sizes: np.ndarray,
        channels: np.ndarray,
        bundles: list[frozenset[int]],
        k: int,
    ) -> _ColumnArrays:
        """Assemble :class:`_ColumnArrays` from pre-flattened pieces
        (``channels`` holds each bundle's ids consecutively, any order)."""
        m = len(bundles)
        ch_off = np.zeros(m + 1, dtype=np.intp)
        np.cumsum(sizes, out=ch_off[1:])
        chan_mask = np.zeros((m, k), dtype=bool)
        if m:
            chan_mask[np.repeat(np.arange(m), sizes), channels] = True
        # row-major nonzero yields each bundle's channels in ascending order
        ch_flat = np.nonzero(chan_mask)[1] if m else np.empty(0, dtype=np.intp)
        return _ColumnArrays(vertex, value, ch_flat, ch_off, sizes, chan_mask, bundles)

    @property
    def cols(self) -> _ColumnArrays:
        """The flattened column arrays (enumerated on first use).

        Raises ``ValueError`` for oracle-only bidders with large ``k`` —
        exactly when ``AuctionLP.default_columns`` would; use column
        generation and pass its solution via ``solve(lp_solution=...)``.
        """
        with self._lock:
            if self._cols is None:
                self._cols = self._enumerate_columns(self.problem)
            return self._cols

    @property
    def columns(self) -> list[Column]:
        """The LP columns as :class:`Column` objects (built on demand)."""
        cols = self.cols
        with self._lock:
            if self._columns is None:
                self._columns = [
                    Column(int(v), bundle, float(value))
                    for v, bundle, value in zip(cols.vertex, cols.bundles, cols.value)
                ]
            return self._columns

    # ------------------------------------------------------------------
    # LP assembly + solve
    # ------------------------------------------------------------------
    def build(self) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
        """Assembled ``(A, b, c)`` of LP (1)/(4); equals ``AuctionLP.build``."""
        a_csc, b, c = self._build_csc()
        with self._lock:
            if self._matrices is None:
                self._matrices = (a_csc.tocsr(), b, c)
            return self._matrices

    def matrices_csc(self) -> tuple[sp.csc_matrix, np.ndarray, np.ndarray]:
        """The cached column-major ``(A, b, c)`` — the form the persistent
        HiGHS backend ingests without a conversion copy.  Re-solve loops
        that only mutate the objective (Lavi–Swamy pricing, VCG
        externality probes) hold onto these arrays for the model's
        lifetime."""
        return self._build_csc()

    def _build_csc(self) -> tuple[sp.csc_matrix, np.ndarray, np.ndarray]:
        with self._lock:
            if self._csc is not None:
                return self._csc, self._b, self._c
        a, b, c = self._assemble()
        with self._lock:
            if self._csc is None:
                self._csc, self._b, self._c = a, b, c
            return self._csc, self._b, self._c

    def _assemble(self) -> tuple[sp.csc_matrix, np.ndarray, np.ndarray]:
        """Vectorized CSC assembly over the precompiled interference lists.

        Column ``ci`` (vertex ``u``, bundle ``T``) holds entry ``κ(u, v)``
        at row ``v·k + j`` for every affected later vertex ``v`` and every
        ``j ∈ T`` — the Khatri–Rao expansion of the structure's affected
        lists with the column's channel incidence — plus a 1 in its
        one-bundle-per-vertex row ``n·k + u``.  Affected lists and channel
        lists are ascending, so each CSC column comes out sorted and the
        matrix is canonical without a sort pass.
        """
        n, k = self.structure.n, self.k
        cs = self.structure
        cols = self.cols
        m = cols.vertex.size
        b = np.concatenate([np.full(n * k, cs.rho), np.ones(n)])
        if m == 0:
            return sp.csc_matrix((n * k + n, 0)), b, cols.value.copy()
        deg = cs.affected_deg[cols.vertex]
        ch_counts = cols.ch_counts
        pack_cnt = deg * ch_counts
        # int32 index arrays: HiGHS's native HighsInt, so the solver binding
        # ingests them without a conversion copy
        indptr = np.zeros(m + 1, dtype=np.int32)
        np.cumsum(pack_cnt + 1, out=indptr[1:])
        total_pack = int(pack_cnt.sum())
        indices = np.empty(total_pack + m, dtype=np.int32)
        data = np.empty(total_pack + m)
        col_of = np.repeat(np.arange(m), pack_cnt)
        ends = np.cumsum(pack_cnt)
        within = np.arange(total_pack) - np.repeat(ends - pack_cnt, pack_cnt)
        nbr_rank = within // ch_counts[col_of]
        ch_rank = within - nbr_rank * ch_counts[col_of]
        flat_at = cs.affected_off[cols.vertex[col_of]] + nbr_rank
        pack_pos = indptr[col_of] + within
        indices[pack_pos] = cs.affected_flat[flat_at] * k + cols.ch_flat[
            cols.ch_off[col_of] + ch_rank
        ]
        data[pack_pos] = cs.coeff_flat[flat_at]
        vertex_pos = indptr[1:] - 1
        indices[vertex_pos] = n * k + cols.vertex
        data[vertex_pos] = 1.0
        a = sp.csc_matrix((data, indices, indptr), shape=(n * k + n, m))
        a.has_sorted_indices = True
        return a, b, cols.value.copy()

    def _solve_raw(self, warm_start: bool = False, solver: str = "auto") -> _RawLP:
        """Solve LP (1)/(4) once into the slim internal record.

        ``warm_start`` passes the structure-keyed warm key to the LP
        backend: consecutive solves of auctions sharing this compiled
        structure (and bundle pattern) mutate the loaded model's objective
        and restart from the previous basis.  Warm solves are optimal but
        not vertex-pinned — callers opt in via the engine flag.  ``solver``
        forwards the backend mode (``"auto"`` applies the size policy).
        """
        with self._lock:
            if self._raw is not None:
                return self._raw
        n, k = self.structure.n, self.k
        if self.cols.vertex.size == 0:
            raw = _RawLP(np.zeros(0), 0.0, np.zeros((n, k)), np.zeros(n))
        else:
            a, b, c = self._build_csc()
            warm_key = (id(self.structure), n, self.k) if warm_start else None
            sol = solve_packing_lp_fast(c, a, b, warm_key=warm_key, solver=solver)
            raw = _RawLP(
                sol.x, sol.value, sol.duals[: n * k].reshape(n, k), sol.duals[n * k :]
            )
        with self._lock:
            if self._raw is None:
                self._raw = raw
                self.lp_solve_count += 1
            return self._raw

    def solve_lp(self) -> AuctionLPSolution:
        """The cached LP solution in its public form."""
        with self._lock:
            if self._lp_solution is not None:
                return self._lp_solution
        raw = self._solve_raw()
        solution = AuctionLPSolution(
            columns=list(self.columns), x=raw.x, value=raw.value, y=raw.y, z=raw.z
        )
        with self._lock:
            if self._lp_solution is None:
                self._lp_solution = solution
            return self._lp_solution

    @property
    def lp_solution(self) -> AuctionLPSolution:
        return self.solve_lp()

    # ------------------------------------------------------------------
    # rounding plans (cached per LP solution + knobs)
    # ------------------------------------------------------------------
    def rounding_plan(
        self,
        solution: AuctionLPSolution,
        scale: float | None = None,
        split: bool = True,
    ) -> RoundingPlan:
        """Fetch (or build) the vectorized rounding plan for a solution."""
        from repro.engine.vectorized import build_rounding_plan

        key = (id(solution), scale, split)
        with self._lock:
            hit = self._plan_cache.get(key)
            if hit is not None and hit[0]() is solution:
                return hit[1]
            # array fast path only when the solution is backed by our columns
            # (_cols directly: external solutions must not trigger enumeration)
            cols = self._cols if solution is self._lp_solution else None
        plan = build_rounding_plan(
            self.problem, solution, scale=scale, split=split, cols=cols
        )
        with self._lock:
            if len(self._plan_cache) >= 8:
                self._plan_cache.pop(next(iter(self._plan_cache)))
            self._plan_cache[key] = (weakref.ref(solution), plan)
        return plan

    def _default_plan(self) -> RoundingPlan:
        """Default-knob plan over the internal LP solution (array-built)."""
        from repro.engine.vectorized import build_plan_from_arrays

        with self._lock:
            if self._internal_plan is not None:
                return self._internal_plan
        raw = self._solve_raw()
        plan = build_plan_from_arrays(self.problem, raw.x, self.cols)
        if plan is None:  # column order not vertex-grouped: generic path
            plan = self.rounding_plan(self.solve_lp())
        with self._lock:
            if self._internal_plan is None:
                self._internal_plan = plan
            return self._internal_plan

    # ------------------------------------------------------------------
    # full pipeline (bit-equal to the seed SpectrumAuctionSolver.solve)
    # ------------------------------------------------------------------
    def solve(
        self,
        seed: SeedLike = None,
        derandomize: bool | str = False,
        rounding_attempts: int = 1,
        verify_power_control: bool = True,
        lp_solution: AuctionLPSolution | None = None,
        lp_warm_start: bool = False,
        lp_solver: str = "auto",
    ) -> SolverResult:
        """LP → rounding → (Algorithm 3) → validation, on the compiled instance.

        ``lp_solution`` short-circuits the LP stage with a precomputed
        solution (repeat-rounding loops solve the LP once and pass it in).
        ``lp_warm_start`` opts the LP stage into the shared-structure
        warm-start path (optimal value guaranteed, vertex not pinned);
        ``lp_solver`` forces a backend mode (benchmarks pin ``"simplex"``
        to reproduce the pre-fast-path behavior).
        """
        from repro.engine.vectorized import round_batch

        if derandomize not in (False, True, "conditional", "pairwise"):
            raise ValueError(f"unknown derandomize mode {derandomize!r}")
        rng = ensure_rng(seed)
        problem = self.problem

        rounds_alg3 = 0
        if derandomize:
            solution = self.solve_lp() if lp_solution is None else lp_solution
            lp_value, lp_iterations = solution.value, solution.iterations
            if derandomize == "pairwise":
                from repro.core.pairwise import pairwise_derandomize

                tentative = pairwise_derandomize(problem, solution).allocation
            else:
                tentative = derandomize_rounding(problem, solution).allocation
            if problem.is_weighted:
                resolution = make_fully_feasible(problem, tentative)
                best_alloc = resolution.allocation
                rounds_alg3 = resolution.rounds
            else:
                best_alloc = tentative
            best_welfare = problem.welfare(best_alloc)
        else:
            if lp_solution is None:
                raw = self._solve_raw(warm_start=lp_warm_start, solver=lp_solver)
                lp_value, lp_iterations = raw.value, 1
                plan = self._default_plan()
            else:
                lp_value, lp_iterations = lp_solution.value, lp_solution.iterations
                plan = self.rounding_plan(lp_solution)
            attempts = max(1, rounding_attempts)
            draws = rng.random((attempts, plan.width))
            outcome = round_batch(self, plan, draws)
            if problem.is_weighted:
                best_alloc, best_welfare = {}, -1.0
                for partly in outcome.allocations:
                    resolution = make_fully_feasible(problem, partly)
                    welfare = problem.welfare(resolution.allocation)
                    if welfare > best_welfare:
                        best_alloc, best_welfare = resolution.allocation, welfare
                        rounds_alg3 = resolution.rounds
            else:
                best_idx = int(np.argmax(outcome.welfares))
                best_alloc = outcome.allocations[best_idx]
                # re-sum through problem.welfare: the kernel's NumPy pairwise
                # total can differ by an ulp on non-integer valuations
                best_welfare = problem.welfare(best_alloc)

        result = SolverResult(
            allocation=best_alloc,
            welfare=max(best_welfare, 0.0),
            lp_value=lp_value,
            feasible=problem.is_feasible(best_alloc),
            guarantee=problem.approximation_bound(),
            rounds_algorithm3=rounds_alg3,
            lp_iterations=lp_iterations,
        )
        if (
            verify_power_control
            and problem.is_weighted
            and problem.structure.metadata.get("model") == "power-control"
        ):
            attach_power_assignment(problem, result)
        return result


def attach_power_assignment(problem: AuctionProblem, result: SolverResult) -> None:  # repro: mutates[result]
    """Kesselheim power assignment per channel + SINR verification."""
    from repro.interference.physical import PhysicalModel
    from repro.interference.power_control import kesselheim_power_assignment

    meta = problem.structure.metadata
    links = meta["links"]
    alpha, beta, noise = meta["alpha"], meta["beta"], meta["noise"]
    physical = PhysicalModel(links, alpha, beta, noise)
    all_ok = True
    for j in range(problem.k):
        members = [v for v, s in result.allocation.items() if j in s]
        if not members:
            continue
        powers = kesselheim_power_assignment(links, members, alpha, beta, noise)
        result.channel_powers[j] = powers
        if not physical.is_feasible(members, powers):
            all_ok = False
    result.sinr_feasible = all_ok


_auction_cache = LRUCache(128, name="compiled-auctions")


def compile_auction(
    problem: AuctionProblem,
    structure: CompiledStructure | None = None,
    cache: LRUCache | None = None,
) -> CompiledAuction:
    """Compile (or fetch from cache) one problem.

    Keyed by problem object identity like the structure cache (same
    bounded-but-pinned LRU semantics; :func:`clear_auction_cache` releases
    the default cache eagerly), so every layer asking for the same problem
    — harness helpers, the batch engine, the solver facade — shares one
    compiled instance and therefore one LP solve.  ``cache`` injects a
    caller-owned :class:`~repro.util.lru.LRUCache` in place of the
    process-wide default.
    """
    cache = _auction_cache if cache is None else cache
    return cache.get_or_create(
        id(problem), lambda: CompiledAuction(problem, structure=structure)
    )


def auction_cache_stats() -> dict[str, int]:
    """Copy of the default auction-cache counters (for tests/benches)."""
    return _auction_cache.stats()


def clear_auction_cache() -> None:
    _auction_cache.clear()
