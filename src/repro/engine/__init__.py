"""Compile-once/solve-many auction engine.

Three layers (see DESIGN.md for the architecture):

* :mod:`repro.engine.compiled` — :class:`CompiledStructure` /
  :class:`CompiledAuction`: cached LP columns, vectorized ``(A, b, c)``
  assembly over precompiled interference coefficients, cached LP solutions;
* :mod:`repro.engine.vectorized` — batched randomized rounding, drawing all
  ``attempts × n`` bundle choices as one RNG matrix and resolving conflicts
  with mask operations (bit-equal to Algorithms 1/2 run in a loop);
* :mod:`repro.engine.batch` — :class:`BatchAuctionEngine`: fan a list of
  problems across a serial/thread/process executor with deterministic
  per-instance seed spawning.

:class:`~repro.core.solver.SpectrumAuctionSolver` is a thin facade over
these pieces; use the engine directly for many-instance workloads.
"""

from repro.engine.batch import BatchAuctionEngine, BatchResult
from repro.engine.compiled import (
    CompiledAuction,
    CompiledStructure,
    auction_cache_stats,
    clear_auction_cache,
    clear_structure_cache,
    compile_auction,
    compile_structure,
    structure_cache_stats,
)
from repro.engine.highs import (
    fast_backend_available,
    solve_packing_lp_fast,
    warm_start_stats,
)
from repro.engine.vectorized import (
    BatchRoundingOutcome,
    RoundingPlan,
    build_rounding_plan,
    round_batch,
    stack_draws,
)

__all__ = [
    "BatchAuctionEngine",
    "BatchResult",
    "CompiledAuction",
    "CompiledStructure",
    "compile_auction",
    "compile_structure",
    "structure_cache_stats",
    "auction_cache_stats",
    "clear_structure_cache",
    "clear_auction_cache",
    "fast_backend_available",
    "solve_packing_lp_fast",
    "warm_start_stats",
    "BatchRoundingOutcome",
    "RoundingPlan",
    "build_rounding_plan",
    "round_batch",
    "stack_draws",
]
