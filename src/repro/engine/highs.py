"""Persistent HiGHS backend for the compile-once/solve-many engine.

``scipy.optimize.linprog`` rebuilds a ``Highs`` object, re-parses every
option string, and re-validates the model on each call — for the small LPs
of a single auction that overhead is larger than the solve itself.  This
module keeps one ``Highs`` instance (and one parsed options object) per
thread and only swaps the model in, which roughly triples LP throughput on
batch workloads while returning *bit-identical* primal/dual solutions (the
model and option values passed to HiGHS are the same; the equivalence tests
pin this against :func:`repro.core.lp.solve_packing_lp`).

On top of the persistent instance sits an opt-in **warm-start** path for
re-solve sequences (``warm_key``): when consecutive solves under the same
key share the constraint matrix and RHS — auctions compiled on one
:class:`~repro.engine.compiled.CompiledStructure` with unchanged bundle
patterns, e.g. re-auctions with updated bids or mechanism misreport probes
— only the objective is mutated in the loaded model
(``changeColsCost``) and HiGHS re-solves from the previous optimal basis.
That skips model ingestion, presolve, and most simplex iterations (2–3x on
the BENCH_engine re-auction trace).  Warm solves return *an* optimal
solution with the same objective value, but on degenerate LPs possibly a
different vertex than a cold solve — which is why the path is opt-in
(``BatchAuctionEngine(lp_warm_start=True)``) and never used where
bit-parity with the seed pipeline is pinned.

The fast path relies on the private ``scipy.optimize._highspy`` bindings
that scipy's own ``linprog(method="highs")`` is built on.  When the import
fails (future scipy reshuffles), everything transparently falls back to
:func:`repro.core.lp.solve_packing_lp` — slower, never wrong.
"""

from __future__ import annotations

import threading
from collections.abc import Hashable
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.lp import LPSolution, solve_packing_lp
from repro.util.mp import register_fork_reset

__all__ = [
    "solve_packing_lp_fast",
    "fast_backend_available",
    "warm_start_stats",
    "reset_backend",
    "choose_solver",
    "highs_core",
    "new_highs_instance",
    "IPM_MIN_ROWS",
]

# Above this row count the packing LPs' simplex paths degrade sharply while
# interior point (with crossover, so a basic optimal solution still comes
# back) stays near-linear — the n≈5000 metro auction solves ~5x faster.
# Measured crossover on the BENCH_scale.json workloads (~2000 rows; set
# above it so every seed-scale instance keeps the bit-parity simplex path).
IPM_MIN_ROWS = 3000

try:  # pragma: no cover - exercised indirectly by every engine test
    import scipy.optimize._highspy._core as _hcore
except ImportError:  # pragma: no cover - environment-dependent
    _hcore = None

_local = threading.local()


def fast_backend_available() -> bool:
    """True when the persistent-HiGHS fast path can be used."""
    return _hcore is not None


def highs_core() -> Any:
    """The private HiGHS binding module, or ``None`` when unavailable.

    Callers building their own incremental models (the Lavi–Swamy master,
    the warm-started VCG re-solves) go through this accessor so the import
    fallback lives in exactly one place.
    """
    return _hcore


def new_highs_instance() -> Any:
    """A dedicated ``Highs`` instance with the engine's standard options
    (silent, single-threaded), or ``None`` when the bindings are missing.

    Unlike :func:`solve_packing_lp_fast`'s per-thread instance, a dedicated
    instance owns its loaded model for its whole lifetime — the shape the
    incremental-column master and the cost-mutating VCG loop need, without
    clobbering the shared warm-start state.
    """
    if _hcore is None:
        return None
    highs = _hcore._Highs()
    options = _hcore.HighsOptions()
    options.output_flag = False
    options.threads = 1
    highs.passOptions(options)
    return highs


def pass_colwise_model(
    highs: Any,
    a: sp.csc_matrix,
    cost: np.ndarray,
    col_lower: np.ndarray,
    col_upper: np.ndarray,
    row_lower: np.ndarray,
    row_upper: np.ndarray,
) -> None:
    """Load a column-major LP into ``highs`` (minimization; bounds as given).

    The one place the ``HighsLp`` field-by-field construction lives —
    shared by the packing solver's cold path, the VCG probe loop, and the
    decomposition master, so a binding quirk is fixed once for all three.
    """
    m, n = a.shape
    lp = _hcore.HighsLp()
    lp.num_col_ = n
    lp.num_row_ = m
    lp.a_matrix_.num_col_ = n
    lp.a_matrix_.num_row_ = m
    lp.a_matrix_.format_ = _hcore.MatrixFormat.kColwise
    lp.a_matrix_.start_ = a.indptr
    lp.a_matrix_.index_ = a.indices
    lp.a_matrix_.value_ = a.data
    lp.col_cost_ = cost
    lp.col_lower_ = col_lower
    lp.col_upper_ = col_upper
    lp.row_lower_ = row_lower
    lp.row_upper_ = row_upper
    highs.passModel(lp)


def choose_solver(m: int, n: int) -> str:
    """The ``solver="auto"`` policy: simplex below :data:`IPM_MIN_ROWS` rows
    (bit-compatible with the seed pipeline's linprog), interior point above."""
    return "ipm" if m >= IPM_MIN_ROWS else "simplex"


def _thread_highs(solver: str) -> Any:
    """One ``Highs`` instance per thread *and solver mode* (HiGHS objects are
    not thread-safe, and keeping modes separate avoids option churn)."""
    instances = getattr(_local, "instances", None)
    if instances is None:
        instances = _local.instances = {}
        _local.loaded = None  # (warm_key, a, b) of the last simplex model
        _local.warm_stats = {"warm": 0, "cold": 0}
        _local.aux = {}
    highs = instances.get(solver)
    if highs is None:
        highs = _hcore._Highs()
        options = _hcore.HighsOptions()
        options.output_flag = False
        # single-threaded: the small LPs sit far below HiGHS's parallel
        # thresholds, so the only effect of the default is per-run
        # thread-pool setup; the solve path (and the solution) is unchanged
        options.threads = 1
        if solver == "ipm":
            options.solver = "ipm"  # crossover stays on: basic solutions
        highs.passOptions(options)
        instances[solver] = highs
    return highs


def warm_start_stats() -> dict[str, int]:
    """This thread's warm/cold solve counters (for tests and benchmarks)."""
    _thread_highs("simplex")
    return dict(_local.warm_stats)


def reset_backend() -> None:
    """Drop this thread's persistent backend state (instances, loaded
    warm-start model, counters, cached bound arrays).

    Process-pool workers call this once at startup: under a fork-based
    start method the child's main thread inherits the forking thread's
    ``threading.local`` slot, including the identity-keyed warm-start
    record of a model loaded in the *parent's* lifetime.  Fork preserves
    addresses, so those stale identity checks could spuriously match and
    warm-start a fresh worker off a basis it never computed — a fresh
    process must start cold.
    """
    for attr in ("instances", "loaded", "warm_stats", "aux"):
        try:
            delattr(_local, attr)
        except AttributeError:
            pass


# every thread-local holding native state must be resettable at worker
# spawn; repro.util.mp.run_fork_resets(require=...) asserts this hook
# exists before a pool worker takes its first solve
register_fork_reset("repro.engine.highs", reset_backend)


def _aux_arrays(m: int, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached (zeros_n, inf_n, neginf_m) bound arrays per dimension pair."""
    aux = _local.aux
    hit = aux.get((m, n))
    if hit is None:
        hit = (np.zeros(n), np.full(n, np.inf), np.full(m, -np.inf))
        if len(aux) >= 32:
            aux.pop(next(iter(aux)))
        aux[(m, n)] = hit
    return hit


def _same_model(
    loaded: tuple[Hashable, sp.csc_matrix, np.ndarray] | None,
    warm_key: Hashable,
    a: sp.csc_matrix,
    b: np.ndarray,
) -> bool:
    """Is the loaded model this key's matrix/RHS (so only costs changed)?

    Identity checks first (re-solves of one compiled instance hand over the
    same cached arrays); the equality fallback catches distinct compiled
    auctions sharing one structure whose enumerated bundle patterns match.
    """
    if loaded is None or loaded[0] != warm_key:
        return False
    a_prev, b_prev = loaded[1], loaded[2]
    if a_prev is a and b_prev is b:
        return True
    return (
        a_prev.shape == a.shape
        and a_prev.nnz == a.nnz
        and np.array_equal(a_prev.indptr, a.indptr)
        and np.array_equal(a_prev.indices, a.indices)
        and np.array_equal(a_prev.data, a.data)
        and np.array_equal(b_prev, b)
    )


def solve_packing_lp_fast(
    c: np.ndarray,
    a_ub: sp.spmatrix,
    b_ub: np.ndarray,
    warm_key: Hashable | None = None,
    solver: str = "auto",
) -> LPSolution:
    """Solve ``max c·x s.t. a_ub x ≤ b_ub, x ≥ 0`` via the persistent backend.

    Same contract as :func:`repro.core.lp.solve_packing_lp` (maximization,
    duals ``y ≥ 0`` of the packing rows); raises ``RuntimeError`` on
    non-optimal status.

    ``solver`` is ``"simplex"``, ``"ipm"``, or ``"auto"`` (the
    :func:`choose_solver` size policy).  Both modes return optimal basic
    solutions (IPM runs crossover); small LPs always take simplex, keeping
    bit-parity with the seed pipeline.

    ``warm_key`` (hashable, typically the compiled structure's identity plus
    the LP dimensions) opts into the warm-start path: if the thread's loaded
    model carries the same key, matrix, and RHS, only the objective is
    mutated and HiGHS starts from the previous basis.  Callers must accept
    any optimal vertex when passing a key (see module docstring).  Warm
    starts apply to the simplex mode only (IPM has no basis to reuse).
    """
    if _hcore is None:
        return solve_packing_lp(c, a_ub, b_ub)
    a = a_ub if isinstance(a_ub, sp.csc_matrix) else sp.csc_matrix(a_ub)
    c = np.asarray(c, dtype=float)
    b_ub = np.asarray(b_ub, dtype=float)
    m, n = a.shape
    if (m, n) != (b_ub.shape[0], c.shape[0]):
        raise ValueError(f"A has shape {a.shape}, expected ({b_ub.shape[0]}, {c.shape[0]})")
    if solver not in ("auto", "simplex", "ipm"):
        raise ValueError(f"solver must be 'auto', 'simplex', or 'ipm', got {solver!r}")
    if solver == "auto":
        solver = choose_solver(m, n)

    highs = _thread_highs(solver)
    if (
        solver == "simplex"
        and warm_key is not None
        and _same_model(_local.loaded, warm_key, a, b_ub)
    ):
        _local.warm_stats["warm"] += 1
        idx = np.arange(n, dtype=np.int32)
        highs.changeColsCost(n, idx, -c)  # basis survives: warm re-solve
    else:
        _local.warm_stats["cold"] += 1
        zeros_n, inf_n, neginf_m = _aux_arrays(m, n)
        # -c: HiGHS minimizes
        pass_colwise_model(highs, a, -c, zeros_n, inf_n, neginf_m, b_ub)
        if solver == "simplex":  # ipm uses its own instance; simplex state intact
            _local.loaded = (warm_key, a, b_ub) if warm_key is not None else None
    highs.run()
    status = highs.getModelStatus()
    if status != _hcore.HighsModelStatus.kOptimal:
        _local.loaded = None  # do not warm-start off a failed solve
        raise RuntimeError(
            f"LP solve failed (status {status}): {highs.modelStatusToString(status)}"
        )
    solution = highs.getSolution()
    duals = -np.asarray(solution.row_dual, dtype=float)
    duals[duals < 0] = 0.0  # clip numerical noise, as in solve_packing_lp
    return LPSolution(
        x=np.asarray(solution.col_value, dtype=float),
        value=float(-highs.getInfo().objective_function_value),
        duals=duals,
        status=0,
        message="Optimal",
    )
