"""Persistent HiGHS backend for the compile-once/solve-many engine.

``scipy.optimize.linprog`` rebuilds a ``Highs`` object, re-parses every
option string, and re-validates the model on each call — for the small LPs
of a single auction that overhead is larger than the solve itself.  This
module keeps one ``Highs`` instance (and one parsed options object) per
thread and only swaps the model in, which roughly triples LP throughput on
batch workloads while returning *bit-identical* primal/dual solutions (the
model and option values passed to HiGHS are the same; the equivalence tests
pin this against :func:`repro.core.lp.solve_packing_lp`).

The fast path relies on the private ``scipy.optimize._highspy`` bindings
that scipy's own ``linprog(method="highs")`` is built on.  When the import
fails (future scipy reshuffles), everything transparently falls back to
:func:`repro.core.lp.solve_packing_lp` — slower, never wrong.
"""

from __future__ import annotations

import threading

import numpy as np
import scipy.sparse as sp

from repro.core.lp import LPSolution, solve_packing_lp

__all__ = ["solve_packing_lp_fast", "fast_backend_available"]

try:  # pragma: no cover - exercised indirectly by every engine test
    import scipy.optimize._highspy._core as _hcore
except ImportError:  # pragma: no cover - environment-dependent
    _hcore = None

_local = threading.local()


def fast_backend_available() -> bool:
    """True when the persistent-HiGHS fast path can be used."""
    return _hcore is not None


def _thread_highs():
    """One ``Highs`` instance per thread (HiGHS objects are not thread-safe)."""
    highs = getattr(_local, "highs", None)
    if highs is None:
        highs = _hcore._Highs()
        options = _hcore.HighsOptions()
        options.output_flag = False
        highs.passOptions(options)
        _local.highs = highs
    return highs


def solve_packing_lp_fast(
    c: np.ndarray, a_ub: sp.spmatrix, b_ub: np.ndarray
) -> LPSolution:
    """Solve ``max c·x s.t. a_ub x ≤ b_ub, x ≥ 0`` via the persistent backend.

    Same contract as :func:`repro.core.lp.solve_packing_lp` (maximization,
    duals ``y ≥ 0`` of the packing rows); raises ``RuntimeError`` on
    non-optimal status.
    """
    if _hcore is None:
        return solve_packing_lp(c, a_ub, b_ub)
    a = a_ub if isinstance(a_ub, sp.csc_matrix) else sp.csc_matrix(a_ub)
    c = np.asarray(c, dtype=float)
    b_ub = np.asarray(b_ub, dtype=float)
    m, n = a.shape
    if (m, n) != (b_ub.shape[0], c.shape[0]):
        raise ValueError(f"A has shape {a.shape}, expected ({b_ub.shape[0]}, {c.shape[0]})")

    lp = _hcore.HighsLp()
    lp.num_col_ = n
    lp.num_row_ = m
    lp.a_matrix_.num_col_ = n
    lp.a_matrix_.num_row_ = m
    lp.a_matrix_.format_ = _hcore.MatrixFormat.kColwise
    lp.a_matrix_.start_ = a.indptr
    lp.a_matrix_.index_ = a.indices
    lp.a_matrix_.value_ = a.data
    lp.col_cost_ = -c  # HiGHS minimizes
    lp.col_lower_ = np.zeros(n)
    lp.col_upper_ = np.full(n, np.inf)
    lp.row_lower_ = np.full(m, -np.inf)
    lp.row_upper_ = b_ub

    highs = _thread_highs()
    highs.passModel(lp)
    highs.run()
    status = highs.getModelStatus()
    if status != _hcore.HighsModelStatus.kOptimal:
        raise RuntimeError(
            f"LP solve failed (status {status}): {highs.modelStatusToString(status)}"
        )
    solution = highs.getSolution()
    duals = -np.asarray(solution.row_dual, dtype=float)
    duals[duals < 0] = 0.0  # clip numerical noise, as in solve_packing_lp
    return LPSolution(
        x=np.asarray(solution.col_value, dtype=float),
        value=float(-highs.getInfo().objective_function_value),
        duals=duals,
        status=0,
        message="Optimal",
    )
