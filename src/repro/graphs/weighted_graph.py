"""Edge-weighted conflict graphs (Section 3 of the paper).

A weighted conflict graph assigns a non-negative weight ``w(u, v)`` to every
*ordered* pair of vertices.  A set ``M`` is independent when every member
receives total incoming weight below 1 from the other members:

    Σ_{u ∈ M, u ≠ v} w(u, v) < 1   for all v ∈ M.

Since weights need not be symmetric, the paper works with the symmetrized
weights ``w̄(u, v) = w(u, v) + w(v, u)`` in Definition 2 and in Algorithms
2/3; :meth:`WeightedConflictGraph.wbar_matrix` exposes them.

Setting ``w(u, v) = w(v, u) = 1`` for each edge of an unweighted conflict
graph recovers exactly the unweighted notion of independence, which is how
:meth:`WeightedConflictGraph.from_conflict_graph` embeds binary models into
the weighted machinery.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering

__all__ = ["WeightedConflictGraph"]


class WeightedConflictGraph:
    """Directed edge-weighted conflict graph on vertices ``0..n-1``.

    Like :class:`~repro.graphs.conflict_graph.ConflictGraph`, the weights
    live either in a dense matrix (the default) or in CSR form
    (:meth:`from_csr`, used by the sparse physical-model builder where the
    cutoff makes most of the n² weights zero).  ``weights`` and
    ``wbar_matrix`` densify a CSR graph lazily; large-n consumers should use
    ``w_csr`` / ``wbar_csr`` instead.
    """

    def __init__(self, weights: np.ndarray) -> None:
        w = np.array(weights, dtype=float)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ValueError("weights must be a square matrix")
        if (w < 0).any():
            raise ValueError("edge weights must be non-negative")
        if not np.isfinite(w).all():
            raise ValueError("edge weights must be finite")
        np.fill_diagonal(w, 0.0)
        self._n = w.shape[0]
        self._w: np.ndarray | None = w
        self._wbar: np.ndarray | None = w + w.T
        self._w_csr: sp.csr_matrix | None = None
        self._wbar_csr: sp.csr_matrix | None = None

    @classmethod
    def from_csr(cls, weights: sp.spmatrix) -> "WeightedConflictGraph":
        """Build from a CSR matrix of directed weights *without densifying*."""
        w = sp.csr_matrix(weights, dtype=float)
        if w.shape[0] != w.shape[1]:
            raise ValueError("weights must be a square matrix")
        w.sum_duplicates()
        w.sort_indices()
        w.eliminate_zeros()
        if (w.data < 0).any():
            raise ValueError("edge weights must be non-negative")
        if not np.isfinite(w.data).all():
            raise ValueError("edge weights must be finite")
        if w.diagonal().any():
            w = w.copy()
            w.setdiag(0.0)
            w.eliminate_zeros()
        g = cls.__new__(cls)
        g._n = w.shape[0]
        g._w = None
        g._wbar = None
        g._w_csr = w
        wbar = (w + w.T).tocsr()
        wbar.sort_indices()
        g._wbar_csr = wbar
        return g

    @classmethod
    def from_conflict_graph(cls, graph: ConflictGraph) -> "WeightedConflictGraph":
        """Embed an unweighted graph: weight 1 per directed edge.

        Independence coincides with the unweighted definition because a
        single incoming edge already contributes weight 1 ≥ 1.
        """
        if graph.is_sparse:
            return cls.from_csr(graph.csr.astype(float))
        return cls(graph.adjacency.astype(float))

    @property
    def n(self) -> int:
        return self._n

    @property
    def is_sparse(self) -> bool:
        """True when the graph is CSR-backed and never been densified."""
        return self._w is None

    @property
    def weights(self) -> np.ndarray:
        """Directed weight matrix ``w[u, v] = w(u → v)`` (do not mutate).

        CSR-backed graphs densify on first access and keep the result."""
        if self._w is None:
            self._w = self._w_csr.toarray()
        return self._w

    @property
    def wbar_matrix(self) -> np.ndarray:
        """Symmetrized weights ``w̄ = w + wᵀ`` (do not mutate)."""
        if self._wbar is None:
            self._wbar = self.wbar_csr.toarray()
        return self._wbar

    @property
    def w_csr(self) -> sp.csr_matrix:
        """Directed weights in CSR form (built from dense on demand)."""
        if self._w_csr is None:
            self._w_csr = sp.csr_matrix(self._w)
            self._w_csr.sort_indices()
        return self._w_csr

    @property
    def wbar_csr(self) -> sp.csr_matrix:
        """Symmetrized weights in CSR form (built from dense on demand)."""
        if self._wbar_csr is None:
            if self._wbar is not None:
                self._wbar_csr = sp.csr_matrix(self._wbar)
            else:
                self._wbar_csr = (self.w_csr + self.w_csr.T).tocsr()
            self._wbar_csr.sort_indices()
        return self._wbar_csr

    def w(self, u: int, v: int) -> float:
        if self._w is None:
            return float(self._w_csr[u, v])
        return float(self._w[u, v])

    def wbar(self, u: int, v: int) -> float:
        if self._wbar is None:
            return float(self._wbar_csr[u, v])
        return float(self._wbar[u, v])

    def is_independent(self, vertices: Iterable[int]) -> bool:
        """Check the weighted independence condition for the vertex set."""
        idx = np.fromiter(vertices, dtype=np.intp)
        if idx.size <= 1:
            return True
        if len(set(idx.tolist())) != idx.size:
            raise ValueError("vertex set contains duplicates")
        if self._w is None:
            incoming = np.asarray(
                self._w_csr[idx][:, idx].sum(axis=0)
            ).ravel()
        else:
            incoming = self._w[np.ix_(idx, idx)].sum(axis=0)
        return bool((incoming < 1.0).all())

    def incoming_weight(self, members: Sequence[int], v: int) -> float:
        """Σ_{u ∈ members} w(u, v) — interference received by ``v``."""
        idx = np.asarray(members, dtype=np.intp)
        if idx.size == 0:
            return 0.0
        if self._w is None:
            return float(self._w_csr[idx, [v]].sum())
        return float(self._w[idx, v].sum())

    def backward_wbar(self, v: int, ordering: VertexOrdering) -> np.ndarray:
        """Vector of ``w̄(u, v)`` restricted to vertices before ``v`` in π
        (zero elsewhere)."""
        if self._wbar is None:
            col = np.asarray(self._wbar_csr[:, [v]].todense()).ravel()
            return np.where(ordering.earlier_mask(v), col, 0.0)
        return np.where(ordering.earlier_mask(v), self._wbar[:, v], 0.0)

    def threshold_graph(self, threshold: float = 1.0) -> ConflictGraph:
        """Binary graph keeping pairs whose symmetric weight reaches
        ``threshold`` — pairs that can never coexist."""
        if self._wbar is None:
            keep = self.wbar_csr >= threshold
            keep = sp.csr_matrix(keep)
            keep.setdiag(False)
            keep.eliminate_zeros()
            return ConflictGraph.from_csr(keep)
        adj = self._wbar >= threshold
        np.fill_diagonal(adj, False)
        return ConflictGraph.from_adjacency(adj)

    def subgraph(self, vertices: Sequence[int]) -> tuple["WeightedConflictGraph", np.ndarray]:
        idx = np.asarray(vertices, dtype=np.intp)
        if self._w is None:
            return WeightedConflictGraph.from_csr(self._w_csr[idx][:, idx]), idx
        return WeightedConflictGraph(self._w[np.ix_(idx, idx)]), idx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nnz = self._w_csr.nnz if self._w is None else int(np.count_nonzero(self._w))
        return f"WeightedConflictGraph(n={self.n}, nonzero_weights={nnz})"
