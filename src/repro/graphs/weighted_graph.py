"""Edge-weighted conflict graphs (Section 3 of the paper).

A weighted conflict graph assigns a non-negative weight ``w(u, v)`` to every
*ordered* pair of vertices.  A set ``M`` is independent when every member
receives total incoming weight below 1 from the other members:

    Σ_{u ∈ M, u ≠ v} w(u, v) < 1   for all v ∈ M.

Since weights need not be symmetric, the paper works with the symmetrized
weights ``w̄(u, v) = w(u, v) + w(v, u)`` in Definition 2 and in Algorithms
2/3; :meth:`WeightedConflictGraph.wbar_matrix` exposes them.

Setting ``w(u, v) = w(v, u) = 1`` for each edge of an unweighted conflict
graph recovers exactly the unweighted notion of independence, which is how
:meth:`WeightedConflictGraph.from_conflict_graph` embeds binary models into
the weighted machinery.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering

__all__ = ["WeightedConflictGraph"]


class WeightedConflictGraph:
    """Directed edge-weighted conflict graph on vertices ``0..n-1``."""

    def __init__(self, weights: np.ndarray) -> None:
        w = np.array(weights, dtype=float)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ValueError("weights must be a square matrix")
        if (w < 0).any():
            raise ValueError("edge weights must be non-negative")
        if not np.isfinite(w).all():
            raise ValueError("edge weights must be finite")
        np.fill_diagonal(w, 0.0)
        self._w = w
        self._wbar = w + w.T

    @classmethod
    def from_conflict_graph(cls, graph: ConflictGraph) -> "WeightedConflictGraph":
        """Embed an unweighted graph: weight 1 per directed edge.

        Independence coincides with the unweighted definition because a
        single incoming edge already contributes weight 1 ≥ 1.
        """
        return cls(graph.adjacency.astype(float))

    @property
    def n(self) -> int:
        return self._w.shape[0]

    @property
    def weights(self) -> np.ndarray:
        """Directed weight matrix ``w[u, v] = w(u → v)`` (do not mutate)."""
        return self._w

    @property
    def wbar_matrix(self) -> np.ndarray:
        """Symmetrized weights ``w̄ = w + wᵀ`` (do not mutate)."""
        return self._wbar

    def w(self, u: int, v: int) -> float:
        return float(self._w[u, v])

    def wbar(self, u: int, v: int) -> float:
        return float(self._wbar[u, v])

    def is_independent(self, vertices: Iterable[int]) -> bool:
        """Check the weighted independence condition for the vertex set."""
        idx = np.fromiter(vertices, dtype=np.intp)
        if idx.size <= 1:
            return True
        if len(set(idx.tolist())) != idx.size:
            raise ValueError("vertex set contains duplicates")
        incoming = self._w[np.ix_(idx, idx)].sum(axis=0)
        return bool((incoming < 1.0).all())

    def incoming_weight(self, members: Sequence[int], v: int) -> float:
        """Σ_{u ∈ members} w(u, v) — interference received by ``v``."""
        idx = np.asarray(members, dtype=np.intp)
        return float(self._w[idx, v].sum()) if idx.size else 0.0

    def backward_wbar(self, v: int, ordering: VertexOrdering) -> np.ndarray:
        """Vector of ``w̄(u, v)`` restricted to vertices before ``v`` in π
        (zero elsewhere)."""
        out = np.where(ordering.earlier_mask(v), self._wbar[:, v], 0.0)
        return out

    def threshold_graph(self, threshold: float = 1.0) -> ConflictGraph:
        """Binary graph keeping pairs whose symmetric weight reaches
        ``threshold`` — pairs that can never coexist."""
        adj = self._wbar >= threshold
        np.fill_diagonal(adj, False)
        return ConflictGraph.from_adjacency(adj)

    def subgraph(self, vertices: Sequence[int]) -> tuple["WeightedConflictGraph", np.ndarray]:
        idx = np.asarray(vertices, dtype=np.intp)
        return WeightedConflictGraph(self._w[np.ix_(idx, idx)]), idx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nnz = int(np.count_nonzero(self._w))
        return f"WeightedConflictGraph(n={self.n}, nonzero_weights={nnz})"
