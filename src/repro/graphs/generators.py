"""Graph generators, including the paper's hardness constructions.

Besides standard random/structured graphs used by tests and experiments,
this module implements the two constructions behind the paper's lower
bounds as *instance generators*:

* :func:`clique` — on cliques the edge-based LP of Section 2.1 has
  integrality gap ``n/2`` while the inductive LP (ρ = 1) does not (E10).
* :func:`theorem18_edge_partition` — splits the edges of a bounded-degree
  graph into ``k`` per-channel conflict graphs such that each channel graph
  has inductive independence ≤ ⌈d/k⌉ yet the only valuable bundles are the
  full channel set; allocations of value b correspond to independent sets
  of size b in the original graph (Theorem 18, Section 6).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.util.rng import ensure_rng

__all__ = [
    "empty_graph",
    "clique",
    "path",
    "cycle",
    "star",
    "gnp_random_graph",
    "random_regular_graph",
    "theorem18_edge_partition",
]


def empty_graph(n: int) -> ConflictGraph:
    return ConflictGraph(n)


def clique(n: int) -> ConflictGraph:
    adj = np.ones((n, n), dtype=bool)
    np.fill_diagonal(adj, False)
    return ConflictGraph.from_adjacency(adj)


def path(n: int) -> ConflictGraph:
    return ConflictGraph(n, [(i, i + 1) for i in range(n - 1)])


def cycle(n: int) -> ConflictGraph:
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return ConflictGraph(n, [(i, (i + 1) % n) for i in range(n)])


def star(n: int) -> ConflictGraph:
    """Star with center 0 and ``n - 1`` leaves."""
    return ConflictGraph(n, [(0, i) for i in range(1, n)])


def gnp_random_graph(n: int, p: float, seed=None) -> ConflictGraph:
    """Erdős–Rényi G(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = ensure_rng(seed)
    upper = np.triu(rng.random((n, n)) < p, k=1)
    return ConflictGraph.from_adjacency(upper | upper.T)


def random_regular_graph(n: int, d: int, seed=None) -> ConflictGraph:
    """Random d-regular graph (configuration model via networkx)."""
    import networkx as nx

    rng = ensure_rng(seed)
    g = nx.random_regular_graph(d, n, seed=int(rng.integers(2**31)))
    return ConflictGraph(n, list(g.edges()))


def theorem18_edge_partition(
    graph: ConflictGraph,
    k: int,
    ordering: VertexOrdering | None = None,
) -> list[ConflictGraph]:
    """Theorem 18 construction: split edges into ``k`` channel graphs.

    Processing vertices in the given ordering (identity by default), the
    edges from each vertex to its *earlier* neighbors are dealt round-robin
    to the ``k`` channels, so each channel graph gives every vertex at most
    ``⌈backdeg/k⌉`` backward edges — hence inductive independence at most
    ``⌈d/k⌉`` for a degree-``d`` input under the same ordering.

    Combined with all-or-nothing valuations (bidders value only the full
    bundle ``[k]``), feasible allocations of welfare ``b`` correspond
    exactly to independent sets of size ``b`` in ``graph``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = graph.n
    pi = ordering if ordering is not None else VertexOrdering.identity(n)
    edge_lists: list[list[tuple[int, int]]] = [[] for _ in range(k)]
    for v in pi.vertices():
        back = graph.backward_neighbors(int(v), pi)
        for idx, u in enumerate(back.tolist()):
            edge_lists[idx % k].append((u, int(v)))
    return [ConflictGraph(n, edges) for edges in edge_lists]
