"""Conflict-graph substrate: graphs, orderings, independence, generators."""

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.independence import (
    greedy_independent_set,
    greedy_weighted_independent_set,
    max_independent_set_size,
    max_profit_weighted_independent_set,
    max_weight_independent_set,
)
from repro.graphs.inductive import (
    WeightedRhoBounds,
    inductive_independence_number,
    rho_of_ordering,
    weighted_rho_of_ordering,
)
from repro.graphs.orderings import (
    degeneracy_ordering,
    max_degree_first_ordering,
    ordering_quality,
    random_ordering,
)
from repro.graphs.weighted_graph import WeightedConflictGraph

__all__ = [
    "ConflictGraph",
    "VertexOrdering",
    "WeightedConflictGraph",
    "max_weight_independent_set",
    "max_independent_set_size",
    "greedy_independent_set",
    "max_profit_weighted_independent_set",
    "greedy_weighted_independent_set",
    "rho_of_ordering",
    "inductive_independence_number",
    "weighted_rho_of_ordering",
    "WeightedRhoBounds",
    "degeneracy_ordering",
    "max_degree_first_ordering",
    "random_ordering",
    "ordering_quality",
]
