"""Ordering heuristics and quality measures.

The paper's algorithms take the inductive ordering π as an input certified
by the interference model (decreasing radius, decreasing length, …).  When
no certificate is available — arbitrary conflict graphs — one needs a
heuristic ordering; this module provides the standard candidates and the
machinery to compare them:

* :func:`degeneracy_ordering` — min-degree elimination (optimal for the
  *degeneracy*, a ρ upper bound since an independent set in a backward
  neighborhood is at most the backward degree);
* :func:`max_degree_first_ordering` / :func:`random_ordering` — baselines;
* the exact optimum is `repro.graphs.inductive.inductive_independence_number`.

Ablation A6 measures how the pipeline's LP value and rounded welfare react
to ordering quality: a sloppier ordering inflates ρ(π), which loosens LP
row (1b) *and* deflates the rounding probabilities — a double penalty.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.util.rng import ensure_rng

__all__ = [
    "degeneracy_ordering",
    "max_degree_first_ordering",
    "random_ordering",
    "ordering_quality",
]


def degeneracy_ordering(graph: ConflictGraph) -> VertexOrdering:
    """Min-degree elimination ordering (reverse removal order).

    The backward degree of every vertex is at most the degeneracy d(G), so
    ρ(π) ≤ d(G) for this ordering.
    """
    n = graph.n
    adj = graph.adjacency
    alive = np.ones(n, dtype=bool)
    degree = adj.sum(axis=1).astype(int)
    version = np.zeros(n, dtype=np.int64)
    heap = [(int(degree[v]), v, 0) for v in range(n)]
    heapq.heapify(heap)
    removal: list[int] = []
    while len(removal) < n:
        _, v, stamp = heapq.heappop(heap)
        if not alive[v] or stamp != version[v]:
            continue
        alive[v] = False
        removal.append(v)
        for u in np.flatnonzero(adj[v] & alive).tolist():
            degree[u] -= 1
            version[u] += 1
            heapq.heappush(heap, (int(degree[u]), u, int(version[u])))
    return VertexOrdering(np.array(removal[::-1], dtype=np.intp))


def max_degree_first_ordering(graph: ConflictGraph) -> VertexOrdering:
    """π-smallest = highest degree (a reasonable but uncertified heuristic:
    hubs go early so they appear in few backward neighborhoods)."""
    degrees = graph.adjacency.sum(axis=1)
    return VertexOrdering.by_key(degrees.astype(float), descending=True)


def random_ordering(graph: ConflictGraph, seed=None) -> VertexOrdering:
    rng = ensure_rng(seed)
    return VertexOrdering(rng.permutation(graph.n))


def ordering_quality(graph: ConflictGraph, ordering: VertexOrdering) -> dict:
    """Diagnostics for an ordering: ρ(π) and the max backward degree."""
    from repro.graphs.inductive import rho_of_ordering

    max_back = 0
    for v in range(graph.n):
        max_back = max(max_back, int(graph.backward_neighbors(v, ordering).size))
    return {
        "rho": rho_of_ordering(graph, ordering),
        "max_backward_degree": max_back,
    }
