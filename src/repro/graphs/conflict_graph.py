"""Unweighted conflict graphs and vertex orderings.

The conflict graph (Problem 1 of the paper) has one vertex per bidder and an
edge between two bidders that may never share a channel.  A *vertex ordering*
π is the certificate behind the inductive independence number (Definition 1):
for every vertex ``v`` the paper's algorithms only inspect the *backward
neighborhood* ``Γ_π(v)`` — the neighbors of ``v`` placed before it by π.

Graphs are stored as dense boolean adjacency matrices: every instance in the
paper's models has at most a few hundred vertices, where dense NumPy kernels
beat sparse bookkeeping (see the performance notes in DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["ConflictGraph", "VertexOrdering"]


class VertexOrdering:
    """A total order π on vertices ``0..n-1``.

    ``perm[i]`` is the vertex occupying position ``i`` (position 0 is the
    π-smallest vertex); ``pos[v]`` is the position of vertex ``v``.
    """

    def __init__(self, perm: Sequence[int]) -> None:
        perm_arr = np.asarray(perm, dtype=np.intp)
        n = perm_arr.shape[0]
        if sorted(perm_arr.tolist()) != list(range(n)):
            raise ValueError("perm must be a permutation of 0..n-1")
        self.perm = perm_arr
        self.pos = np.empty(n, dtype=np.intp)
        self.pos[perm_arr] = np.arange(n, dtype=np.intp)

    @classmethod
    def identity(cls, n: int) -> "VertexOrdering":
        return cls(np.arange(n, dtype=np.intp))

    @classmethod
    def by_key(cls, keys: Sequence[float], descending: bool = False) -> "VertexOrdering":
        """Order vertices by ``keys`` (stable); ``descending=True`` puts the
        largest key first (used for radius orderings, Proposition 9)."""
        keys_arr = np.asarray(keys, dtype=float)
        perm = np.argsort(-keys_arr if descending else keys_arr, kind="stable")
        return cls(perm)

    @property
    def n(self) -> int:
        return int(self.perm.shape[0])

    def position(self, v: int) -> int:
        return int(self.pos[v])

    def vertices(self) -> np.ndarray:
        """Vertices from π-smallest to π-largest (a copy)."""
        return self.perm.copy()

    def precedes(self, u: int, v: int) -> bool:
        """True iff π(u) < π(v)."""
        return bool(self.pos[u] < self.pos[v])

    def earlier_mask(self, v: int) -> np.ndarray:
        """Boolean mask of vertices strictly before ``v`` in π."""
        return self.pos < self.pos[v]

    def reversed(self) -> "VertexOrdering":
        return VertexOrdering(self.perm[::-1].copy())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VertexOrdering) and np.array_equal(self.perm, other.perm)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VertexOrdering({self.perm.tolist()})"


class ConflictGraph:
    """Undirected, unweighted conflict graph on vertices ``0..n-1``."""

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._adj = np.zeros((n, n), dtype=bool)
        for u, v in edges:
            self._add_edge(u, v)

    @classmethod
    def from_adjacency(cls, adjacency: np.ndarray) -> "ConflictGraph":
        adj = np.asarray(adjacency, dtype=bool)
        if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        if not np.array_equal(adj, adj.T):
            raise ValueError("adjacency must be symmetric")
        if adj.diagonal().any():
            raise ValueError("self-loops are not allowed")
        g = cls(adj.shape[0])
        g._adj = adj.copy()
        return g

    def _add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loop at vertex {u}")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n}")
        self._adj[u, v] = True
        self._adj[v, u] = True

    @property
    def n(self) -> int:
        return self._adj.shape[0]

    @property
    def m(self) -> int:
        """Number of edges."""
        return int(self._adj.sum()) // 2

    @property
    def adjacency(self) -> np.ndarray:
        """The boolean adjacency matrix (do not mutate)."""
        return self._adj

    def has_edge(self, u: int, v: int) -> bool:
        return bool(self._adj[u, v])

    def neighbors(self, v: int) -> np.ndarray:
        return np.flatnonzero(self._adj[v])

    def degree(self, v: int) -> int:
        return int(self._adj[v].sum())

    def max_degree(self) -> int:
        return int(self._adj.sum(axis=1).max(initial=0))

    def average_degree(self) -> float:
        return float(self._adj.sum()) / self.n if self.n else 0.0

    def edges(self) -> Iterator[tuple[int, int]]:
        us, vs = np.nonzero(np.triu(self._adj))
        yield from zip(us.tolist(), vs.tolist())

    def is_independent(self, vertices: Iterable[int]) -> bool:
        """True iff no two vertices of the set are adjacent."""
        idx = np.fromiter(vertices, dtype=np.intp)
        if idx.size <= 1:
            return True
        if len(set(idx.tolist())) != idx.size:
            raise ValueError("vertex set contains duplicates")
        return not self._adj[np.ix_(idx, idx)].any()

    def backward_neighbors(self, v: int, ordering: VertexOrdering) -> np.ndarray:
        """``Γ_π(v)``: neighbors of ``v`` that precede it in the ordering."""
        return np.flatnonzero(self._adj[v] & ordering.earlier_mask(v))

    def subgraph(self, vertices: Sequence[int]) -> tuple["ConflictGraph", np.ndarray]:
        """Induced subgraph; returns (graph, original-vertex array) where the
        new vertex ``i`` corresponds to ``original[i]``."""
        idx = np.asarray(vertices, dtype=np.intp)
        sub = ConflictGraph(idx.size)
        sub._adj = self._adj[np.ix_(idx, idx)].copy()
        return sub, idx

    def complement(self) -> "ConflictGraph":
        comp = ~self._adj
        np.fill_diagonal(comp, False)
        return ConflictGraph.from_adjacency(comp)

    def to_networkx(self):
        """Export to :mod:`networkx` (lazy import; used in tests/examples)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edges())
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConflictGraph(n={self.n}, m={self.m})"
