"""Unweighted conflict graphs and vertex orderings.

The conflict graph (Problem 1 of the paper) has one vertex per bidder and an
edge between two bidders that may never share a channel.  A *vertex ordering*
π is the certificate behind the inductive independence number (Definition 1):
for every vertex ``v`` the paper's algorithms only inspect the *backward
neighborhood* ``Γ_π(v)`` — the neighbors of ``v`` placed before it by π.

Graphs carry one of two interchangeable backends:

* a dense boolean adjacency matrix — the default for instances built edge by
  edge or from a matrix, where dense NumPy kernels beat sparse bookkeeping
  on the few-hundred-vertex instances of the paper's experiments;
* a CSR matrix (``scipy.sparse``) — produced by the spatial-index builders
  in :mod:`repro.geometry.spatial` for metro-scale instances, where the
  dense n×n matrix would not fit (n ≈ 10⁴ ⇒ 10⁸ entries).

Every query method works on either backend.  ``adjacency`` densifies a CSR
graph lazily (and keeps the result), so legacy dense consumers keep working;
large-n code paths should prefer ``csr`` / ``neighbors`` /
``backward_neighbors``, which never materialize the dense matrix.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["ConflictGraph", "VertexOrdering"]


class VertexOrdering:
    """A total order π on vertices ``0..n-1``.

    ``perm[i]`` is the vertex occupying position ``i`` (position 0 is the
    π-smallest vertex); ``pos[v]`` is the position of vertex ``v``.
    """

    def __init__(self, perm: Sequence[int]) -> None:
        perm_arr = np.asarray(perm, dtype=np.intp)
        n = perm_arr.shape[0]
        if sorted(perm_arr.tolist()) != list(range(n)):
            raise ValueError("perm must be a permutation of 0..n-1")
        self.perm = perm_arr
        self.pos = np.empty(n, dtype=np.intp)
        self.pos[perm_arr] = np.arange(n, dtype=np.intp)

    @classmethod
    def identity(cls, n: int) -> "VertexOrdering":
        return cls(np.arange(n, dtype=np.intp))

    @classmethod
    def by_key(cls, keys: Sequence[float], descending: bool = False) -> "VertexOrdering":
        """Order vertices by ``keys`` (stable); ``descending=True`` puts the
        largest key first (used for radius orderings, Proposition 9)."""
        keys_arr = np.asarray(keys, dtype=float)
        perm = np.argsort(-keys_arr if descending else keys_arr, kind="stable")
        return cls(perm)

    @property
    def n(self) -> int:
        return int(self.perm.shape[0])

    def position(self, v: int) -> int:
        return int(self.pos[v])

    def vertices(self) -> np.ndarray:
        """Vertices from π-smallest to π-largest (a copy)."""
        return self.perm.copy()

    def precedes(self, u: int, v: int) -> bool:
        """True iff π(u) < π(v)."""
        return bool(self.pos[u] < self.pos[v])

    def earlier_mask(self, v: int) -> np.ndarray:
        """Boolean mask of vertices strictly before ``v`` in π."""
        return self.pos < self.pos[v]

    def reversed(self) -> "VertexOrdering":
        return VertexOrdering(self.perm[::-1].copy())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VertexOrdering) and np.array_equal(self.perm, other.perm)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VertexOrdering({self.perm.tolist()})"


class ConflictGraph:
    """Undirected, unweighted conflict graph on vertices ``0..n-1``."""

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._n = n
        self._adj: np.ndarray | None = np.zeros((n, n), dtype=bool)
        self._csr: sp.csr_matrix | None = None
        for u, v in edges:
            self._add_edge(u, v)

    @classmethod
    def from_adjacency(cls, adjacency: np.ndarray) -> "ConflictGraph":
        adj = np.asarray(adjacency, dtype=bool)
        if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        if not np.array_equal(adj, adj.T):
            raise ValueError("adjacency must be symmetric")
        if adj.diagonal().any():
            raise ValueError("self-loops are not allowed")
        g = cls(adj.shape[0])
        g._adj = adj.copy()
        return g

    @classmethod
    def from_csr(cls, csr: sp.spmatrix) -> "ConflictGraph":
        """Build from a symmetric boolean CSR matrix *without densifying*.

        The dense matrix is only materialized if some consumer later reads
        ``adjacency``; all query methods work directly on the CSR arrays.
        """
        m = sp.csr_matrix(csr, dtype=bool)
        if m.shape[0] != m.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        m.sum_duplicates()
        m.sort_indices()
        m.eliminate_zeros()
        if m.diagonal().any():
            raise ValueError("self-loops are not allowed")
        if (m != m.T).nnz != 0:
            raise ValueError("adjacency must be symmetric")
        g = cls(0)
        g._n = m.shape[0]
        g._adj = None
        g._csr = m
        return g

    @classmethod
    def from_edge_arrays(cls, n: int, us: np.ndarray, vs: np.ndarray) -> "ConflictGraph":
        """Build from arrays of edge endpoints (each edge listed once, u ≠ v),
        symmetrizing into CSR; the spatial-index builders' entry point."""
        us = np.asarray(us, dtype=np.intp)
        vs = np.asarray(vs, dtype=np.intp)
        if us.shape != vs.shape or us.ndim != 1:
            raise ValueError("edge endpoint arrays must be equal-length 1-D")
        if us.size and (us == vs).any():
            raise ValueError("self-loops are not allowed")
        rows = np.concatenate([us, vs])
        cols = np.concatenate([vs, us])
        data = np.ones(rows.size, dtype=bool)
        coo = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
        return cls.from_csr(coo.tocsr())

    def _add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loop at vertex {u}")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n}")
        adj = self.adjacency  # edge-by-edge construction is dense-only
        adj[u, v] = True
        adj[v, u] = True

    @property
    def n(self) -> int:
        return self._n

    @property
    def is_sparse(self) -> bool:
        """True when the graph is CSR-backed and never been densified."""
        return self._adj is None

    @property
    def m(self) -> int:
        """Number of edges."""
        if self._adj is None:
            return int(self._csr.nnz) // 2
        return int(self._adj.sum()) // 2

    @property
    def adjacency(self) -> np.ndarray:
        """The boolean adjacency matrix (do not mutate).

        CSR-backed graphs densify on first access and keep the result —
        fine for small n, avoid on metro-scale graphs (use ``csr``).
        """
        if self._adj is None:
            self._adj = self._csr.toarray()
        return self._adj

    @property
    def csr(self) -> sp.csr_matrix:
        """Canonical boolean CSR adjacency (built from dense on demand)."""
        if self._csr is None:
            self._csr = sp.csr_matrix(self._adj)
            self._csr.sort_indices()
        return self._csr

    def has_edge(self, u: int, v: int) -> bool:
        if self._adj is None:
            return bool(self._csr[u, v])
        return bool(self._adj[u, v])

    def neighbors(self, v: int) -> np.ndarray:
        if self._adj is None:
            c = self._csr
            return c.indices[c.indptr[v] : c.indptr[v + 1]].astype(np.intp)
        return np.flatnonzero(self._adj[v])

    def degrees(self) -> np.ndarray:
        """Vector of vertex degrees."""
        if self._adj is None:
            return np.diff(self._csr.indptr).astype(np.intp)
        return self._adj.sum(axis=1)

    def degree(self, v: int) -> int:
        if self._adj is None:
            return int(self._csr.indptr[v + 1] - self._csr.indptr[v])
        return int(self._adj[v].sum())

    def max_degree(self) -> int:
        return int(self.degrees().max(initial=0))

    def average_degree(self) -> float:
        return float(self.degrees().sum()) / self.n if self.n else 0.0

    def edges(self) -> Iterator[tuple[int, int]]:
        if self._adj is None:
            coo = sp.triu(self._csr, k=1).tocoo()
            order = np.lexsort((coo.col, coo.row))
            yield from zip(coo.row[order].tolist(), coo.col[order].tolist())
            return
        us, vs = np.nonzero(np.triu(self._adj))
        yield from zip(us.tolist(), vs.tolist())

    def is_independent(self, vertices: Iterable[int]) -> bool:
        """True iff no two vertices of the set are adjacent."""
        idx = np.fromiter(vertices, dtype=np.intp)
        if idx.size <= 1:
            return True
        if len(set(idx.tolist())) != idx.size:
            raise ValueError("vertex set contains duplicates")
        if self._adj is None:
            return self._csr[idx][:, idx].nnz == 0
        return not self._adj[np.ix_(idx, idx)].any()

    def backward_neighbors(self, v: int, ordering: VertexOrdering) -> np.ndarray:
        """``Γ_π(v)``: neighbors of ``v`` that precede it in the ordering."""
        if self._adj is None:
            nbrs = self.neighbors(v)
            return nbrs[ordering.pos[nbrs] < ordering.pos[v]]
        return np.flatnonzero(self._adj[v] & ordering.earlier_mask(v))

    def subgraph(self, vertices: Sequence[int]) -> tuple["ConflictGraph", np.ndarray]:
        """Induced subgraph; returns (graph, original-vertex array) where the
        new vertex ``i`` corresponds to ``original[i]``."""
        idx = np.asarray(vertices, dtype=np.intp)
        if self._adj is None:
            return ConflictGraph.from_csr(self._csr[idx][:, idx]), idx
        sub = ConflictGraph(idx.size)
        sub._adj = self._adj[np.ix_(idx, idx)].copy()
        return sub, idx

    def complement(self) -> "ConflictGraph":
        comp = ~self.adjacency
        np.fill_diagonal(comp, False)
        return ConflictGraph.from_adjacency(comp)

    def to_networkx(self):
        """Export to :mod:`networkx` (lazy import; used in tests/examples)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edges())
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConflictGraph(n={self.n}, m={self.m})"
