"""The inductive independence number ρ (Definitions 1 and 2).

For an *unweighted* graph, ρ is the smallest number such that some ordering π
has, for every vertex ``v``, no independent set larger than ρ inside the
backward neighborhood ``Γ_π(v)``.  This is a min-max elimination parameter
exactly analogous to degeneracy, with "degree" replaced by "independence
number of the neighborhood":

    ρ(G) = max over induced subgraphs H of  min_{v ∈ H} α_H(N_H(v)).

The greedy elimination that repeatedly removes a vertex minimizing
``α_H(N_H(v))`` attains the optimum (same exchange argument as for
degeneracy, valid because ``α_H(N_H(v))`` is monotone non-increasing as H
shrinks), and the reverse removal order is an optimal ordering π.

For *weighted* graphs (Definition 2), ρ(π) is the maximum over vertices of
the maximum total symmetric weight ``Σ w̄(u, v)`` over weighted-independent
sets inside the backward neighborhood.  Computing it exactly requires an
MWIS per vertex; :func:`weighted_rho_of_ordering` returns certified lower and
upper bounds via a heavy/light weight split (exact branch-and-bound on heavy
candidates plus the summed mass of light candidates).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.independence import (
    greedy_weighted_independent_set,
    max_profit_weighted_independent_set,
    max_weight_independent_set,
)
from repro.graphs.weighted_graph import WeightedConflictGraph

__all__ = [
    "rho_of_ordering",
    "inductive_independence_number",
    "WeightedRhoBounds",
    "weighted_rho_of_ordering",
]


def _alpha_of_neighborhood(adj: np.ndarray, members: np.ndarray) -> int:
    """α of the subgraph induced by ``members`` (exact, small sets)."""
    if members.size == 0:
        return 0
    sub = ConflictGraph.from_adjacency(adj[np.ix_(members, members)])
    _, value = max_weight_independent_set(sub)
    return int(round(value))


def rho_of_ordering(graph: ConflictGraph, ordering: VertexOrdering) -> int:
    """ρ(π): the largest independent set found in any backward neighborhood.

    This evaluates a *given* ordering (e.g. the radius ordering certified by
    Proposition 9); the result upper-bounds the true ρ of the graph.
    """
    adj = graph.adjacency
    rho = 0
    for v in range(graph.n):
        back = graph.backward_neighbors(v, ordering)
        if back.size > rho:  # α ≤ |Γ_π(v)|, so smaller sets cannot improve
            rho = max(rho, _alpha_of_neighborhood(adj, back))
    return rho


def inductive_independence_number(
    graph: ConflictGraph,
) -> tuple[int, VertexOrdering]:
    """Exact ρ(G) and an optimal ordering, via min-max greedy elimination.

    Runs in ``n`` rounds; each removal eagerly re-evaluates
    ``α_H(N_H(u))`` for the removed vertex's alive neighbors (whose
    neighborhoods are the only ones that changed), so the heap minimum is
    always a vertex of *current* minimum α.
    """
    n = graph.n
    adj = graph.adjacency.copy()
    alive = np.ones(n, dtype=bool)

    def alpha(v: int) -> int:
        members = np.flatnonzero(adj[v] & alive)
        return _alpha_of_neighborhood(adj, members)

    # α values only *decrease* as H shrinks, so stale heap entries are
    # always over-estimates; every alive vertex keeps exactly one current
    # entry, identified by a version stamp (stale pops are skipped).
    version = np.zeros(n, dtype=np.int64)
    heap: list[tuple[int, int, int]] = [(alpha(v), v, 0) for v in range(n)]
    heapq.heapify(heap)
    removal: list[int] = []
    rho = 0

    while len(removal) < n:
        value, v, stamp = heapq.heappop(heap)
        if not alive[v] or stamp != version[v]:
            continue
        rho = max(rho, value)
        alive[v] = False
        removal.append(v)
        for u in np.flatnonzero(adj[v] & alive).tolist():
            version[u] += 1
            heapq.heappush(heap, (alpha(u), u, int(version[u])))

    # Reverse removal order: the first vertex removed is π-largest.
    perm = np.array(removal[::-1], dtype=np.intp)
    return rho, VertexOrdering(perm)


@dataclass(frozen=True)
class WeightedRhoBounds:
    """Certified bounds on ρ(π) for a weighted graph.

    ``lower`` comes from greedy packing (a genuine independent set), and
    ``upper`` from exact search over heavy candidates plus the total mass of
    light candidates, so ``lower ≤ ρ(π) ≤ upper`` always holds.
    """

    lower: float
    upper: float
    argmax_vertex: int

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-9:
            raise ValueError("lower bound exceeds upper bound")


def weighted_rho_of_ordering(
    graph: WeightedConflictGraph,
    ordering: VertexOrdering,
    heavy_threshold: float = 0.02,
    exact: bool = False,
    node_limit: int = 500_000,
) -> WeightedRhoBounds:
    """Bound ρ(π) of Definition 2 for an edge-weighted graph.

    For each vertex ``v`` the profit of candidate ``u`` is ``w̄(u, v)`` and
    candidates are all vertices before ``v`` in π.  Candidates of profit
    below ``heavy_threshold`` contribute their *summed* profit to the upper
    bound (an independent set can at worst contain all of them); heavy
    candidates are searched exactly.  With ``exact=True`` every candidate is
    treated as heavy.
    """
    lower = 0.0
    upper = 0.0
    arg = -1
    for v in range(graph.n):
        profits = graph.backward_wbar(v, ordering)
        cand = np.flatnonzero(profits > 0)
        if cand.size == 0:
            continue
        threshold = 0.0 if exact else heavy_threshold
        heavy = cand[profits[cand] >= threshold] if threshold > 0 else cand
        light_mass = float(profits[cand].sum() - profits[heavy].sum())
        _, glb = greedy_weighted_independent_set(graph, profits, candidates=cand)
        _, heavy_opt = max_profit_weighted_independent_set(
            graph, profits, candidates=heavy, node_limit=node_limit
        )
        v_upper = heavy_opt + light_mass
        if v_upper > upper:
            upper = v_upper
            arg = v
        lower = max(lower, glb)
    return WeightedRhoBounds(lower=lower, upper=upper, argmax_vertex=arg)
