"""Independent-set computations used throughout the library.

Provides exact maximum-weight independent set (MWIS) solvers for both the
unweighted-graph and weighted-graph notions of independence, plus greedy
heuristics.  Exact solvers are branch-and-bound with a remaining-profit
bound; they are meant for the small vertex sets the library feeds them
(backward neighborhoods, small experiment instances), not for large graphs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graphs.conflict_graph import ConflictGraph
from repro.graphs.weighted_graph import WeightedConflictGraph

__all__ = [
    "max_weight_independent_set",
    "max_independent_set_size",
    "greedy_independent_set",
    "max_profit_weighted_independent_set",
    "greedy_weighted_independent_set",
]


def max_weight_independent_set(
    graph: ConflictGraph,
    profits: Sequence[float] | None = None,
) -> tuple[list[int], float]:
    """Exact MWIS in an unweighted conflict graph.

    Branch and bound over vertices sorted by decreasing profit.  ``profits``
    defaults to all-ones (maximum independent set).  Returns
    ``(sorted vertex list, total profit)``.  Vertices with non-positive
    profit are never selected (they cannot help a maximization).
    """
    n = graph.n
    p = np.ones(n) if profits is None else np.asarray(profits, dtype=float)
    if p.shape != (n,):
        raise ValueError("profits must have one entry per vertex")
    candidates = np.flatnonzero(p > 0)
    order = candidates[np.argsort(-p[candidates], kind="stable")]
    adj = graph.adjacency
    suffix = np.concatenate([np.cumsum(p[order][::-1])[::-1], [0.0]])

    best_set: list[int] = []
    best_val = 0.0

    def recurse(i: int, chosen: list[int], value: float, blocked: np.ndarray) -> None:
        nonlocal best_set, best_val
        if value > best_val:
            best_val = value
            best_set = chosen.copy()
        if i >= order.size or value + suffix[i] <= best_val:
            return
        v = int(order[i])
        if not blocked[v]:
            chosen.append(v)
            recurse(i + 1, chosen, value + p[v], blocked | adj[v])
            chosen.pop()
        recurse(i + 1, chosen, value, blocked)

    recurse(0, [], 0.0, np.zeros(n, dtype=bool))
    return sorted(best_set), float(best_val)


def max_independent_set_size(graph: ConflictGraph) -> int:
    """α(G): size of a maximum independent set (exact, small graphs only)."""
    _, value = max_weight_independent_set(graph)
    return int(round(value))


def greedy_independent_set(
    graph: ConflictGraph,
    profits: Sequence[float] | None = None,
    by_ratio: bool = False,
) -> tuple[list[int], float]:
    """Greedy MWIS: scan vertices by decreasing profit (or profit/(deg+1)
    ratio) and keep those not adjacent to anything kept so far."""
    n = graph.n
    p = np.ones(n) if profits is None else np.asarray(profits, dtype=float)
    keys = p / (graph.adjacency.sum(axis=1) + 1.0) if by_ratio else p
    order = np.argsort(-keys, kind="stable")
    adj = graph.adjacency
    blocked = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    total = 0.0
    for v in order:
        v = int(v)
        if p[v] <= 0 or blocked[v]:
            continue
        chosen.append(v)
        total += p[v]
        blocked |= adj[v]
    return sorted(chosen), float(total)


def max_profit_weighted_independent_set(
    graph: WeightedConflictGraph,
    profits: Sequence[float],
    candidates: Sequence[int] | None = None,
    node_limit: int = 2_000_000,
) -> tuple[list[int], float]:
    """Exact max-profit *weighted-independent* set (Section 3 independence).

    Finds ``M ⊆ candidates`` maximizing ``Σ profits[v]`` subject to every
    member receiving incoming weight < 1 from the others.  Because weights
    are non-negative, partial incoming sums only grow, so any prefix whose
    members already violate the bound can be pruned.

    ``node_limit`` caps the branch-and-bound tree; exceeding it raises
    ``RuntimeError`` rather than silently returning a non-optimal answer.
    """
    p_all = np.asarray(profits, dtype=float)
    if p_all.shape != (graph.n,):
        raise ValueError("profits must have one entry per vertex")
    cand = (
        np.flatnonzero(p_all > 0)
        if candidates is None
        else np.asarray(candidates, dtype=np.intp)
    )
    cand = cand[p_all[cand] > 0]
    order = cand[np.argsort(-p_all[cand], kind="stable")]
    w = graph.weights
    suffix = np.concatenate([np.cumsum(p_all[order][::-1])[::-1], [0.0]])

    best_set: list[int] = []
    best_val = 0.0
    nodes = 0

    def recurse(i: int, chosen: list[int], value: float, incoming: np.ndarray) -> None:
        nonlocal best_set, best_val, nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"branch-and-bound exceeded node limit {node_limit}"
            )
        if value > best_val:
            best_val = value
            best_set = chosen.copy()
        if i >= order.size or value + suffix[i] <= best_val:
            return
        v = int(order[i])
        # Include v if it keeps every member (and v itself) under the bound.
        if incoming[v] < 1.0:
            # incoming[] tracks weight from chosen members; adding v sends
            # w[v, u] to each member u and receives incoming[v] (checked).
            if all(incoming[u] + w[v, u] < 1.0 for u in chosen):
                new_incoming = incoming + w[v]
                chosen.append(v)
                recurse(i + 1, chosen, value + p_all[v], new_incoming)
                chosen.pop()
        recurse(i + 1, chosen, value, incoming)

    recurse(0, [], 0.0, np.zeros(graph.n))
    return sorted(best_set), float(best_val)


def greedy_weighted_independent_set(
    graph: WeightedConflictGraph,
    profits: Sequence[float],
    candidates: Sequence[int] | None = None,
) -> tuple[list[int], float]:
    """Greedy packing by decreasing profit under weighted independence."""
    p_all = np.asarray(profits, dtype=float)
    cand = (
        np.flatnonzero(p_all > 0)
        if candidates is None
        else np.asarray(candidates, dtype=np.intp)
    )
    cand = cand[p_all[cand] > 0]
    order = cand[np.argsort(-p_all[cand], kind="stable")]
    w = graph.weights
    chosen: list[int] = []
    incoming = np.zeros(graph.n)
    total = 0.0
    for v in order:
        v = int(v)
        if incoming[v] >= 1.0:
            continue
        if any(incoming[u] + w[v, u] >= 1.0 for u in chosen):
            continue
        chosen.append(v)
        total += p_all[v]
        incoming = incoming + w[v]
    return sorted(chosen), float(total)
