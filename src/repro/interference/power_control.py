"""Physical model with power control (Theorem 17 + Kesselheim SODA'11).

When transmission powers are part of the optimization, the paper builds a
weighted conflict graph whose independence guarantees the *existence* of
feasible powers, then recovers the powers with the power-control procedure
of Kesselheim [24]:

* **Theorem 17 edge weights** — for links ordered by decreasing length
  (π-smallest = longest), the earlier link ``ℓ = (s, r)`` sends weight

      w(ℓ, ℓ') = (1/τ)[ min{1, (d(ℓ)/d(s, r'))^α} + min{1, (d(ℓ)/d(s', r))^α} ],
      τ = 1 / (2 · 3^α · (4β + 2)),

  to each later (shorter) link ``ℓ' = (s', r')``; later→earlier weights are 0.

* **Recursive power assignment** — members processed from longest to
  shortest receive ``p_i = 2β · d_i^α · (ν + Σ_{j earlier} p_j/d(s_j, r_i)^α)``:
  every link's signal is 2β times the noise plus interference *from longer
  links*, and the τ-condition bounds the interference from shorter links by
  the other half of the SINR budget.

* **Exact feasibility oracle** — SINR constraints with free powers are a
  linear system ``p ≥ B p + c``; a feasible positive ``p`` exists iff the
  spectral radius of ``B`` is below 1 (Perron–Frobenius), in which case
  ``p = (I − B)^{-1} c`` is the componentwise-minimal solution.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.links import LinkSet, length_ordering
from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.inductive import weighted_rho_of_ordering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.interference.base import WeightedConflictStructure

__all__ = [
    "tau_constant",
    "theorem17_weight_matrix",
    "power_control_structure",
    "kesselheim_power_assignment",
    "min_power_assignment",
]


def tau_constant(alpha: float, beta: float) -> float:
    """τ = 1 / (2 · 3^α · (4β + 2)) from Theorem 17."""
    return 1.0 / (2.0 * 3.0**alpha * (4.0 * beta + 2.0))


def theorem17_weight_matrix(
    links: LinkSet,
    alpha: float,
    beta: float,
    ordering: VertexOrdering | None = None,
    clip: bool = True,
) -> tuple[np.ndarray, VertexOrdering]:
    """Theorem 17's directed weight matrix and the length ordering used.

    With ``clip=True`` (default) every directed weight is capped at 1.
    Clipping preserves the independent-set family exactly — a single
    incoming weight ≥ 1 already violates ``Σ w < 1`` either way — while
    dramatically reducing ρ(π), because the raw weights carry the huge
    1/τ = 2·3^α(4β+2) factor of the worst-case analysis.  ``clip=False``
    reproduces the paper's literal weights (ablation A4).
    """
    pi = ordering if ordering is not None else length_ordering(links, descending=True)
    sr = links.sender_receiver_matrix()  # sr[a, b] = d(s_a, r_b)
    lengths = links.lengths
    tau = tau_constant(alpha, beta)
    # For earlier link u and later link v:
    #   term1[u, v] = min(1, (d_u / d(s_u, r_v))^α)
    #   term2[u, v] = min(1, (d_u / d(s_v, r_u))^α)
    ratio1 = (lengths[:, None] / sr) ** alpha
    ratio2 = (lengths[:, None] / sr.T) ** alpha
    w = (np.minimum(ratio1, 1.0) + np.minimum(ratio2, 1.0)) / tau
    # Keep only earlier→later entries (π(u) < π(v)).
    pos = pi.pos
    earlier = pos[:, None] < pos[None, :]
    w = np.where(earlier, w, 0.0)
    np.fill_diagonal(w, 0.0)
    if clip:
        np.minimum(w, 1.0, out=w)
    return w, pi


def power_control_structure(
    links: LinkSet,
    alpha: float = 3.0,
    beta: float = 1.5,
    noise: float = 0.0,
    rho: float | None = None,
    clip: bool = True,
) -> WeightedConflictStructure:
    """Weighted conflict structure for the power-control variant.

    As for the fixed-power model, ``rho`` defaults to the measured certified
    upper bound on ρ(π) (Theorem 17 promises O(1) in fading metrics and
    O(log n) in general metrics, without explicit constants).
    """
    w, pi = theorem17_weight_matrix(links, alpha, beta, clip=clip)
    graph = WeightedConflictGraph(w)
    if rho is None:
        bounds = weighted_rho_of_ordering(graph, pi)
        rho_val = max(bounds.upper, 1.0)
        source = "measured upper bound on ρ(π) (Theorem 17)"
    else:
        rho_val = rho
        source = "caller-supplied"
    return WeightedConflictStructure(
        graph=graph,
        ordering=pi,
        rho=rho_val,
        rho_source=source,
        metadata={
            "model": "power-control",
            "alpha": alpha,
            "beta": beta,
            "noise": noise,
            "links": links,
        },
    )


def kesselheim_power_assignment(
    links: LinkSet,
    members,
    alpha: float,
    beta: float,
    noise: float = 0.0,
) -> np.ndarray:
    """Recursive power assignment of [24] for the member links.

    Returns a full-length power vector (non-members get power 0).  With zero
    noise the longest member anchors the recursion at linear power
    ``d^α`` — the scheme is scale-invariant in that case.
    """
    idx = np.asarray(list(members), dtype=np.intp)
    powers = np.zeros(links.n)
    if idx.size == 0:
        return powers
    sr = links.sender_receiver_matrix()
    lengths = links.lengths
    order = idx[np.argsort(-lengths[idx], kind="stable")]
    for pos, i in enumerate(order.tolist()):
        earlier = order[:pos]
        incoming = noise + float(
            (powers[earlier] / sr[earlier, i] ** alpha).sum()
        )
        if incoming > 0:
            powers[i] = 2.0 * beta * lengths[i] ** alpha * incoming
        else:
            powers[i] = lengths[i] ** alpha
    return powers


def min_power_assignment(
    links: LinkSet,
    members,
    alpha: float,
    beta: float,
    noise: float = 0.0,
    margin: float = 0.0,
) -> tuple[bool, np.ndarray]:
    """Exact power-control oracle: is the member set SINR-feasible for *some*
    powers, and if so return the (componentwise minimal) powers.

    The SINR system is ``p_i ≥ (B p)_i + c_i`` with
    ``B[i, j] = β (d_i / d(s_j, r_i))^α`` and ``c_i = β ν d_i^α``; a positive
    solution exists iff the spectral radius of ``B`` is < 1.  With ν = 0 the
    right-hand side is replaced by 1 to break scale invariance.  ``margin``
    demands a strictly smaller spectral radius (used to leave numerical
    headroom before declaring feasibility).
    """
    idx = np.asarray(list(members), dtype=np.intp)
    powers = np.zeros(links.n)
    if idx.size == 0:
        return True, powers
    if idx.size == 1:
        powers[idx[0]] = max(
            beta * noise * links.lengths[idx[0]] ** alpha, 1.0
        )
        return True, powers
    sr = links.sender_receiver_matrix()
    lengths = links.lengths
    sub = sr[np.ix_(idx, idx)]  # sub[a, b] = d(s_a, r_b) within members
    b_matrix = beta * (lengths[idx][None, :] / sub) ** alpha  # [j, i] → transpose
    b_matrix = b_matrix.T.copy()  # B[i, j]: interference of j at i, normalized
    np.fill_diagonal(b_matrix, 0.0)
    radius = float(np.max(np.abs(np.linalg.eigvals(b_matrix))))
    if radius >= 1.0 - margin:
        return False, powers
    c = beta * noise * lengths[idx] ** alpha
    if noise == 0:
        c = np.ones(idx.size)
    p = np.linalg.solve(np.eye(idx.size) - b_matrix, c)
    if (p <= 0).any():  # pragma: no cover - cannot happen when radius < 1
        return False, powers
    powers[idx] = p
    return True, powers
