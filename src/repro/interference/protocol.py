"""The protocol model and the IEEE 802.11 bidirectional variant (Section 4.2).

Protocol model (Gupta–Kumar):  a link ``(s, r)`` may share a channel with
other links only if every other sender ``s'`` on the channel satisfies
``d(s', r) ≥ (1 + Δ) · d(s, r)``.  The (symmetric) conflict graph joins two
links when either direction of this guard-zone condition fails.

Proposition 13 (via Wan) certifies

    ρ ≤ ⌈π / arcsin(Δ / (2(Δ + 1)))⌉ − 1

for the *decreasing-length* ordering: the backward neighbors of a link are
the longer links, and at most ρ mutually-compatible longer links can violate
its guard zone (an angular packing argument).

The IEEE 802.11 model (Alicherry et al.) is bidirectional: both endpoints of
a link transmit (DATA/ACK), so two links conflict when *any* endpoint pair
comes within ``(1 + Δ) · max(len_i, len_j)``.  Wan shows ρ ≤ 23 for Δ ≥ 1
under the same decreasing-length ordering.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.links import LinkSet, length_ordering
from repro.geometry.spatial import (
    candidate_pairs,
    cross_candidate_pairs,
    pair_distances,
    resolve_method,
)
from repro.graphs.conflict_graph import ConflictGraph
from repro.interference.base import ConflictStructure

__all__ = [
    "protocol_conflict_graph",
    "protocol_rho_bound",
    "protocol_model",
    "ieee80211_conflict_graph",
    "ieee80211_model",
    "IEEE80211_RHO_BOUND",
]

IEEE80211_RHO_BOUND = 23


def protocol_rho_bound(delta: float) -> int:
    """Proposition 13's bound ⌈π / arcsin(Δ/(2(Δ+1)))⌉ − 1."""
    if delta <= 0:
        raise ValueError("the protocol model requires Δ > 0")
    return math.ceil(math.pi / math.asin(delta / (2.0 * (delta + 1.0)))) - 1


def protocol_conflict_graph(
    links: LinkSet, delta: float, method: str = "auto"
) -> ConflictGraph:
    """Conflict graph of the protocol model with guard parameter Δ.

    The spatial builder pairs every receiver with the senders inside its
    worst-case guard radius ``(1 + Δ) · max(len)`` via KD-trees, then
    applies the exact per-link guard-zone test — identical edges to the
    dense all-pairs path, near-linear work on constant-density deployments.
    """
    if delta <= 0:
        raise ValueError("the protocol model requires Δ > 0")
    xy = links.endpoint_coords()
    if resolve_method(method, links.n, supported=xy is not None) == "spatial":
        s_xy, r_xy = xy
        lengths = links.lengths
        guard = (1.0 + delta) * lengths
        # candidates (i, j): sender of link j inside the worst-case guard
        # radius of link i's receiver
        i_idx, j_idx = cross_candidate_pairs(r_xy, s_xy, float(guard.max(initial=0.0)))
        off_diag = i_idx != j_idx
        i_idx, j_idx = i_idx[off_diag], j_idx[off_diag]
        # exact test, same operand order as the dense sr matrix entries
        keep = pair_distances(s_xy[j_idx], r_xy[i_idx]) < guard[i_idx]
        us, vs = i_idx[keep], j_idx[keep]
        return ConflictGraph.from_edge_arrays(links.n, us, vs)
    sr = links.sender_receiver_matrix()  # sr[i, j] = d(s_i, r_j)
    lengths = links.lengths
    # Link j's sender violates link i's guard zone iff
    # d(s_j, r_i) < (1 + Δ) d(s_i, r_i).
    violates = sr.T < (1.0 + delta) * lengths[:, None]  # [i, j]
    np.fill_diagonal(violates, False)
    adj = violates | violates.T
    return ConflictGraph.from_adjacency(adj)


def protocol_model(
    links: LinkSet, delta: float, method: str = "auto"
) -> ConflictStructure:
    """Full protocol-model structure: graph + length ordering + certified ρ."""
    return ConflictStructure(
        graph=protocol_conflict_graph(links, delta, method=method),
        ordering=length_ordering(links, descending=True),
        rho=protocol_rho_bound(delta),
        rho_source=f"Proposition 13 with Δ={delta}",
        metadata={"model": "protocol", "delta": delta},
    )


def ieee80211_conflict_graph(
    links: LinkSet, delta: float, method: str = "auto"
) -> ConflictGraph:
    """Bidirectional (802.11) conflicts: any endpoint pair within
    ``(1 + Δ) · max(len_i, len_j)`` creates an edge."""
    if delta <= 0:
        raise ValueError("the 802.11 model requires Δ > 0")
    xy = links.endpoint_coords()
    if resolve_method(method, links.n, supported=xy is not None) == "spatial":
        return _ieee80211_spatial(links, delta, *xy)
    ss = links.sender_sender_matrix()
    rr = links.receiver_receiver_matrix()
    sr = links.sender_receiver_matrix()
    closest = np.minimum(np.minimum(ss, rr), np.minimum(sr, sr.T))
    lengths = links.lengths
    limit = (1.0 + delta) * np.maximum(lengths[:, None], lengths[None, :])
    adj = closest < limit
    np.fill_diagonal(adj, False)
    return ConflictGraph.from_adjacency(adj)


def _ieee80211_spatial(
    links: LinkSet, delta: float, s_xy: np.ndarray, r_xy: np.ndarray
) -> ConflictGraph:
    """KD-tree 802.11 builder: candidate link pairs from endpoint proximity,
    then the exact four-distance test of the dense path."""
    n = links.n
    lengths = links.lengths
    radius = (1.0 + delta) * float(lengths.max(initial=0.0))
    # one tree over all 2n endpoints; endpoint pairs within the worst-case
    # limit induce the candidate link pairs
    endpoints = np.concatenate([s_xy, r_xy])
    a_idx, b_idx = candidate_pairs(endpoints, radius)
    la, lb = a_idx % n, b_idx % n
    off_diag = la != lb
    # dedupe to unordered link pairs (p < q)
    p = np.minimum(la[off_diag], lb[off_diag])
    q = np.maximum(la[off_diag], lb[off_diag])
    packed = np.unique(p * n + q)
    p, q = packed // n, packed % n
    closest = np.minimum(
        np.minimum(
            pair_distances(s_xy[p], s_xy[q]), pair_distances(r_xy[p], r_xy[q])
        ),
        np.minimum(
            pair_distances(s_xy[p], r_xy[q]), pair_distances(s_xy[q], r_xy[p])
        ),
    )
    limit = (1.0 + delta) * np.maximum(lengths[p], lengths[q])
    keep = closest < limit
    return ConflictGraph.from_edge_arrays(n, p[keep], q[keep])


def ieee80211_model(
    links: LinkSet, delta: float, method: str = "auto"
) -> ConflictStructure:
    """802.11 structure with Wan's ρ ≤ 23 certificate."""
    return ConflictStructure(
        graph=ieee80211_conflict_graph(links, delta, method=method),
        ordering=length_ordering(links, descending=True),
        rho=IEEE80211_RHO_BOUND,
        rho_source="Wan [31] for the IEEE 802.11 model",
        metadata={"model": "ieee80211", "delta": delta},
    )
