"""The protocol model and the IEEE 802.11 bidirectional variant (Section 4.2).

Protocol model (Gupta–Kumar):  a link ``(s, r)`` may share a channel with
other links only if every other sender ``s'`` on the channel satisfies
``d(s', r) ≥ (1 + Δ) · d(s, r)``.  The (symmetric) conflict graph joins two
links when either direction of this guard-zone condition fails.

Proposition 13 (via Wan) certifies

    ρ ≤ ⌈π / arcsin(Δ / (2(Δ + 1)))⌉ − 1

for the *decreasing-length* ordering: the backward neighbors of a link are
the longer links, and at most ρ mutually-compatible longer links can violate
its guard zone (an angular packing argument).

The IEEE 802.11 model (Alicherry et al.) is bidirectional: both endpoints of
a link transmit (DATA/ACK), so two links conflict when *any* endpoint pair
comes within ``(1 + Δ) · max(len_i, len_j)``.  Wan shows ρ ≤ 23 for Δ ≥ 1
under the same decreasing-length ordering.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.links import LinkSet, length_ordering
from repro.graphs.conflict_graph import ConflictGraph
from repro.interference.base import ConflictStructure

__all__ = [
    "protocol_conflict_graph",
    "protocol_rho_bound",
    "protocol_model",
    "ieee80211_conflict_graph",
    "ieee80211_model",
    "IEEE80211_RHO_BOUND",
]

IEEE80211_RHO_BOUND = 23


def protocol_rho_bound(delta: float) -> int:
    """Proposition 13's bound ⌈π / arcsin(Δ/(2(Δ+1)))⌉ − 1."""
    if delta <= 0:
        raise ValueError("the protocol model requires Δ > 0")
    return math.ceil(math.pi / math.asin(delta / (2.0 * (delta + 1.0)))) - 1


def protocol_conflict_graph(links: LinkSet, delta: float) -> ConflictGraph:
    """Conflict graph of the protocol model with guard parameter Δ."""
    if delta <= 0:
        raise ValueError("the protocol model requires Δ > 0")
    sr = links.sender_receiver_matrix()  # sr[i, j] = d(s_i, r_j)
    lengths = links.lengths
    # Link j's sender violates link i's guard zone iff
    # d(s_j, r_i) < (1 + Δ) d(s_i, r_i).
    violates = sr.T < (1.0 + delta) * lengths[:, None]  # [i, j]
    np.fill_diagonal(violates, False)
    adj = violates | violates.T
    return ConflictGraph.from_adjacency(adj)


def protocol_model(links: LinkSet, delta: float) -> ConflictStructure:
    """Full protocol-model structure: graph + length ordering + certified ρ."""
    return ConflictStructure(
        graph=protocol_conflict_graph(links, delta),
        ordering=length_ordering(links, descending=True),
        rho=protocol_rho_bound(delta),
        rho_source=f"Proposition 13 with Δ={delta}",
        metadata={"model": "protocol", "delta": delta},
    )


def ieee80211_conflict_graph(links: LinkSet, delta: float) -> ConflictGraph:
    """Bidirectional (802.11) conflicts: any endpoint pair within
    ``(1 + Δ) · max(len_i, len_j)`` creates an edge."""
    if delta <= 0:
        raise ValueError("the 802.11 model requires Δ > 0")
    ss = links.sender_sender_matrix()
    rr = links.receiver_receiver_matrix()
    sr = links.sender_receiver_matrix()
    closest = np.minimum(np.minimum(ss, rr), np.minimum(sr, sr.T))
    lengths = links.lengths
    limit = (1.0 + delta) * np.maximum(lengths[:, None], lengths[None, :])
    adj = closest < limit
    np.fill_diagonal(adj, False)
    return ConflictGraph.from_adjacency(adj)


def ieee80211_model(links: LinkSet, delta: float) -> ConflictStructure:
    """802.11 structure with Wan's ρ ≤ 23 certificate."""
    return ConflictStructure(
        graph=ieee80211_conflict_graph(links, delta),
        ordering=length_ordering(links, descending=True),
        rho=IEEE80211_RHO_BOUND,
        rho_source="Wan [31] for the IEEE 802.11 model",
        metadata={"model": "ieee80211", "delta": delta},
    )
