"""Common interface for interference models.

Every model turns a geometric scenario into either an unweighted or an
edge-weighted conflict graph *plus* a certified vertex ordering π and a ρ
value to plug into the LP.  The dataclasses here are what the core solver
consumes, decoupling it from any particular wireless model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.weighted_graph import WeightedConflictGraph

__all__ = ["ConflictStructure", "WeightedConflictStructure"]


@dataclass
class ConflictStructure:
    """An unweighted conflict graph with its ordering certificate.

    ``rho`` is the value used on the right-hand side of LP constraint (1b);
    models set it to their *proven* bound (e.g. 5 for disk graphs) so the LP
    matches the paper.  ``rho_source`` records where the number came from.
    """

    graph: ConflictGraph
    ordering: VertexOrdering
    rho: float
    rho_source: str = "certified"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.graph.n != self.ordering.n:
            raise ValueError("graph and ordering disagree on vertex count")
        if self.rho < 0:
            raise ValueError("rho must be non-negative")

    @property
    def n(self) -> int:
        return self.graph.n


@dataclass
class WeightedConflictStructure:
    """An edge-weighted conflict graph with its ordering certificate."""

    graph: WeightedConflictGraph
    ordering: VertexOrdering
    rho: float
    rho_source: str = "certified"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.graph.n != self.ordering.n:
            raise ValueError("graph and ordering disagree on vertex count")
        if self.rho < 0:
            raise ValueError("rho must be non-negative")

    @property
    def n(self) -> int:
        return self.graph.n
