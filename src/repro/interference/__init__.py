"""Interference models: every Section 4 model as a conflict structure."""

from repro.interference.base import ConflictStructure, WeightedConflictStructure
from repro.interference.civilized import (
    CivilizedInstance,
    civilized_distance2_model,
    civilized_graph,
    civilized_rho_bound,
    sample_separated_points,
)
from repro.interference.disk import (
    DISK_RHO_BOUND,
    DISTANCE2_DISK_RHO_BOUND,
    disk_structure_from_arrays,
    disk_transmitter_model,
    distance2_coloring_graph,
    distance2_coloring_model,
    graph_square,
)
from repro.interference.distance2 import (
    DISTANCE2_MATCHING_RHO_BOUND,
    distance2_matching_graph,
    distance2_matching_model,
)
from repro.interference.physical import (
    PhysicalModel,
    is_monotone_power,
    linear_power,
    mean_power,
    physical_model_structure,
    sparse_physical_structure,
    uniform_power,
)
from repro.interference.power_control import (
    kesselheim_power_assignment,
    min_power_assignment,
    power_control_structure,
    tau_constant,
    theorem17_weight_matrix,
)
from repro.interference.protocol import (
    IEEE80211_RHO_BOUND,
    ieee80211_conflict_graph,
    ieee80211_model,
    protocol_conflict_graph,
    protocol_model,
    protocol_rho_bound,
)

__all__ = [
    "ConflictStructure",
    "WeightedConflictStructure",
    "protocol_conflict_graph",
    "protocol_rho_bound",
    "protocol_model",
    "ieee80211_conflict_graph",
    "ieee80211_model",
    "IEEE80211_RHO_BOUND",
    "disk_transmitter_model",
    "disk_structure_from_arrays",
    "distance2_coloring_graph",
    "distance2_coloring_model",
    "graph_square",
    "DISK_RHO_BOUND",
    "DISTANCE2_DISK_RHO_BOUND",
    "CivilizedInstance",
    "civilized_distance2_model",
    "civilized_graph",
    "civilized_rho_bound",
    "sample_separated_points",
    "distance2_matching_graph",
    "distance2_matching_model",
    "DISTANCE2_MATCHING_RHO_BOUND",
    "PhysicalModel",
    "uniform_power",
    "linear_power",
    "mean_power",
    "is_monotone_power",
    "physical_model_structure",
    "sparse_physical_structure",
    "tau_constant",
    "theorem17_weight_matrix",
    "power_control_structure",
    "kesselheim_power_assignment",
    "min_power_assignment",
]
