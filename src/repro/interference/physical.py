"""The physical (SINR) interference model (Section 4.3, Proposition 15).

Links transmit at powers ``p``; receiver ``r_i`` decodes successfully when

    p_i / d(s_i, r_i)^α  ≥  β ( Σ_{j ∈ M\\{i}} p_j / d(s_j, r_i)^α + ν ).

For *fixed* powers the paper encodes these constraints as an edge-weighted
conflict graph (Proposition 15): the weight of ``ℓ' → ℓ`` is the clipped,
normalized interference of ``ℓ'`` at ``ℓ``'s receiver,

    w(ℓ', ℓ) = min{ 1,  β'·I(ℓ', ℓ) / (S(ℓ) − β'·ν) },   β' = β/(1+ε),

so that a set is SINR-feasible iff it is independent in the weighted graph
(the (1+ε) factor converts the SINR "≥" into the independence "<"; ε is the
paper's instance-dependent constant).  For power assignments satisfying the
monotonicity conditions (uniform, linear, and the intermediate "mean" or
square-root scheme), the decreasing-length ordering certifies ρ = O(log n)
via Lemma 16.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.links import LinkSet, length_ordering
from repro.graphs.inductive import weighted_rho_of_ordering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.interference.base import WeightedConflictStructure

__all__ = [
    "PhysicalModel",
    "uniform_power",
    "linear_power",
    "mean_power",
    "is_monotone_power",
    "physical_model_structure",
]


def uniform_power(links: LinkSet) -> np.ndarray:
    """All links transmit at power 1."""
    return np.ones(links.n)


def linear_power(links: LinkSet, alpha: float) -> np.ndarray:
    """p(ℓ) = d(ℓ)^α — every receiver sees the same signal strength."""
    return links.lengths**alpha


def mean_power(links: LinkSet, alpha: float) -> np.ndarray:
    """p(ℓ) = d(ℓ)^(α/2) — the square-root scheme between uniform/linear."""
    return links.lengths ** (alpha / 2.0)


def is_monotone_power(links: LinkSet, power: np.ndarray, alpha: float, tol: float = 1e-9) -> bool:
    """Check the paper's monotonicity: longer links get at least as much
    power but at most the same signal strength ``p/d^α``."""
    lengths = links.lengths
    order = np.argsort(lengths, kind="stable")
    p = np.asarray(power, dtype=float)[order]
    d = lengths[order]
    signal = p / d**alpha
    return bool(
        (np.diff(p) >= -tol * np.maximum(p[:-1], 1e-300)).all()
        and (np.diff(signal) <= tol * np.maximum(signal[:-1], 1e-300)).all()
    )


class PhysicalModel:
    """SINR model for a fixed link set and parameters (α, β, ν)."""

    def __init__(
        self,
        links: LinkSet,
        alpha: float = 3.0,
        beta: float = 1.5,
        noise: float = 0.0,
    ) -> None:
        if alpha <= 0:
            raise ValueError("path-loss exponent α must be positive")
        if beta <= 0:
            raise ValueError("SINR threshold β must be positive")
        if noise < 0:
            raise ValueError("noise ν must be non-negative")
        self.links = links
        self.alpha = alpha
        self.beta = beta
        self.noise = noise
        # gain[j, i] = 1 / d(s_j, r_i)^α : channel gain from sender j to
        # receiver i; the diagonal is the signal gain of each link.
        sr = links.sender_receiver_matrix()
        if (np.diagonal(sr) <= 0).any():
            raise ValueError("zero-length link")
        if (sr <= 0).any():
            raise ValueError("a sender coincides with another link's receiver")
        self._gain = sr**-alpha

    @property
    def gain(self) -> np.ndarray:
        """``gain[j, i] = d(s_j, r_i)^{-α}``; the diagonal is signal gain."""
        return self._gain

    def signal(self, power: np.ndarray) -> np.ndarray:
        """Received signal strength of each link: p_i·gain[i, i]."""
        g = self.gain
        return np.asarray(power, dtype=float) * np.diagonal(g)

    def interference(self, members: np.ndarray, power: np.ndarray) -> np.ndarray:
        """For each member ``i``: Σ_{j ∈ members, j≠i} p_j · gain[j, i]."""
        idx = np.asarray(members, dtype=np.intp)
        g = self.gain
        p = np.asarray(power, dtype=float)
        received = p[idx, None] * g[np.ix_(idx, idx)]
        np.fill_diagonal(received, 0.0)
        return received.sum(axis=0)

    def sinr(self, members: np.ndarray, power: np.ndarray) -> np.ndarray:
        """SINR of each member; +inf for an interference-free link at ν = 0."""
        idx = np.asarray(members, dtype=np.intp)
        sig = self.signal(power)[idx]
        inter = self.interference(idx, power)
        with np.errstate(divide="ignore"):
            return sig / (inter + self.noise)

    def is_feasible(self, members, power: np.ndarray, tol: float = 1e-9) -> bool:
        """Can all members transmit simultaneously at the given powers?"""
        idx = np.asarray(list(members), dtype=np.intp)
        if idx.size == 0:
            return True
        if self.noise > 0 or idx.size > 1:
            return bool((self.sinr(idx, power) >= self.beta * (1.0 - tol)).all())
        return True  # single link, no noise: always feasible

    def epsilon(self, power: np.ndarray) -> float:
        """The paper's ε = (β/2)·min over link pairs of (d(ℓ)/d(s', r))^α."""
        n = self.links.n
        if n < 2:
            return 0.0
        sr = self.links.sender_receiver_matrix()
        lengths = np.diagonal(sr)
        # ratio[j, i] = (d_i / d(s_j, r_i))^α for j ≠ i.
        ratio = (lengths[None, :] / sr) ** self.alpha
        mask = ~np.eye(n, dtype=bool)
        return float(self.beta / 2.0 * ratio[mask].min())

    def weight_matrix(self, power: np.ndarray) -> np.ndarray:
        """Proposition 15's weights: w[j, i] is the clipped normalized
        interference of link j at link i."""
        p = np.asarray(power, dtype=float)
        if (p <= 0).any():
            raise ValueError("powers must be positive")
        g = self.gain
        beta_eff = self.beta / (1.0 + self.epsilon(p))
        signal = p * np.diagonal(g)
        denom = signal - beta_eff * self.noise  # per receiver i
        received = p[:, None] * g  # [j, i]
        with np.errstate(divide="ignore", invalid="ignore"):
            w = beta_eff * received / denom[None, :]
        w = np.where(denom[None, :] > 0, w, np.inf)
        w = np.minimum(w, 1.0)
        np.fill_diagonal(w, 0.0)
        return w

    def weighted_graph(self, power: np.ndarray) -> WeightedConflictGraph:
        return WeightedConflictGraph(self.weight_matrix(power))


def physical_model_structure(
    links: LinkSet,
    power: np.ndarray,
    alpha: float = 3.0,
    beta: float = 1.5,
    noise: float = 0.0,
    rho: float | None = None,
) -> WeightedConflictStructure:
    """Weighted conflict structure for the fixed-power physical model.

    ``rho`` defaults to the *measured certified upper bound* on ρ(π) for the
    decreasing-length ordering (the paper guarantees O(log n) but gives no
    constant; the LP needs a concrete feasible right-hand side).
    """
    model = PhysicalModel(links, alpha, beta, noise)
    graph = model.weighted_graph(power)
    ordering = length_ordering(links, descending=True)
    if rho is None:
        bounds = weighted_rho_of_ordering(graph, ordering)
        rho_val = max(bounds.upper, 1.0)
        source = "measured upper bound on ρ(π) (Proposition 15: O(log n))"
    else:
        rho_val = rho
        source = "caller-supplied"
    return WeightedConflictStructure(
        graph=graph,
        ordering=ordering,
        rho=rho_val,
        rho_source=source,
        metadata={
            "model": "physical",
            "alpha": alpha,
            "beta": beta,
            "noise": noise,
            "physical_model": model,
            "power": np.asarray(power, dtype=float),
        },
    )
