"""The physical (SINR) interference model (Section 4.3, Proposition 15).

Links transmit at powers ``p``; receiver ``r_i`` decodes successfully when

    p_i / d(s_i, r_i)^α  ≥  β ( Σ_{j ∈ M\\{i}} p_j / d(s_j, r_i)^α + ν ).

For *fixed* powers the paper encodes these constraints as an edge-weighted
conflict graph (Proposition 15): the weight of ``ℓ' → ℓ`` is the clipped,
normalized interference of ``ℓ'`` at ``ℓ``'s receiver,

    w(ℓ', ℓ) = min{ 1,  β'·I(ℓ', ℓ) / (S(ℓ) − β'·ν) },   β' = β/(1+ε),

so that a set is SINR-feasible iff it is independent in the weighted graph
(the (1+ε) factor converts the SINR "≥" into the independence "<"; ε is the
paper's instance-dependent constant).  For power assignments satisfying the
monotonicity conditions (uniform, linear, and the intermediate "mean" or
square-root scheme), the decreasing-length ordering certifies ρ = O(log n)
via Lemma 16.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.links import LinkSet, length_ordering
from repro.graphs.inductive import weighted_rho_of_ordering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.interference.base import WeightedConflictStructure

__all__ = [
    "PhysicalModel",
    "uniform_power",
    "linear_power",
    "mean_power",
    "is_monotone_power",
    "physical_model_structure",
    "sparse_physical_structure",
]


def uniform_power(links: LinkSet) -> np.ndarray:
    """All links transmit at power 1."""
    return np.ones(links.n)


def linear_power(links: LinkSet, alpha: float) -> np.ndarray:
    """p(ℓ) = d(ℓ)^α — every receiver sees the same signal strength."""
    return links.lengths**alpha


def mean_power(links: LinkSet, alpha: float) -> np.ndarray:
    """p(ℓ) = d(ℓ)^(α/2) — the square-root scheme between uniform/linear."""
    return links.lengths ** (alpha / 2.0)


def is_monotone_power(links: LinkSet, power: np.ndarray, alpha: float, tol: float = 1e-9) -> bool:
    """Check the paper's monotonicity: longer links get at least as much
    power but at most the same signal strength ``p/d^α``."""
    lengths = links.lengths
    order = np.argsort(lengths, kind="stable")
    p = np.asarray(power, dtype=float)[order]
    d = lengths[order]
    signal = p / d**alpha
    return bool(
        (np.diff(p) >= -tol * np.maximum(p[:-1], 1e-300)).all()
        and (np.diff(signal) <= tol * np.maximum(signal[:-1], 1e-300)).all()
    )


class PhysicalModel:
    """SINR model for a fixed link set and parameters (α, β, ν)."""

    def __init__(
        self,
        links: LinkSet,
        alpha: float = 3.0,
        beta: float = 1.5,
        noise: float = 0.0,
    ) -> None:
        if alpha <= 0:
            raise ValueError("path-loss exponent α must be positive")
        if beta <= 0:
            raise ValueError("SINR threshold β must be positive")
        if noise < 0:
            raise ValueError("noise ν must be non-negative")
        self.links = links
        self.alpha = alpha
        self.beta = beta
        self.noise = noise
        # gain[j, i] = 1 / d(s_j, r_i)^α : channel gain from sender j to
        # receiver i; the diagonal is the signal gain of each link.
        sr = links.sender_receiver_matrix()
        if (np.diagonal(sr) <= 0).any():
            raise ValueError("zero-length link")
        if (sr <= 0).any():
            raise ValueError("a sender coincides with another link's receiver")
        self._gain = sr**-alpha

    @property
    def gain(self) -> np.ndarray:
        """``gain[j, i] = d(s_j, r_i)^{-α}``; the diagonal is signal gain."""
        return self._gain

    def signal(self, power: np.ndarray) -> np.ndarray:
        """Received signal strength of each link: p_i·gain[i, i]."""
        g = self.gain
        return np.asarray(power, dtype=float) * np.diagonal(g)

    def interference(self, members: np.ndarray, power: np.ndarray) -> np.ndarray:
        """For each member ``i``: Σ_{j ∈ members, j≠i} p_j · gain[j, i]."""
        idx = np.asarray(members, dtype=np.intp)
        g = self.gain
        p = np.asarray(power, dtype=float)
        received = p[idx, None] * g[np.ix_(idx, idx)]
        np.fill_diagonal(received, 0.0)
        return received.sum(axis=0)

    def sinr(self, members: np.ndarray, power: np.ndarray) -> np.ndarray:
        """SINR of each member; +inf for an interference-free link at ν = 0."""
        idx = np.asarray(members, dtype=np.intp)
        sig = self.signal(power)[idx]
        inter = self.interference(idx, power)
        with np.errstate(divide="ignore"):
            return sig / (inter + self.noise)

    def is_feasible(self, members, power: np.ndarray, tol: float = 1e-9) -> bool:
        """Can all members transmit simultaneously at the given powers?"""
        idx = np.asarray(list(members), dtype=np.intp)
        if idx.size == 0:
            return True
        if self.noise > 0 or idx.size > 1:
            return bool((self.sinr(idx, power) >= self.beta * (1.0 - tol)).all())
        return True  # single link, no noise: always feasible

    def epsilon(self, power: np.ndarray) -> float:
        """The paper's ε = (β/2)·min over link pairs of (d(ℓ)/d(s', r))^α."""
        n = self.links.n
        if n < 2:
            return 0.0
        sr = self.links.sender_receiver_matrix()
        lengths = np.diagonal(sr)
        # ratio[j, i] = (d_i / d(s_j, r_i))^α for j ≠ i.
        ratio = (lengths[None, :] / sr) ** self.alpha
        mask = ~np.eye(n, dtype=bool)
        return float(self.beta / 2.0 * ratio[mask].min())

    def weight_matrix(self, power: np.ndarray) -> np.ndarray:
        """Proposition 15's weights: w[j, i] is the clipped normalized
        interference of link j at link i."""
        p = np.asarray(power, dtype=float)
        if (p <= 0).any():
            raise ValueError("powers must be positive")
        g = self.gain
        beta_eff = self.beta / (1.0 + self.epsilon(p))
        signal = p * np.diagonal(g)
        denom = signal - beta_eff * self.noise  # per receiver i
        received = p[:, None] * g  # [j, i]
        with np.errstate(divide="ignore", invalid="ignore"):
            w = beta_eff * received / denom[None, :]
        w = np.where(denom[None, :] > 0, w, np.inf)
        w = np.minimum(w, 1.0)
        np.fill_diagonal(w, 0.0)
        return w

    def weighted_graph(self, power: np.ndarray) -> WeightedConflictGraph:
        return WeightedConflictGraph(self.weight_matrix(power))


def physical_model_structure(
    links: LinkSet,
    power: np.ndarray,
    alpha: float = 3.0,
    beta: float = 1.5,
    noise: float = 0.0,
    rho: float | None = None,
) -> WeightedConflictStructure:
    """Weighted conflict structure for the fixed-power physical model.

    ``rho`` defaults to the *measured certified upper bound* on ρ(π) for the
    decreasing-length ordering (the paper guarantees O(log n) but gives no
    constant; the LP needs a concrete feasible right-hand side).
    """
    model = PhysicalModel(links, alpha, beta, noise)
    graph = model.weighted_graph(power)
    ordering = length_ordering(links, descending=True)
    if rho is None:
        bounds = weighted_rho_of_ordering(graph, ordering)
        rho_val = max(bounds.upper, 1.0)
        source = "measured upper bound on ρ(π) (Proposition 15: O(log n))"
    else:
        rho_val = rho
        source = "caller-supplied"
    return WeightedConflictStructure(
        graph=graph,
        ordering=ordering,
        rho=rho_val,
        rho_source=source,
        metadata={
            "model": "physical",
            "alpha": alpha,
            "beta": beta,
            "noise": noise,
            "physical_model": model,
            "power": np.asarray(power, dtype=float),
        },
    )


def _epsilon_chunked(links: LinkSet, beta: float, alpha: float, chunk: int = 512) -> float:
    """The paper's ε = (β/2)·min over pairs of (d(ℓ)/d(s', r))^α, computed in
    receiver chunks so the n×n ratio matrix never materializes.  Each chunk
    evaluates the same elementwise expressions as
    :meth:`PhysicalModel.epsilon`, so the minimum is bit-identical."""
    n = links.n
    if n < 2:
        return 0.0
    lengths = links.lengths
    best = np.inf
    for lo in range(0, n, chunk):
        cols = np.arange(lo, min(lo + chunk, n), dtype=np.intp)
        block = links.metric.distance_submatrix(links.sender_idx, links.receiver_idx[cols])
        ratio = (lengths[cols][None, :] / block) ** alpha
        ratio[cols, np.arange(cols.size)] = np.inf  # mask the diagonal pairs
        best = min(best, float(ratio.min()))
    return float(beta / 2.0 * best)


def sparse_physical_structure(
    links: LinkSet,
    power: np.ndarray,
    alpha: float = 3.0,
    beta: float = 1.5,
    noise: float = 0.0,
    weight_cutoff: float = 1e-3,
    rho: float | None = None,
) -> WeightedConflictStructure:
    """Metro-scale physical model: KD-tree construction of the Proposition 15
    weighted graph with far-field truncation.

    Interference decays as ``d^{-α}``, so beyond a pair-specific radius the
    normalized weight drops below ``weight_cutoff``; those entries are
    dropped (the standard far-field truncation of large-scale SINR models).
    Candidate pairs come from one KD-tree range query at the *global* cutoff
    radius, and every surviving weight is computed with the elementwise
    expressions of :meth:`PhysicalModel.weight_matrix` — so the result
    equals the dense weight matrix thresholded at the cutoff, entry for
    entry (pinned by the parity tests).  ``weight_cutoff=0`` is rejected:
    use :func:`physical_model_structure` when the full dense matrix is
    wanted.

    ``rho`` defaults to the summed-backward-mass upper bound
    ``max_v Σ_{π(u)<π(v)} w̄(u, v)`` — weaker than the branch-and-bound
    bound of the dense builder but certified and O(nnz) to compute.
    """
    from repro.geometry.spatial import cross_candidate_pairs

    import scipy.sparse as sp

    if not 0.0 < weight_cutoff < 1.0:
        raise ValueError("weight_cutoff must be in (0, 1)")
    xy = links.endpoint_coords()
    if xy is None:
        raise ValueError("sparse_physical_structure needs Euclidean coordinates")
    s_xy, r_xy = xy
    n = links.n
    p = np.asarray(power, dtype=float)
    if (p <= 0).any():
        raise ValueError("powers must be positive")
    lengths = links.lengths
    if (lengths <= 0).any():
        raise ValueError("zero-length link")
    eps = _epsilon_chunked(links, beta, alpha)
    beta_eff = beta / (1.0 + eps)
    signal = p * lengths**-alpha
    denom = signal - beta_eff * noise
    if (denom <= 0).any():
        raise ValueError(
            "noise dominates some receiver's signal; the weighted graph is "
            "fully dense — use physical_model_structure"
        )
    # w(j→i) = β'·p_j·d(s_j, r_i)^{-α} / denom_i ≥ cutoff  ⟺
    # d(s_j, r_i) ≤ (β'·p_j / (cutoff·denom_i))^{1/α} ≤ global radius
    radius = float((beta_eff * p.max() / (weight_cutoff * denom.min())) ** (1.0 / alpha))
    i_idx, j_idx = cross_candidate_pairs(r_xy, s_xy, radius)
    off_diag = i_idx != j_idx
    i_idx, j_idx = i_idx[off_diag], j_idx[off_diag]
    d = np.sqrt(((s_xy[j_idx] - r_xy[i_idx]) ** 2).sum(axis=-1))
    gain = d**-alpha
    w = beta_eff * (p[j_idx] * gain) / denom[i_idx]
    keep = w >= weight_cutoff
    w = np.minimum(w[keep], 1.0)
    graph = WeightedConflictGraph.from_csr(
        sp.csr_matrix((w, (j_idx[keep], i_idx[keep])), shape=(n, n))
    )
    ordering = length_ordering(links, descending=True)
    if rho is None:
        wbar = graph.wbar_csr.tocoo()
        pos = ordering.pos
        earlier = pos[wbar.row] < pos[wbar.col]
        mass = np.zeros(n)
        np.add.at(mass, wbar.col[earlier], wbar.data[earlier])
        rho_val = max(float(mass.max(initial=0.0)), 1.0)
        source = "backward-mass upper bound on ρ(π) (sparse; Proposition 15: O(log n))"
    else:
        rho_val = rho
        source = "caller-supplied"
    return WeightedConflictStructure(
        graph=graph,
        ordering=ordering,
        rho=rho_val,
        rho_source=source,
        metadata={
            "model": "physical-sparse",
            "alpha": alpha,
            "beta": beta,
            "noise": noise,
            "weight_cutoff": weight_cutoff,
            "epsilon": eps,
            "power": p,
        },
    )
