"""Transmitter scenarios on disk graphs (Section 4.1).

Two models:

* plain disk graphs — transmitters conflict when their transmission disks
  intersect; Proposition 9 certifies ρ ≤ 5 for the decreasing-radius
  ordering;
* distance-2 coloring — transmitters conflict when they are within two hops
  of each other in the disk graph (the square of the graph); Proposition 11
  certifies ρ = O(1) for the same ordering.  Following the constants in the
  proof (Lemma 10 with a = 2 plus the two 5-packings), we use the explicit
  bound 5 + (2 + 2)² + 5·5 = 46 and record its derivation.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.disks import DiskInstance, radius_ordering
from repro.graphs.conflict_graph import ConflictGraph
from repro.interference.base import ConflictStructure

__all__ = [
    "disk_transmitter_model",
    "graph_square",
    "distance2_coloring_graph",
    "distance2_coloring_model",
    "DISK_RHO_BOUND",
    "DISTANCE2_DISK_RHO_BOUND",
]

DISK_RHO_BOUND = 5
# Proposition 11: direct neighbors (≤ 5, Prop. 9) + larger-radius vertices
# reached via a smaller intermediate (Lemma 10 with a = 2 → (2+2)² = 16) +
# via a larger intermediate (≤ 5 intermediates × ≤ 5 conflicts each = 25).
DISTANCE2_DISK_RHO_BOUND = 5 + 16 + 25


def disk_transmitter_model(instance: DiskInstance) -> ConflictStructure:
    """Disk-graph transmitter scenario with Proposition 9's certificate."""
    return ConflictStructure(
        graph=instance.graph,
        ordering=instance.ordering,
        rho=DISK_RHO_BOUND,
        rho_source="Proposition 9 (disk graphs, decreasing radius)",
        metadata={"model": "disk"},
    )


def graph_square(graph: ConflictGraph) -> ConflictGraph:
    """G²: join vertices at hop distance ≤ 2.

    CSR-backed graphs square sparsely (CSR matmul keeps the quadratic blowup
    bounded by the true two-hop neighborhoods); dense graphs use the dense
    product.  Identical edge sets either way.
    """
    if graph.is_sparse:
        import scipy.sparse as sp

        a = graph.csr.astype(np.int32)
        coo = ((a + a @ a) > 0).tocoo()
        keep = coo.row != coo.col
        sq = sp.csr_matrix(
            (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=coo.shape
        )
        return ConflictGraph.from_csr(sq)
    a = graph.adjacency
    two_hops = (a.astype(np.uint8) @ a.astype(np.uint8)) > 0
    sq = a | two_hops
    np.fill_diagonal(sq, False)
    return ConflictGraph.from_adjacency(sq)


def distance2_coloring_graph(base: ConflictGraph) -> ConflictGraph:
    """Conflict graph of distance-2 coloring: the square of the base graph."""
    return graph_square(base)


def distance2_coloring_model(instance: DiskInstance) -> ConflictStructure:
    """Distance-2 coloring on a disk graph (Proposition 11)."""
    return ConflictStructure(
        graph=distance2_coloring_graph(instance.graph),
        ordering=radius_ordering(instance.radii),
        rho=DISTANCE2_DISK_RHO_BOUND,
        rho_source="Proposition 11 (distance-2 coloring in disk graphs)",
        metadata={"model": "distance2-disk"},
    )


def disk_structure_from_arrays(points: np.ndarray, radii: np.ndarray) -> ConflictStructure:
    """Convenience: build the Proposition 9 structure from raw arrays."""
    inst = DiskInstance(points, radii)
    return disk_transmitter_model(inst)


__all__.append("disk_structure_from_arrays")
