"""Distance-2 matching on disk graphs (Section 4.2, Corollary 14).

Here the bidders are the *edges* of a host disk graph.  Two host edges
conflict when they are within distance 1 of each other in the line-graph
sense: they share an endpoint or some host edge joins their endpoints.  A
channel's holders must form a distance-2 matching (a strong matching).

Barrett et al. order links by increasing ``r(e) = r(u) + r(v)`` and show the
number of mutually-compatible *larger* links conflicting with any link is
O(1); in our convention the backward neighborhood holds the larger links, so
π sorts by decreasing ``r(e)``.  Following the proof's packing constants we
certify the explicit bound below.

Both conflict-graph builders express the conflict relation through the
edge/vertex incidence matrix ``B`` (``B[v, e] = 1`` iff ``v`` is an endpoint
of ``e``): shared endpoints are ``BᵀB`` and host-edge connections are
``BᵀAB``, so the dense and sparse paths compute the same edge set and the
sparse path (CSR matmuls) never materializes the m×m matrix.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.geometry.disks import DiskInstance
from repro.geometry.spatial import resolve_method
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.interference.base import ConflictStructure

__all__ = [
    "host_edges",
    "host_edge_arrays",
    "distance2_matching_graph",
    "distance2_matching_model",
    "DISTANCE2_MATCHING_RHO_BOUND",
]

# Conservative constant from the packing argument of Barrett et al. [4]:
# links of larger r(e) in conflict with e but mutually at distance ≥ 2 have
# well-separated disks around their endpoints inside a ball of radius O(r(e))
# around e; the explicit constant in their analysis is below 64.
DISTANCE2_MATCHING_RHO_BOUND = 64


def host_edges(graph: ConflictGraph) -> list[tuple[int, int]]:
    """Deterministically ordered edge list of the host graph."""
    return list(graph.edges())


def host_edge_arrays(
    graph: ConflictGraph, edges: list[tuple[int, int]] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Endpoint arrays ``(ea, eb)`` of the host edge list, vectorized.

    Sparse hosts read the upper-triangular CSR structure directly; dense
    hosts use the same row-major ``nonzero`` order as :func:`host_edges`.
    """
    if edges is not None:
        arr = np.asarray(edges, dtype=np.intp).reshape(len(edges), 2)
        return arr[:, 0].copy(), arr[:, 1].copy()
    if graph.is_sparse:
        coo = sp.triu(graph.csr, k=1).tocoo()
        order = np.lexsort((coo.col, coo.row))
        return coo.row[order].astype(np.intp), coo.col[order].astype(np.intp)
    ea, eb = np.nonzero(np.triu(graph.adjacency))
    return ea.astype(np.intp), eb.astype(np.intp)


def _incidence(n: int, ea: np.ndarray, eb: np.ndarray) -> sp.csr_matrix:
    """Vertex/edge incidence ``B[v, e] = 1`` iff ``v ∈ e`` (CSR, int32)."""
    m = ea.size
    rows = np.concatenate([ea, eb])
    cols = np.concatenate([np.arange(m, dtype=np.intp)] * 2)
    data = np.ones(2 * m, dtype=np.int32)
    return sp.csr_matrix((data, (rows, cols)), shape=(n, m))


def distance2_matching_graph(
    host: ConflictGraph,
    edges: list[tuple[int, int]] | None = None,
    method: str = "auto",
) -> tuple[ConflictGraph, list[tuple[int, int]]]:
    """Conflict graph on host edges for the distance-2 matching constraint.

    Edges ``e = {a, b}`` and ``f = {c, d}`` conflict iff they share an
    endpoint or the host contains an edge between ``{a, b}`` and ``{c, d}``
    (so any two selected links have no connecting path shorter than 2 edges).
    """
    if edges is None:
        ea, eb = host_edge_arrays(host)
        e_list = list(zip(ea.tolist(), eb.tolist()))
    else:
        e_list = edges
        ea, eb = host_edge_arrays(host, e_list)
    m = ea.size
    if resolve_method(method, m) == "spatial":
        b = _incidence(host.n, ea, eb)
        a_host = host.csr.astype(np.int32)
        conflict = (b.T @ b + b.T @ (a_host @ b)) > 0
        coo = sp.csr_matrix(conflict).tocoo()
        keep = coo.row != coo.col
        graph = ConflictGraph.from_csr(
            sp.csr_matrix(
                (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=(m, m)
            )
        )
        return graph, e_list
    adj_host = host.adjacency
    conflict = np.zeros((m, m), dtype=bool)
    # Shared endpoint.
    for x, y in ((ea, ea), (ea, eb), (eb, ea), (eb, eb)):
        conflict |= x[:, None] == y[None, :]
    # Host edge connecting the two links' endpoints.
    for x, y in ((ea, ea), (ea, eb), (eb, ea), (eb, eb)):
        conflict |= adj_host[x][:, y]
    np.fill_diagonal(conflict, False)
    return ConflictGraph.from_adjacency(conflict), e_list


def distance2_matching_model(
    instance: DiskInstance, method: str = "auto"
) -> ConflictStructure:
    """Distance-2 matching structure on a disk-graph host.

    The ordering sorts links by decreasing ``r(e) = r(u) + r(v)``.
    """
    graph, e_list = distance2_matching_graph(instance.graph, method=method)
    ea, eb = host_edge_arrays(instance.graph, e_list)
    r_e = instance.radii[ea] + instance.radii[eb]
    ordering = VertexOrdering.by_key(r_e, descending=True)
    return ConflictStructure(
        graph=graph,
        ordering=ordering,
        rho=DISTANCE2_MATCHING_RHO_BOUND,
        rho_source="Corollary 14 / Barrett et al. [4] packing constant",
        metadata={"model": "distance2-matching", "host_edges": e_list},
    )
