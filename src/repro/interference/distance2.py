"""Distance-2 matching on disk graphs (Section 4.2, Corollary 14).

Here the bidders are the *edges* of a host disk graph.  Two host edges
conflict when they are within distance 1 of each other in the line-graph
sense: they share an endpoint or some host edge joins their endpoints.  A
channel's holders must form a distance-2 matching (a strong matching).

Barrett et al. order links by increasing ``r(e) = r(u) + r(v)`` and show the
number of mutually-compatible *larger* links conflicting with any link is
O(1); in our convention the backward neighborhood holds the larger links, so
π sorts by decreasing ``r(e)``.  Following the proof's packing constants we
certify the explicit bound below.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.disks import DiskInstance
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.interference.base import ConflictStructure

__all__ = [
    "host_edges",
    "distance2_matching_graph",
    "distance2_matching_model",
    "DISTANCE2_MATCHING_RHO_BOUND",
]

# Conservative constant from the packing argument of Barrett et al. [4]:
# links of larger r(e) in conflict with e but mutually at distance ≥ 2 have
# well-separated disks around their endpoints inside a ball of radius O(r(e))
# around e; the explicit constant in their analysis is below 64.
DISTANCE2_MATCHING_RHO_BOUND = 64


def host_edges(graph: ConflictGraph) -> list[tuple[int, int]]:
    """Deterministically ordered edge list of the host graph."""
    return list(graph.edges())


def distance2_matching_graph(
    host: ConflictGraph,
    edges: list[tuple[int, int]] | None = None,
) -> tuple[ConflictGraph, list[tuple[int, int]]]:
    """Conflict graph on host edges for the distance-2 matching constraint.

    Edges ``e = {a, b}`` and ``f = {c, d}`` conflict iff they share an
    endpoint or the host contains an edge between ``{a, b}`` and ``{c, d}``
    (so any two selected links have no connecting path shorter than 2 edges).
    """
    e_list = host_edges(host) if edges is None else edges
    m = len(e_list)
    adj_host = host.adjacency
    ea = np.array([e[0] for e in e_list], dtype=np.intp)
    eb = np.array([e[1] for e in e_list], dtype=np.intp)
    conflict = np.zeros((m, m), dtype=bool)
    # Shared endpoint.
    for x, y in ((ea, ea), (ea, eb), (eb, ea), (eb, eb)):
        conflict |= x[:, None] == y[None, :]
    # Host edge connecting the two links' endpoints.
    for x, y in ((ea, ea), (ea, eb), (eb, ea), (eb, eb)):
        conflict |= adj_host[x][:, y]
    np.fill_diagonal(conflict, False)
    return ConflictGraph.from_adjacency(conflict), e_list


def distance2_matching_model(instance: DiskInstance) -> ConflictStructure:
    """Distance-2 matching structure on a disk-graph host.

    The ordering sorts links by decreasing ``r(e) = r(u) + r(v)``.
    """
    graph, e_list = distance2_matching_graph(instance.graph)
    r_e = np.array([instance.radii[a] + instance.radii[b] for a, b in e_list])
    ordering = VertexOrdering.by_key(r_e, descending=True)
    return ConflictStructure(
        graph=graph,
        ordering=ordering,
        rho=DISTANCE2_MATCHING_RHO_BOUND,
        rho_source="Corollary 14 / Barrett et al. [4] packing constant",
        metadata={"model": "distance2-matching", "host_edges": e_list},
    )
