"""(r,s)-civilized graphs and distance-2 coloring on them (Proposition 12).

A graph is (r,s)-civilized when it can be drawn in the plane with every two
vertices at distance ≥ s and edges only between vertices within distance r.
Proposition 12 shows that for distance-2 coloring on such graphs *any*
vertex ordering certifies ρ ≤ (4r/s + 2)²: every vertex conflicting with v
lies within 2r of v, and disks of radius s/2 around conflicting-but-mutually-
independent vertices pack into a disk of radius 2r + s/2 around v.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import pairwise_distances
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.interference.base import ConflictStructure
from repro.interference.disk import distance2_coloring_graph
from repro.util.rng import ensure_rng

__all__ = [
    "civilized_rho_bound",
    "sample_separated_points",
    "civilized_graph",
    "civilized_distance2_model",
    "CivilizedInstance",
]


def civilized_rho_bound(r: float, s: float) -> float:
    """Proposition 12's bound (4r/s + 2)²."""
    if r <= 0 or s <= 0:
        raise ValueError("r and s must be positive")
    return (4.0 * r / s + 2.0) ** 2


def sample_separated_points(
    n: int,
    separation: float,
    extent: float = 1.0,
    seed=None,
    max_attempts: int = 200,
) -> np.ndarray:
    """Rejection-sample ``n`` points with pairwise distance ≥ ``separation``.

    Raises ``RuntimeError`` if the square cannot plausibly hold the points
    (each attempt restarts from scratch after too many rejected draws).
    """
    rng = ensure_rng(seed)
    for _ in range(max_attempts):
        pts: list[np.ndarray] = []
        failures = 0
        while len(pts) < n and failures < 50 * n + 100:
            cand = rng.random(2) * extent
            if all(float(np.linalg.norm(cand - q)) >= separation for q in pts):
                pts.append(cand)
            else:
                failures += 1
        if len(pts) == n:
            return np.array(pts)
    raise RuntimeError(
        f"could not place {n} points with separation {separation} in extent {extent}"
    )


def civilized_graph(
    points: np.ndarray,
    r: float,
    s: float,
    edge_probability: float = 1.0,
    seed=None,
) -> ConflictGraph:
    """Edges between points within distance ``r`` (kept with the given
    probability), after validating the ``s``-separation promise."""
    pts = np.asarray(points, dtype=float)
    dist = pairwise_distances(pts)
    off = dist[~np.eye(pts.shape[0], dtype=bool)]
    if off.size and off.min() < s - 1e-12:
        raise ValueError("point set violates the s-separation promise")
    adj = dist <= r
    np.fill_diagonal(adj, False)
    if edge_probability < 1.0:
        rng = ensure_rng(seed)
        keep = rng.random(adj.shape) < edge_probability
        keep = np.triu(keep, 1)
        adj &= keep | keep.T
    return ConflictGraph.from_adjacency(adj)


class CivilizedInstance:
    """A sampled (r,s)-civilized graph with its parameters."""

    def __init__(self, points: np.ndarray, graph: ConflictGraph, r: float, s: float) -> None:
        self.points = points
        self.graph = graph
        self.r = r
        self.s = s

    @classmethod
    def sample(
        cls,
        n: int,
        r: float,
        s: float,
        extent: float = 1.0,
        edge_probability: float = 1.0,
        seed=None,
    ) -> "CivilizedInstance":
        rng = ensure_rng(seed)
        pts = sample_separated_points(n, s, extent, rng)
        return cls(pts, civilized_graph(pts, r, s, edge_probability, rng), r, s)


def civilized_distance2_model(instance: CivilizedInstance) -> ConflictStructure:
    """Distance-2 coloring structure on a civilized graph.

    Proposition 12 holds for any ordering; we use the identity ordering to
    make that point explicit.
    """
    square = distance2_coloring_graph(instance.graph)
    return ConflictStructure(
        graph=square,
        ordering=VertexOrdering.identity(instance.graph.n),
        rho=civilized_rho_bound(instance.r, instance.s),
        rho_source=f"Proposition 12 with r={instance.r}, s={instance.s}",
        metadata={"model": "civilized-distance2", "r": instance.r, "s": instance.s},
    )
