"""Bidder valuations with exact demand oracles."""

from repro.valuations.additive import (
    AdditiveValuation,
    BudgetedAdditiveValuation,
    CappedAdditiveValuation,
    UnitDemandValuation,
)
from repro.valuations.base import EMPTY_BUNDLE, Valuation, enumerate_bundles
from repro.valuations.explicit import (
    ExplicitValuation,
    SingleMindedValuation,
    XORValuation,
)
from repro.valuations.generators import (
    all_or_nothing_valuations,
    random_additive_valuations,
    random_budgeted_valuations,
    random_capped_additive_valuations,
    random_mixed_valuations,
    random_single_minded_valuations,
    random_unit_demand_valuations,
    random_xor_valuations,
)
from repro.valuations.oracles import brute_force_demand, verify_demand_oracle

__all__ = [
    "Valuation",
    "EMPTY_BUNDLE",
    "enumerate_bundles",
    "ExplicitValuation",
    "XORValuation",
    "SingleMindedValuation",
    "AdditiveValuation",
    "UnitDemandValuation",
    "CappedAdditiveValuation",
    "BudgetedAdditiveValuation",
    "brute_force_demand",
    "verify_demand_oracle",
    "random_xor_valuations",
    "random_additive_valuations",
    "random_unit_demand_valuations",
    "random_capped_additive_valuations",
    "random_budgeted_valuations",
    "random_single_minded_valuations",
    "all_or_nothing_valuations",
    "random_mixed_valuations",
]
