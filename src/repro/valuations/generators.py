"""Random valuation suites for experiments.

Values are drawn as integers (the paper's ``b : V × 2^[k] → N``) unless
stated otherwise.  Every generator takes a seed/Generator and returns one
valuation per bidder.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_rng
from repro.valuations.additive import (
    AdditiveValuation,
    BudgetedAdditiveValuation,
    CappedAdditiveValuation,
    UnitDemandValuation,
)
from repro.valuations.base import Valuation
from repro.valuations.explicit import SingleMindedValuation, XORValuation

__all__ = [
    "random_xor_valuations",
    "random_additive_valuations",
    "random_unit_demand_valuations",
    "random_capped_additive_valuations",
    "random_budgeted_valuations",
    "random_single_minded_valuations",
    "all_or_nothing_valuations",
    "random_mixed_valuations",
]


def _int_values(rng: np.random.Generator, size: int, lo: int, hi: int) -> np.ndarray:
    return rng.integers(lo, hi + 1, size=size).astype(float)


def random_xor_valuations(
    n: int,
    k: int,
    bids_per_bidder: int = 4,
    value_range: tuple[int, int] = (1, 100),
    max_bundle_size: int | None = None,
    seed=None,
) -> list[Valuation]:
    """XOR bidders with a few random bundles each.

    Bundle sizes are drawn log-uniformly so both small and large bundles
    appear — the regime split of Algorithm 1 (|T| vs √k) needs both.
    """
    rng = ensure_rng(seed)
    lo, hi = value_range
    cap = k if max_bundle_size is None else min(max_bundle_size, k)
    out: list[Valuation] = []
    for _ in range(n):
        bids: dict[frozenset[int], float] = {}
        for _ in range(bids_per_bidder):
            size = int(np.clip(np.round(2 ** rng.uniform(0, np.log2(cap))), 1, cap))
            bundle = frozenset(int(j) for j in rng.choice(k, size=size, replace=False))
            base = int(rng.integers(lo, hi + 1))
            # Larger bundles are worth more in expectation (superadditive-ish).
            bids[bundle] = float(base * (1 + len(bundle)) // 2 + len(bundle))
        out.append(XORValuation(k, bids))
    return out


def random_additive_valuations(
    n: int, k: int, value_range: tuple[int, int] = (1, 20), seed=None
) -> list[Valuation]:
    rng = ensure_rng(seed)
    lo, hi = value_range
    return [AdditiveValuation(_int_values(rng, k, lo, hi)) for _ in range(n)]


def random_unit_demand_valuations(
    n: int, k: int, value_range: tuple[int, int] = (1, 100), seed=None
) -> list[Valuation]:
    rng = ensure_rng(seed)
    lo, hi = value_range
    return [UnitDemandValuation(_int_values(rng, k, lo, hi)) for _ in range(n)]


def random_capped_additive_valuations(
    n: int,
    k: int,
    cap_range: tuple[int, int] | None = None,
    value_range: tuple[int, int] = (1, 20),
    seed=None,
) -> list[Valuation]:
    rng = ensure_rng(seed)
    lo, hi = value_range
    cap_lo, cap_hi = cap_range if cap_range is not None else (1, max(1, k // 2))
    return [
        CappedAdditiveValuation(
            _int_values(rng, k, lo, hi), int(rng.integers(cap_lo, cap_hi + 1))
        )
        for _ in range(n)
    ]


def random_budgeted_valuations(
    n: int, k: int, value_range: tuple[int, int] = (1, 20), seed=None
) -> list[Valuation]:
    rng = ensure_rng(seed)
    lo, hi = value_range
    out = []
    for _ in range(n):
        values = _int_values(rng, k, lo, hi)
        budget = float(rng.integers(hi, max(int(values.sum()), hi + 1) + 1))
        out.append(BudgetedAdditiveValuation(values, budget))
    return out


def random_single_minded_valuations(
    n: int,
    k: int,
    value_range: tuple[int, int] = (1, 100),
    max_bundle_size: int | None = None,
    seed=None,
) -> list[Valuation]:
    rng = ensure_rng(seed)
    lo, hi = value_range
    cap = k if max_bundle_size is None else min(max_bundle_size, k)
    out = []
    for _ in range(n):
        size = int(rng.integers(1, cap + 1))
        bundle = frozenset(int(j) for j in rng.choice(k, size=size, replace=False))
        out.append(SingleMindedValuation(k, bundle, float(rng.integers(lo, hi + 1))))
    return out


def all_or_nothing_valuations(n: int, k: int, value: float = 1.0) -> list[Valuation]:
    """Theorem 18's valuations: worth ``value`` for the full bundle only.

    Built as *ExplicitValuation*-style XOR on the single full bundle; note
    these are intentionally non-monotone-agnostic (only [k] matters).
    """
    full = frozenset(range(k))
    return [SingleMindedValuation(k, full, value) for _ in range(n)]


def random_mixed_valuations(
    n: int, k: int, seed=None, value_range: tuple[int, int] = (1, 50)
) -> list[Valuation]:
    """A heterogeneous population cycling over all valuation classes."""
    rng = ensure_rng(seed)
    factories = [
        lambda r: random_xor_valuations(1, k, seed=r)[0],
        lambda r: random_additive_valuations(1, k, seed=r)[0],
        lambda r: random_unit_demand_valuations(1, k, seed=r)[0],
        lambda r: random_capped_additive_valuations(1, k, seed=r)[0],
        lambda r: random_single_minded_valuations(1, k, seed=r)[0],
    ]
    return [factories[i % len(factories)](rng) for i in range(n)]
