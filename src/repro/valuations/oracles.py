"""Demand-oracle helpers and verification utilities.

The LP machinery only ever talks to bidders through demand queries; these
helpers provide the brute-force reference oracle (for tests and for
valuations without a specialized oracle) and a verifier that cross-checks a
valuation's ``demand`` implementation against the reference on random
prices.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_rng
from repro.valuations.base import EMPTY_BUNDLE, Valuation, enumerate_bundles

__all__ = ["brute_force_demand", "verify_demand_oracle"]


def brute_force_demand(
    valuation: Valuation, prices: np.ndarray
) -> tuple[frozenset[int], float]:
    """Reference oracle: enumerate all 2^k bundles."""
    p = np.asarray(prices, dtype=float)
    best, best_util = EMPTY_BUNDLE, 0.0
    for bundle in enumerate_bundles(valuation.k):
        util = valuation.value(bundle) - sum(p[j] for j in bundle)
        if util > best_util + 1e-12:
            best, best_util = bundle, util
    return best, float(best_util)


def verify_demand_oracle(
    valuation: Valuation,
    trials: int = 25,
    price_scale: float = 1.0,
    seed=None,
    allow_negative_prices: bool = False,
    tolerance: float = 1e-9,
) -> bool:
    """Cross-check ``valuation.demand`` against brute force on random prices.

    Compares achieved *utilities* (bundle ties are fine).  Returns True when
    every trial matches within ``tolerance``.
    """
    rng = ensure_rng(seed)
    for _ in range(trials):
        p = rng.random(valuation.k) * price_scale
        if allow_negative_prices:
            p -= 0.5 * price_scale
        bundle, util = valuation.demand(p)
        _, ref_util = brute_force_demand(valuation, p)
        achieved = valuation.value(bundle) - sum(p[j] for j in bundle)
        if abs(achieved - util) > tolerance or util < ref_util - tolerance:
            return False
    return True
