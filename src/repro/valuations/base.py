"""Valuation interface and the demand-oracle contract (Section 2.2).

A valuation maps channel bundles ``T ⊆ [k]`` to non-negative numbers; the
paper assumes *nothing* about it (not even monotonicity).  Algorithms access
valuations two ways:

* ``value(bundle)`` — direct queries, used by the LP on explicit supports
  and by welfare accounting;
* ``demand(prices)`` — the demand oracle: given per-channel prices ``p``
  (bidder-specific in our LP's dual separation), return a bundle maximizing
  ``value(T) − Σ_{j∈T} p_j`` together with that maximum utility.  The empty
  bundle (utility 0) is always a candidate.

Subclasses override :meth:`Valuation.demand` with an exact polynomial oracle
where one exists; the default enumerates all ``2^k`` bundles, which is also
the reference implementation tests compare against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations

import numpy as np

__all__ = ["Valuation", "enumerate_bundles", "EMPTY_BUNDLE"]

EMPTY_BUNDLE: frozenset[int] = frozenset()


def enumerate_bundles(k: int):
    """Yield every bundle of ``[k]`` including the empty one (2^k bundles)."""
    channels = range(k)
    for size in range(k + 1):
        for combo in combinations(channels, size):
            yield frozenset(combo)


class Valuation(ABC):
    """A single bidder's valuation over bundles of ``k`` channels."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("need at least one channel")
        self.k = k

    @abstractmethod
    def value(self, bundle: frozenset[int]) -> float:
        """b_{v,T} for the given bundle (must be ≥ 0 for T = ∅ ⇒ 0)."""

    def _check_bundle(self, bundle: frozenset[int]) -> None:
        if any(not 0 <= j < self.k for j in bundle):
            raise ValueError(f"bundle {sorted(bundle)} out of range for k={self.k}")

    def demand(self, prices: np.ndarray) -> tuple[frozenset[int], float]:
        """Utility-maximizing bundle under per-channel ``prices``.

        Default: brute force over all bundles (exponential in k; subclasses
        provide polynomial oracles).  Ties break toward smaller bundles so
        the empty bundle wins at utility 0.
        """
        p = self._check_prices(prices)
        best, best_util = EMPTY_BUNDLE, 0.0
        for bundle in enumerate_bundles(self.k):
            util = self.value(bundle) - sum(p[j] for j in bundle)
            if util > best_util + 1e-12:
                best, best_util = bundle, util
        return best, float(best_util)

    def _check_prices(self, prices: np.ndarray) -> np.ndarray:
        p = np.asarray(prices, dtype=float)
        if p.shape != (self.k,):
            raise ValueError(f"prices must have shape ({self.k},)")
        return p

    def support(self) -> list[frozenset[int]] | None:
        """Bundles that may carry positive value, when finitely describable.

        Explicit-style valuations return their bid list so LPs can enumerate
        columns directly; oracle-only valuations return ``None``.
        """
        return None

    def support_items(self) -> list[tuple[frozenset[int], float]] | None:
        """``(bundle, value(bundle))`` pairs over :meth:`support`.

        Column enumeration calls this once per bidder instead of one
        :meth:`value` query per support bundle; subclasses override it when
        they can produce the pairs faster than repeated queries.  Order and
        values must match ``[(T, value(T)) for T in support()]`` exactly.
        """
        supp = self.support()
        if supp is None:
            return None
        return [(bundle, self.value(bundle)) for bundle in supp]

    def support_column_arrays(self):
        """The bidder's LP columns pre-flattened for the engine, or ``None``.

        Returns ``(bundles, values, sizes, channels)``: the positive-value
        non-empty support bundles in :meth:`support_items` order, their
        values and sizes as arrays, and the concatenation of their channel
        ids (any per-bundle order).  Explicit-style valuations precompute
        this at construction so the engine's column enumeration is pure
        array concatenation; the default ``None`` routes the bidder through
        the item-by-item path.
        """
        return None

    def max_value(self) -> float:
        """max_T b_{v,T}; default via a zero-price demand query."""
        _, util = self.demand(np.zeros(self.k))
        return util
