"""Structured valuations with polynomial exact demand oracles.

These model the paper's motivating bidders: devices with channel
aggregation (additive up to a capacity), single-channel radios
(unit-demand), and budget caps.  All demand oracles are exact.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.valuations.base import EMPTY_BUNDLE, Valuation

__all__ = [
    "AdditiveValuation",
    "UnitDemandValuation",
    "CappedAdditiveValuation",
    "BudgetedAdditiveValuation",
]


class AdditiveValuation(Valuation):
    """``value(T) = Σ_{j∈T} v_j``; demand takes every channel worth its price."""

    def __init__(self, per_channel: np.ndarray) -> None:
        v = np.asarray(per_channel, dtype=float)
        if v.ndim != 1:
            raise ValueError("per-channel values must be a vector")
        if (v < 0).any():
            raise ValueError("per-channel values must be non-negative")
        super().__init__(v.shape[0])
        self.per_channel = v

    def value(self, bundle: frozenset[int]) -> float:
        self._check_bundle(bundle)
        return float(sum(self.per_channel[j] for j in bundle))

    def demand(self, prices: np.ndarray) -> tuple[frozenset[int], float]:
        p = self._check_prices(prices)
        gains = self.per_channel - p
        take = np.flatnonzero(gains > 1e-12)
        return frozenset(int(j) for j in take), float(gains[take].sum())

    def max_value(self) -> float:
        return float(self.per_channel.sum())


class UnitDemandValuation(Valuation):
    """``value(T) = max_{j∈T} v_j``; demand is the best single channel."""

    def __init__(self, per_channel: np.ndarray) -> None:
        v = np.asarray(per_channel, dtype=float)
        if v.ndim != 1 or (v < 0).any():
            raise ValueError("per-channel values must be a non-negative vector")
        super().__init__(v.shape[0])
        self.per_channel = v

    def value(self, bundle: frozenset[int]) -> float:
        self._check_bundle(bundle)
        return float(max((self.per_channel[j] for j in bundle), default=0.0))

    def demand(self, prices: np.ndarray) -> tuple[frozenset[int], float]:
        p = self._check_prices(prices)
        gains = self.per_channel - p
        j = int(np.argmax(gains))
        if gains[j] > 1e-12:
            return frozenset([j]), float(gains[j])
        return EMPTY_BUNDLE, 0.0

    def max_value(self) -> float:
        return float(self.per_channel.max(initial=0.0))


class CappedAdditiveValuation(Valuation):
    """Additive value of the best ``cap`` channels in the bundle.

    Models radios that can aggregate at most ``cap`` channels.  Demand picks
    the top-``cap`` channels by positive margin (exact: the objective is
    separable once the cap binds on sorted margins).
    """

    def __init__(self, per_channel: np.ndarray, cap: int) -> None:
        v = np.asarray(per_channel, dtype=float)
        if v.ndim != 1 or (v < 0).any():
            raise ValueError("per-channel values must be a non-negative vector")
        if cap < 1:
            raise ValueError("cap must be at least 1")
        super().__init__(v.shape[0])
        self.per_channel = v
        self.cap = min(cap, self.k)

    def value(self, bundle: frozenset[int]) -> float:
        self._check_bundle(bundle)
        vals = sorted((self.per_channel[j] for j in bundle), reverse=True)
        return float(sum(vals[: self.cap]))

    def demand(self, prices: np.ndarray) -> tuple[frozenset[int], float]:
        p = self._check_prices(prices)
        gains = self.per_channel - p
        order = np.argsort(-gains, kind="stable")[: self.cap]
        take = [int(j) for j in order if gains[j] > 1e-12]
        return frozenset(take), float(sum(gains[j] for j in take))

    def max_value(self) -> float:
        top = np.sort(self.per_channel)[::-1][: self.cap]
        return float(top.sum())


class BudgetedAdditiveValuation(Valuation):
    """``value(T) = min(budget, Σ_{j∈T} v_j)``.

    The exact demand oracle enumerates which channel (if any) straddles the
    budget: for each candidate "last" channel the rest is a greedy fill,
    which is exponential in the worst case; here we use exact brute force
    over subsets for k ≤ ``brute_force_limit`` and otherwise a provably
    safe two-regime search (all-under-budget greedy vs. cheapest bundle
    reaching the budget by greedy value/price ratio — exact when values are
    integers from our generators, the paper's ``b: V × 2^[k] → N``).
    """

    def __init__(self, per_channel: np.ndarray, budget: float, brute_force_limit: int = 16) -> None:
        v = np.asarray(per_channel, dtype=float)
        if v.ndim != 1 or (v < 0).any():
            raise ValueError("per-channel values must be a non-negative vector")
        if budget <= 0:
            raise ValueError("budget must be positive")
        super().__init__(v.shape[0])
        self.per_channel = v
        self.budget = float(budget)
        self.brute_force_limit = brute_force_limit

    def value(self, bundle: frozenset[int]) -> float:
        self._check_bundle(bundle)
        return float(min(self.budget, sum(self.per_channel[j] for j in bundle)))

    def demand(self, prices: np.ndarray) -> tuple[frozenset[int], float]:
        p = self._check_prices(prices)
        if self.k <= self.brute_force_limit:
            best, best_util = EMPTY_BUNDLE, 0.0
            channels = list(range(self.k))
            for size in range(self.k + 1):
                for combo in combinations(channels, size):
                    fs = frozenset(combo)
                    util = self.value(fs) - sum(p[j] for j in fs)
                    if util > best_util + 1e-12:
                        best, best_util = fs, util
            return best, float(best_util)
        # Large k: under-budget regime is plain additive; over-budget regime
        # wants the cheapest subset whose value reaches the budget.
        gains = self.per_channel - p
        under = np.flatnonzero(gains > 1e-12)
        best = frozenset(int(j) for j in under)
        best_util = float(gains[under].sum())
        if self.per_channel[under].sum() > self.budget:
            # Greedy by value-per-price fill to reach the budget cheaply.
            order = sorted(
                range(self.k),
                key=lambda j: (p[j] / max(self.per_channel[j], 1e-12)),
            )
            total_v, total_p, chosen = 0.0, 0.0, []
            for j in order:
                if self.per_channel[j] <= 0:
                    continue
                chosen.append(j)
                total_v += self.per_channel[j]
                total_p += p[j]
                if total_v >= self.budget:
                    break
            util = min(self.budget, total_v) - total_p
            if util > best_util + 1e-12:
                best, best_util = frozenset(chosen), float(util)
        return best, best_util

    def max_value(self) -> float:
        return float(min(self.budget, self.per_channel.sum()))
