"""Explicitly tabulated valuations (finite bid lists).

Two semantics:

* :class:`ExplicitValuation` — the paper's raw ``b_{v,T}`` table: value is
  defined bundle-by-bundle with no relation between bundles (non-monotone
  allowed, matching the paper's "no restrictions, not even monotonicity").
* :class:`XORValuation` — free-disposal XOR bids: the value of ``T`` is the
  best bid contained in ``T``.

Both have exact linear-time demand oracles (scan the bid list), and both
expose their bid list via :meth:`support` so the LP can enumerate columns.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.valuations.base import EMPTY_BUNDLE, Valuation

__all__ = ["ExplicitValuation", "XORValuation", "SingleMindedValuation"]


def _column_arrays(items: list[tuple[frozenset[int], float]]):
    """Pre-flattened LP-column arrays over positive-value support items
    (the :meth:`Valuation.support_column_arrays` contract)."""
    entries = [(b, v) for b, v in items if b and v > 0]
    bundles = [b for b, _ in entries]
    values = np.array([v for _, v in entries], dtype=float)
    sizes = np.fromiter((len(b) for b in bundles), dtype=np.intp, count=len(bundles))
    channels = np.fromiter(
        (j for b in bundles for j in b), dtype=np.intp, count=int(sizes.sum())
    )
    return bundles, values, sizes, channels


def _normalize_bids(bids: Mapping[frozenset[int], float], k: int) -> dict[frozenset[int], float]:
    out: dict[frozenset[int], float] = {}
    for bundle, value in bids.items():
        fs = frozenset(bundle)
        if any(not 0 <= j < k for j in fs):
            raise ValueError(f"bundle {sorted(fs)} out of range for k={k}")
        if value < 0:
            raise ValueError("bid values must be non-negative")
        if not fs:
            if value != 0:
                raise ValueError("the empty bundle must have value 0")
            continue
        out[fs] = float(value)
    return out


class ExplicitValuation(Valuation):
    """``b_{v,T}`` given by a finite table; unlisted bundles are worth 0."""

    def __init__(self, k: int, bids: Mapping[frozenset[int], float]) -> None:
        super().__init__(k)
        self.bids = _normalize_bids(bids, k)
        self._column_arrays = _column_arrays(list(self.bids.items()))

    def support_column_arrays(self):
        return self._column_arrays

    def value(self, bundle: frozenset[int]) -> float:
        self._check_bundle(bundle)
        return self.bids.get(frozenset(bundle), 0.0)

    def demand(self, prices: np.ndarray) -> tuple[frozenset[int], float]:
        p = self._check_prices(prices)
        best, best_util = EMPTY_BUNDLE, 0.0
        for bundle, value in self.bids.items():
            util = value - sum(p[j] for j in bundle)
            if util > best_util + 1e-12:
                best, best_util = bundle, util
        return best, float(best_util)

    def support(self) -> list[frozenset[int]]:
        return list(self.bids)

    def support_items(self) -> list[tuple[frozenset[int], float]]:
        return list(self.bids.items())

    def max_value(self) -> float:
        return max(self.bids.values(), default=0.0)


class XORValuation(Valuation):
    """Free-disposal XOR bids: ``value(T) = max{b(S) : S ⊆ T, S a bid}``."""

    def __init__(self, k: int, bids: Mapping[frozenset[int], float]) -> None:
        super().__init__(k)
        self.bids = _normalize_bids(bids, k)
        # the free-disposal closure is computed eagerly: column enumeration
        # sits on the engine's cold solve path, valuation construction does
        # not (fleets are generated before solving starts)
        masks = [sum(1 << j for j in bundle) for bundle in self.bids]
        values = list(self.bids.values())
        self._support_items: list[tuple[frozenset[int], float]] = [
            (
                bundle,
                max(
                    (
                        value
                        for other, value in zip(masks, values)
                        if other & mask == other
                    ),
                    default=0.0,
                ),
            )
            for bundle, mask in zip(self.bids, masks)
        ]
        self._column_arrays = _column_arrays(self._support_items)

    def support_column_arrays(self):
        return self._column_arrays

    def value(self, bundle: frozenset[int]) -> float:
        self._check_bundle(bundle)
        fs = frozenset(bundle)
        return max((b for s, b in self.bids.items() if s <= fs), default=0.0)

    def demand(self, prices: np.ndarray) -> tuple[frozenset[int], float]:
        # With non-negative prices it is never useful to take channels
        # beyond the winning bid, so scanning bids is exact.  Negative
        # prices can arise transiently inside column generation; there the
        # bundle is padded with every negatively-priced channel.
        p = self._check_prices(prices)
        free = frozenset(int(j) for j in np.flatnonzero(p < 0))
        pad_gain = float(-p[list(free)].sum()) if free else 0.0
        best, best_util = (free, pad_gain) if pad_gain > 0 else (EMPTY_BUNDLE, 0.0)
        for bundle, value in self.bids.items():
            take = bundle | free
            util = value - sum(p[j] for j in take)  # value(take) ≥ value
            if util > best_util + 1e-12:
                best, best_util = take, util
        return best, float(best_util)

    def support(self) -> list[frozenset[int]]:
        return list(self.bids)

    def support_items(self) -> list[tuple[frozenset[int], float]]:
        # value(T) for a bid T is the best bid *contained in* T, which may
        # exceed the bid on T itself (free-disposal closure, precomputed in
        # __init__)
        return self._support_items

    def max_value(self) -> float:
        return max(self.bids.values(), default=0.0)


class SingleMindedValuation(XORValuation):
    """A bidder wanting exactly one bundle (free disposal above it)."""

    def __init__(self, k: int, bundle: frozenset[int], value: float) -> None:
        if not bundle:
            raise ValueError("a single-minded bidder must want a non-empty bundle")
        super().__init__(k, {frozenset(bundle): float(value)})
        self.bundle = frozenset(bundle)
        self.bid_value = float(value)
