"""Point sampling and vectorized distance kernels.

All geometric models in Section 4 place transmitters or link endpoints in
the plane; these helpers generate seeded point sets and compute dense
pairwise-distance matrices with NumPy broadcasting (no Python loops).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_rng

__all__ = [
    "sample_uniform_points",
    "sample_clustered_points",
    "pairwise_distances",
    "cross_distances",
]


def sample_uniform_points(n: int, extent: float = 1.0, seed=None) -> np.ndarray:
    """``n`` points uniform in the square ``[0, extent]²`` (shape (n, 2))."""
    if extent <= 0:
        raise ValueError("extent must be positive")
    rng = ensure_rng(seed)
    return rng.random((n, 2)) * extent


def sample_clustered_points(
    n: int,
    clusters: int = 4,
    extent: float = 1.0,
    spread: float = 0.05,
    seed=None,
) -> np.ndarray:
    """Points around ``clusters`` uniformly placed Gaussian cluster centers.

    Models hot-spot demand (the paper's motivation: localized overload of
    licensed bands).  Points are clipped back into the extent square.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    rng = ensure_rng(seed)
    centers = rng.random((clusters, 2)) * extent
    assign = rng.integers(0, clusters, size=n)
    pts = centers[assign] + rng.normal(scale=spread * extent, size=(n, 2))
    return np.clip(pts, 0.0, extent)


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense symmetric Euclidean distance matrix (shape (n, n))."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError("points must be a 2-D array of coordinates")
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))


def cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distances between two point sets: ``out[i, j] = d(a_i, b_j)``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))
