"""Sender–receiver links for link-based scenarios (Sections 4.2–4.3).

A :class:`LinkSet` holds ``n`` links inside a :class:`MetricSpace`; link
``i`` transmits from sender point ``s_i`` to receiver point ``r_i``.  All
distance queries the interference models need are exposed as dense matrices
computed in one vectorized call:

* ``sender_receiver_matrix()[i, j] = d(s_i, r_j)`` — the signal (diagonal)
  and interference (off-diagonal) distances of the SINR model;
* ``lengths[i] = d(s_i, r_i)`` — the link length, the key ordering of both
  the protocol model and Theorem 17.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.metric import EuclideanMetric, MetricSpace
from repro.graphs.conflict_graph import VertexOrdering
from repro.util.rng import ensure_rng

__all__ = ["LinkSet", "random_links", "random_metric_links", "length_ordering"]


class LinkSet:
    """``n`` directed links embedded in a metric space."""

    def __init__(
        self,
        metric: MetricSpace,
        sender_idx: np.ndarray,
        receiver_idx: np.ndarray,
    ) -> None:
        s = np.asarray(sender_idx, dtype=np.intp)
        r = np.asarray(receiver_idx, dtype=np.intp)
        if s.shape != r.shape or s.ndim != 1:
            raise ValueError("sender/receiver index arrays must be equal-length 1-D")
        if s.size and (max(s.max(), r.max()) >= metric.size or min(s.min(), r.min()) < 0):
            raise ValueError("link endpoints out of range for the metric space")
        if (s == r).any():
            raise ValueError("links must have distinct sender and receiver points")
        self.metric = metric
        self.sender_idx = s
        self.receiver_idx = r
        self._sr: np.ndarray | None = None
        self._lengths: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self.sender_idx.shape[0]

    def sender_receiver_matrix(self) -> np.ndarray:
        """``out[i, j] = d(s_i, r_j)`` (cached).

        This is the dense n×n matrix — large-n spatial paths avoid it via
        ``lengths`` (diagonal only) and KD-tree candidate queries.
        """
        if self._sr is None:
            self._sr = self.metric.distance_submatrix(self.sender_idx, self.receiver_idx)
        return self._sr

    @property
    def lengths(self) -> np.ndarray:
        """``d(s_i, r_i)`` for every link (a copy — safe to mutate).

        Computed pairwise (never via the dense matrix) unless the matrix is
        already cached; the Euclidean per-pair expression matches the dense
        matrix entries bit for bit.
        """
        if self._lengths is None:
            if self._sr is not None:
                self._lengths = np.diagonal(self._sr).copy()
            else:
                xy = self.endpoint_coords()
                if xy is not None:
                    s_xy, r_xy = xy
                    diff = s_xy - r_xy
                    self._lengths = np.sqrt((diff * diff).sum(axis=-1))
                else:
                    self._lengths = np.diagonal(self.sender_receiver_matrix()).copy()
        return self._lengths.copy()

    def endpoint_coords(self) -> tuple[np.ndarray, np.ndarray] | None:
        """(sender, receiver) coordinate arrays when the metric is Euclidean;
        ``None`` otherwise (no spatial index possible)."""
        from repro.geometry.metric import EuclideanMetric

        if isinstance(self.metric, EuclideanMetric):
            return self.metric.coords[self.sender_idx], self.metric.coords[self.receiver_idx]
        return None

    def sender_sender_matrix(self) -> np.ndarray:
        return self.metric.distance_submatrix(self.sender_idx, self.sender_idx)

    def receiver_receiver_matrix(self) -> np.ndarray:
        return self.metric.distance_submatrix(self.receiver_idx, self.receiver_idx)

    def subset(self, link_ids: np.ndarray) -> "LinkSet":
        idx = np.asarray(link_ids, dtype=np.intp)
        return LinkSet(self.metric, self.sender_idx[idx], self.receiver_idx[idx])


def length_ordering(links: LinkSet, descending: bool = True) -> VertexOrdering:
    """Order links by length.

    Theorem 17 and the weighted machinery use *decreasing* length (longest
    link first = π-smallest); monotone power schemes of Proposition 15 use
    the same direction.
    """
    return VertexOrdering.by_key(links.lengths, descending=descending)


def random_links(
    n: int,
    extent: float = 1.0,
    length_range: tuple[float, float] = (0.01, 0.1),
    seed=None,
) -> LinkSet:
    """Random planar links: uniform senders, receivers at a uniform-length
    random angle (clipped into the extent square by resampling)."""
    lo, hi = length_range
    if not 0 < lo <= hi:
        raise ValueError("length_range must satisfy 0 < lo <= hi")
    rng = ensure_rng(seed)
    senders = np.empty((n, 2))
    receivers = np.empty((n, 2))
    for i in range(n):
        while True:
            s = rng.random(2) * extent
            ang = rng.uniform(0.0, 2.0 * np.pi)
            ln = rng.uniform(lo, hi)
            r = s + ln * np.array([np.cos(ang), np.sin(ang)])
            if 0.0 <= r[0] <= extent and 0.0 <= r[1] <= extent:
                senders[i] = s
                receivers[i] = r
                break
    coords = np.vstack([senders, receivers])
    metric = EuclideanMetric(coords)
    return LinkSet(metric, np.arange(n), np.arange(n, 2 * n))


def random_metric_links(n: int, seed=None, edge_probability: float = 0.25) -> LinkSet:
    """Links in a random shortest-path metric (general-metrics variant).

    Samples a metric on ``2n`` points and pairs point ``2i`` with ``2i+1``
    (re-pairing if sender equals receiver cannot happen: points are
    distinct indices).
    """
    from repro.geometry.metric import random_shortest_path_metric

    rng = ensure_rng(seed)
    metric = random_shortest_path_metric(2 * n, edge_probability, rng)
    perm = rng.permutation(2 * n)
    return LinkSet(metric, perm[:n], perm[n:])


def links_from_arrays(senders: np.ndarray, receivers: np.ndarray) -> LinkSet:
    """Build a Euclidean LinkSet directly from coordinate arrays."""
    s = np.asarray(senders, dtype=float)
    r = np.asarray(receivers, dtype=float)
    if s.shape != r.shape or s.ndim != 2 or s.shape[1] != 2:
        raise ValueError("senders/receivers must both have shape (n, 2)")
    n = s.shape[0]
    metric = EuclideanMetric(np.vstack([s, r]))
    return LinkSet(metric, np.arange(n), np.arange(n, 2 * n))


__all__.append("links_from_arrays")
