"""Disk graphs for transmitter scenarios (Section 4.1).

Each transmitter ``i`` sits at a point with transmission radius ``r_i``; two
transmitters conflict when their disks intersect (``d(i, j) ≤ r_i + r_j``).
Proposition 9 certifies ρ ≤ 5 for the *decreasing-radius* ordering, which
:func:`radius_ordering` produces.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import pairwise_distances, sample_uniform_points
from repro.geometry.spatial import disk_intersection_pairs, resolve_method
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.util.rng import ensure_rng

__all__ = [
    "disk_graph",
    "unit_disk_graph",
    "radius_ordering",
    "random_disk_instance",
    "DiskInstance",
]


def disk_graph(
    points: np.ndarray, radii: np.ndarray, method: str = "auto"
) -> ConflictGraph:
    """Disk intersection graph: edge iff ``d(i, j) ≤ r_i + r_j``.

    ``method`` selects the builder: ``"dense"`` computes the full distance
    matrix (O(n²)); ``"spatial"`` enumerates candidate pairs with a KD-tree
    and emits CSR adjacency directly (near-linear for constant-density
    instances); ``"auto"`` picks by the spatial-index n-threshold.  Both
    builders produce the identical edge set.
    """
    pts = np.asarray(points, dtype=float)
    r = np.asarray(radii, dtype=float)
    if r.shape != (pts.shape[0],):
        raise ValueError("radii must have one entry per point")
    if (r <= 0).any():
        raise ValueError("radii must be positive")
    if resolve_method(method, pts.shape[0]) == "spatial":
        us, vs = disk_intersection_pairs(pts, r)
        return ConflictGraph.from_edge_arrays(pts.shape[0], us, vs)
    dist = pairwise_distances(pts)
    adj = dist <= (r[:, None] + r[None, :])
    np.fill_diagonal(adj, False)
    return ConflictGraph.from_adjacency(adj)


def unit_disk_graph(
    points: np.ndarray, radius: float, method: str = "auto"
) -> ConflictGraph:
    """Unit-disk graph: edge iff ``d(i, j) ≤ 2 · radius``."""
    n = np.asarray(points).shape[0]
    return disk_graph(points, np.full(n, float(radius)), method=method)


def radius_ordering(radii: np.ndarray) -> VertexOrdering:
    """Decreasing-radius ordering π (Proposition 9's certificate).

    The π-smallest vertex has the largest disk, so every backward neighbor
    of ``v`` has radius ≥ r_v; at most 5 pairwise non-intersecting such
    disks can touch v's disk.
    """
    return VertexOrdering.by_key(np.asarray(radii, dtype=float), descending=True)


class DiskInstance:
    """A sampled disk-graph instance bundling geometry, graph, and ordering."""

    def __init__(
        self, points: np.ndarray, radii: np.ndarray, method: str = "auto"
    ) -> None:
        self.points = np.asarray(points, dtype=float)
        self.radii = np.asarray(radii, dtype=float)
        self.graph = disk_graph(self.points, self.radii, method=method)
        self.ordering = radius_ordering(self.radii)

    @property
    def n(self) -> int:
        return self.points.shape[0]


def random_disk_instance(
    n: int,
    extent: float = 1.0,
    radius_range: tuple[float, float] = (0.05, 0.15),
    seed=None,
    method: str = "auto",
) -> DiskInstance:
    """Uniform points with i.i.d. uniform radii in ``radius_range``."""
    lo, hi = radius_range
    if not 0 < lo <= hi:
        raise ValueError("radius_range must satisfy 0 < lo <= hi")
    rng = ensure_rng(seed)
    points = sample_uniform_points(n, extent, rng)
    radii = rng.uniform(lo, hi, size=n)
    return DiskInstance(points, radii, method=method)
