"""Geometric substrate: points, metrics, disks, and links."""

from repro.geometry.disks import (
    DiskInstance,
    disk_graph,
    radius_ordering,
    random_disk_instance,
    unit_disk_graph,
)
from repro.geometry.links import (
    LinkSet,
    length_ordering,
    links_from_arrays,
    random_links,
    random_metric_links,
)
from repro.geometry.metric import (
    EuclideanMetric,
    MatrixMetric,
    MetricSpace,
    random_shortest_path_metric,
)
from repro.geometry.points import (
    cross_distances,
    pairwise_distances,
    sample_clustered_points,
    sample_uniform_points,
)
from repro.geometry.spatial import (
    SPATIAL_INDEX_MIN_N,
    candidate_pairs,
    cross_candidate_pairs,
    disk_intersection_pairs,
    pair_distances,
    resolve_method,
)

__all__ = [
    "DiskInstance",
    "disk_graph",
    "unit_disk_graph",
    "radius_ordering",
    "random_disk_instance",
    "LinkSet",
    "length_ordering",
    "random_links",
    "random_metric_links",
    "links_from_arrays",
    "MetricSpace",
    "EuclideanMetric",
    "MatrixMetric",
    "random_shortest_path_metric",
    "sample_uniform_points",
    "sample_clustered_points",
    "pairwise_distances",
    "cross_distances",
    "SPATIAL_INDEX_MIN_N",
    "candidate_pairs",
    "cross_candidate_pairs",
    "disk_intersection_pairs",
    "pair_distances",
    "resolve_method",
]
