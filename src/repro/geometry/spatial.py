"""Spatial-index neighbor queries for metro-scale graph construction.

Every geometric model in Section 4 (disk, protocol, distance-2, physical)
declares conflicts between *near* pairs: disks intersect, guard zones are
violated, interference exceeds a cutoff.  The dense builders compute a full
n×n distance matrix — O(n²) time and memory — although the true edge set is
locally bounded and therefore near-linear in n for constant-density
deployments.  The helpers here use :class:`scipy.spatial.cKDTree` range
queries to enumerate only candidate pairs within a conservative radius;
callers then apply their *exact* predicate to the candidates.

Parity contract: candidate generation is a strict superset of the true edge
set (the query radius upper-bounds every pair-specific threshold), and the
exact filters recompute distances with the same NumPy expressions as the
dense builders — same subtraction, square, sum, sqrt — so the surviving
edge set is bit-identical to the dense path, not merely approximately equal
(pinned by ``tests/test_spatial_parity.py``).

``SPATIAL_INDEX_MIN_N`` is the n-threshold heuristic shared by all builders
with ``method="auto"``: below it the dense kernels win (one vectorized
broadcast beats tree construction), above it the KD-tree path wins and the
dense matrix would start to dominate memory.  The crossover was measured on
the BENCH_scale.json workloads; it is deliberately conservative (dense is
never *wrong*, only slower).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "SPATIAL_INDEX_MIN_N",
    "resolve_method",
    "candidate_pairs",
    "cross_candidate_pairs",
    "pair_distances",
    "disk_intersection_pairs",
]

SPATIAL_INDEX_MIN_N = 256


def resolve_method(method: str, n: int, supported: bool = True) -> str:
    """Resolve ``method in {"auto", "dense", "spatial"}`` to a concrete one.

    ``supported=False`` (e.g. links in a non-Euclidean metric, where there
    are no coordinates to index) forces the dense path under ``auto`` and
    raises for an explicit ``spatial`` request.
    """
    if method not in ("auto", "dense", "spatial"):
        raise ValueError(f"method must be 'auto', 'dense', or 'spatial', got {method!r}")
    if method == "spatial" and not supported:
        raise ValueError("spatial indexing needs Euclidean coordinates")
    if method == "auto":
        return "spatial" if supported and n >= SPATIAL_INDEX_MIN_N else "dense"
    return method


def candidate_pairs(points: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
    """All pairs ``i < j`` with ``d(points_i, points_j) ≤ radius``.

    Returns two index arrays (possibly empty).  The radius is inclusive, so
    any predicate of the form ``d ≤ r_ij`` with ``r_ij ≤ radius`` sees every
    satisfying pair among the candidates.
    """
    pts = np.asarray(points, dtype=float)
    if pts.shape[0] < 2:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=float(radius), output_type="ndarray")
    if pairs.size == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    return pairs[:, 0].astype(np.intp), pairs[:, 1].astype(np.intp)


def cross_candidate_pairs(
    a: np.ndarray, b: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """All (i, j) with ``d(a_i, b_j) ≤ radius`` between two point sets.

    Used for directed predicates such as the protocol model's guard zones,
    where the candidate relation pairs receivers of one link with senders of
    another.  Returns (i_idx into ``a``, j_idx into ``b``).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape[0] == 0 or b.shape[0] == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    tree_a = cKDTree(a)
    tree_b = cKDTree(b)
    coo = tree_a.sparse_distance_matrix(tree_b, float(radius), output_type="coo_matrix")
    return coo.row.astype(np.intp), coo.col.astype(np.intp)


def pair_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-pair Euclidean distances, computed with the exact NumPy ops of
    :func:`repro.geometry.points.pairwise_distances` so comparisons against
    thresholds resolve identically to the dense builders."""
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    return np.sqrt((diff * diff).sum(axis=-1))


def disk_intersection_pairs(
    points: np.ndarray, radii: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pairs ``i < j`` whose disks intersect: ``d(i, j) ≤ r_i + r_j``.

    Candidates come from a KD-tree query at ``2 · max(r)`` (an upper bound
    on every ``r_i + r_j``); the exact per-pair test then reproduces the
    dense builder's comparison bit for bit.
    """
    pts = np.asarray(points, dtype=float)
    r = np.asarray(radii, dtype=float)
    us, vs = candidate_pairs(pts, 2.0 * float(r.max(initial=0.0)))
    if us.size == 0:
        return us, vs
    keep = pair_distances(pts[us], pts[vs]) <= r[us] + r[vs]
    return us[keep], vs[keep]
