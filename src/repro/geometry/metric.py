"""Metric spaces backing the physical (SINR) model.

The physical model (Section 4.3) places network nodes in a metric space.
Two concrete metrics are provided:

* :class:`EuclideanMetric` — points in the plane; with path-loss exponent
  α > 2 this is a *fading metric* (doubling dimension 2 < α), the setting
  of Theorem 17's O(√k log n) bound.
* :class:`MatrixMetric` — an arbitrary finite metric given by a distance
  matrix; used for the "general metrics" variant (O(√k log² n)).
  :func:`random_shortest_path_metric` builds such metrics with high
  doubling dimension from random-graph shortest paths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.geometry.points import cross_distances
from repro.util.rng import ensure_rng

__all__ = [
    "MetricSpace",
    "EuclideanMetric",
    "MatrixMetric",
    "random_shortest_path_metric",
]


class MetricSpace(ABC):
    """A finite metric on points indexed ``0..size-1``."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of points."""

    @abstractmethod
    def distance_submatrix(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Dense matrix ``out[a, b] = d(rows[a], cols[b])``."""

    def d(self, i: int, j: int) -> float:
        rows = np.asarray([i], dtype=np.intp)
        cols = np.asarray([j], dtype=np.intp)
        return float(self.distance_submatrix(rows, cols)[0, 0])

    def check_triangle_inequality(self, tolerance: float = 1e-9) -> bool:
        """Exhaustive triangle-inequality check (tests / small spaces only)."""
        idx = np.arange(self.size, dtype=np.intp)
        full = self.distance_submatrix(idx, idx)
        for m in range(self.size):
            via = full[:, m][:, None] + full[m, :][None, :]
            if (full > via + tolerance).any():
                return False
        return True


class EuclideanMetric(MetricSpace):
    """Points in R², distances computed on demand (vectorized)."""

    def __init__(self, coords: np.ndarray) -> None:
        arr = np.asarray(coords, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("coords must have shape (m, 2)")
        self.coords = arr

    @property
    def size(self) -> int:
        return self.coords.shape[0]

    def distance_submatrix(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return cross_distances(self.coords[rows], self.coords[cols])


class MatrixMetric(MetricSpace):
    """A metric given explicitly by a symmetric distance matrix."""

    def __init__(self, matrix: np.ndarray, validate: bool = True) -> None:
        d = np.asarray(matrix, dtype=float)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ValueError("distance matrix must be square")
        if validate:
            if (d < 0).any():
                raise ValueError("distances must be non-negative")
            if not np.allclose(d, d.T):
                raise ValueError("distance matrix must be symmetric")
            if not np.allclose(np.diagonal(d), 0.0):
                raise ValueError("self-distances must be zero")
        self.matrix = d

    @property
    def size(self) -> int:
        return self.matrix.shape[0]

    def distance_submatrix(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.matrix[np.ix_(np.asarray(rows), np.asarray(cols))]


def random_shortest_path_metric(
    m: int,
    edge_probability: float = 0.3,
    seed=None,
) -> MatrixMetric:
    """Shortest-path metric of a connected G(m, p) with uniform edge lengths.

    Shortest-path metrics of sparse random graphs have large doubling
    dimension, exercising the "general metrics" branch of Theorem 17.
    """
    import networkx as nx

    rng = ensure_rng(seed)
    for _ in range(100):
        g = nx.gnp_random_graph(m, edge_probability, seed=int(rng.integers(2**31)))
        if nx.is_connected(g):
            break
    else:  # pragma: no cover - p large enough in practice
        raise RuntimeError("failed to sample a connected graph")
    for u, v in g.edges():
        g[u][v]["weight"] = float(rng.uniform(0.5, 1.5))
    lengths = dict(nx.all_pairs_dijkstra_path_length(g))
    matrix = np.zeros((m, m))
    for i in range(m):
        for j in range(m):
            matrix[i, j] = lengths[i][j]
    matrix = (matrix + matrix.T) / 2.0
    return MatrixMetric(matrix)
