"""repro — Approximation Algorithms for Secondary Spectrum Auctions.

A full reproduction of Hoefer, Kesselheim, Vöcking (SPAA 2011,
arXiv:1007.5032): combinatorial auctions with (edge-weighted) conflict
graphs, the inductive-independence LP relaxation, randomized/derandomized
rounding, every Section-4 interference model, and the Lavi–Swamy truthful
mechanism.

Quick start::

    from repro import (
        AuctionProblem, SpectrumAuctionSolver,
        protocol_model, random_links, random_xor_valuations,
    )

    links = random_links(30, seed=0)
    structure = protocol_model(links, delta=1.0)
    vals = random_xor_valuations(30, k=4, seed=1)
    problem = AuctionProblem(structure, 4, vals)
    result = SpectrumAuctionSolver(problem).solve(seed=2)
    print(result.welfare, result.feasible)

Fleets of auctions go through the batch engine instead of a solver loop::

    from repro import BatchAuctionEngine
    batch = BatchAuctionEngine().solve_many(problems, seed=3)

Long-lived request serving goes through the auction service
(:mod:`repro.service`): register scenes, submit requests (or replay an
open-loop traffic trace), read the metrics::

    from repro import AuctionService
    service = AuctionService()
    scene_id = service.register_scene(structure)

See DESIGN.md for the system inventory, the engine and service
architecture, and the experiment index; BENCH_engine.json,
BENCH_scale.json, and BENCH_service.json record the performance
baselines that CI's regression gate enforces.
"""

from repro.core import (
    Allocation,
    AsymmetricAuctionLP,
    AsymmetricAuctionProblem,
    AuctionLP,
    AuctionProblem,
    SolverResult,
    SpectrumAuctionSolver,
    derandomize_rounding,
    greedy_channel_allocation,
    make_fully_feasible,
    round_asymmetric,
    round_unweighted,
    round_weighted,
    social_welfare,
    solve_exact,
    solve_with_column_generation,
)
from repro.geometry import (
    LinkSet,
    random_disk_instance,
    random_links,
    random_metric_links,
)
from repro.graphs import (
    ConflictGraph,
    VertexOrdering,
    WeightedConflictGraph,
    inductive_independence_number,
    rho_of_ordering,
    weighted_rho_of_ordering,
)
from repro.interference import (
    PhysicalModel,
    civilized_distance2_model,
    disk_transmitter_model,
    distance2_coloring_model,
    distance2_matching_model,
    ieee80211_model,
    kesselheim_power_assignment,
    linear_power,
    mean_power,
    min_power_assignment,
    physical_model_structure,
    power_control_structure,
    protocol_model,
    uniform_power,
)
from repro.engine import (
    BatchAuctionEngine,
    BatchResult,
    CompiledAuction,
    compile_auction,
    compile_structure,
)
from repro.io import load_problem, problem_from_dict, problem_to_dict, save_problem
from repro.service import AuctionRequest, AuctionService, SceneRegistry
from repro.mechanism import TruthfulMechanism, decompose_lp_solution, vcg_payments
from repro.valuations import (
    AdditiveValuation,
    BudgetedAdditiveValuation,
    CappedAdditiveValuation,
    ExplicitValuation,
    SingleMindedValuation,
    UnitDemandValuation,
    Valuation,
    XORValuation,
    random_additive_valuations,
    random_mixed_valuations,
    random_xor_valuations,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "AuctionProblem",
    "Allocation",
    "social_welfare",
    "SpectrumAuctionSolver",
    "SolverResult",
    "BatchAuctionEngine",
    "BatchResult",
    "CompiledAuction",
    "compile_auction",
    "compile_structure",
    "AuctionService",
    "AuctionRequest",
    "SceneRegistry",
    "AuctionLP",
    "solve_with_column_generation",
    "solve_exact",
    "round_unweighted",
    "round_weighted",
    "make_fully_feasible",
    "derandomize_rounding",
    "greedy_channel_allocation",
    "AsymmetricAuctionProblem",
    "AsymmetricAuctionLP",
    "round_asymmetric",
    "ConflictGraph",
    "WeightedConflictGraph",
    "VertexOrdering",
    "inductive_independence_number",
    "rho_of_ordering",
    "weighted_rho_of_ordering",
    "LinkSet",
    "random_links",
    "random_metric_links",
    "random_disk_instance",
    "protocol_model",
    "ieee80211_model",
    "disk_transmitter_model",
    "distance2_coloring_model",
    "distance2_matching_model",
    "civilized_distance2_model",
    "PhysicalModel",
    "physical_model_structure",
    "power_control_structure",
    "uniform_power",
    "linear_power",
    "mean_power",
    "kesselheim_power_assignment",
    "min_power_assignment",
    "Valuation",
    "XORValuation",
    "ExplicitValuation",
    "SingleMindedValuation",
    "AdditiveValuation",
    "UnitDemandValuation",
    "CappedAdditiveValuation",
    "BudgetedAdditiveValuation",
    "random_xor_valuations",
    "random_additive_valuations",
    "random_mixed_valuations",
    "TruthfulMechanism",
    "decompose_lp_solution",
    "vcg_payments",
    "save_problem",
    "load_problem",
    "problem_to_dict",
    "problem_from_dict",
]
