"""Scaled fractional VCG payments (Section 5 / Lavi–Swamy).

The allocation rule of the mechanism is "sample from the decomposition of
x*/α", whose expected bidder-v value is exactly ``v's LP share / α``.
Charging 1/α times the *fractional* VCG payments then makes the mechanism
truthful in expectation:

    pay_v = ( LPopt(without v) − (LPopt − v's LP contribution) ) / α.

Both terms are LP solves of the same relaxation, so payments inherit the
LP's polynomial solvability.  Payments are clipped at 0 from below (they
are provably ≥ 0 for packing problems; the clip only guards numerics) and
never exceed v's expected value (individual rationality), which tests
verify.

Two evaluation strategies for the n "LP without bidder v" terms:

* ``method="warm"`` (the default when the persistent HiGHS bindings are
  available) — one model load, then warm re-solves.  Removing bidder v's
  columns changes the optimal *value* exactly as zeroing their objective
  coefficients does (zero-cost columns never help and never hurt a packing
  LP), so each probe is ``changeColsCost(v's columns → 0)`` + a dual-
  simplex restart from the previous optimal basis + a cost restore —
  instead of rebuilding an ``AuctionLP`` and cold-solving ``linprog`` per
  bidder.  Optimal LP *values* are unique, so unlike warm-started
  *pricing* this reuse is safe wherever payments are consumed; the floats
  can differ from the cold path only within solver tolerance.

  Before probing, bidders are screened with the dual bound: dropping v
  keeps ``(y, z without z_v)`` feasible for the reduced dual, so
  ``LPopt(without v) ≤ LPopt − z_v`` and the externality is at most
  ``contribution_v − z_v`` — when that is ≤ 0 the payment is provably
  zero and the probe is skipped (typically a third of all bidders on the
  metro workloads).  ``lp_without`` records the dual upper bound for
  screened bidders.
* ``method="reference"`` — the seed-era per-bidder rebuild, kept as the
  benchmark baseline and binding-free fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP, AuctionLPSolution

__all__ = ["FractionalVCG", "vcg_payments"]

VCG_METHODS = ("auto", "warm", "reference")


@dataclass
class FractionalVCG:
    payments: np.ndarray  # per bidder, already scaled by 1/α
    lp_value: float
    lp_without: np.ndarray  # LPopt with each bidder removed
    contributions: np.ndarray  # each bidder's share of the LP optimum


def _lp_value_without(problem: AuctionProblem, lp: AuctionLP, vertex: int) -> float:
    """LP optimum with ``vertex``'s columns removed (valuation zeroed)."""
    cols = [c for c in lp.columns if c.vertex != vertex]
    if not cols:
        return 0.0
    sub = AuctionLP(problem, columns=cols)
    return sub.solve().value


def _warm_values_without(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    probe_vertices: list[int],
    compiled_structure=None,
) -> dict[int, float] | None:
    """All "LP without v" optima via cost-zeroing warm re-solves.

    Returns ``None`` when the persistent backend is unavailable (callers
    fall back to the reference per-bidder rebuild).
    """
    from repro.engine.compiled import CompiledAuction, compile_structure
    from repro.engine.highs import highs_core, new_highs_instance, pass_colwise_model

    core = highs_core()
    if core is None:  # pragma: no cover - binding-dependent
        return None
    if not probe_vertices:  # everything screened: no model to build
        return {}
    highs = new_highs_instance()
    compiled = CompiledAuction(
        problem,
        structure=compiled_structure or compile_structure(problem.structure),
        columns=list(solution.columns),
    )
    a, b, c = compiled.matrices_csc()
    m, ncol = a.shape
    cost = -c  # HiGHS minimizes
    pass_colwise_model(
        highs,
        a,
        cost,
        np.zeros(ncol),
        np.full(ncol, np.inf),
        np.full(m, -np.inf),
        b,
    )
    highs.run()  # establish the full-LP optimal basis once
    if highs.getModelStatus() != core.HighsModelStatus.kOptimal:
        raise RuntimeError("VCG base LP solve failed")

    verts = np.fromiter(
        (col.vertex for col in solution.columns), dtype=np.intp, count=ncol
    )
    out: dict[int, float] = {}
    for v in probe_vertices:
        idx = np.flatnonzero(verts == v).astype(np.int32)
        if idx.size == 0:
            out[v] = float(solution.value)
            continue
        highs.changeColsCost(idx.size, idx, np.zeros(idx.size))
        highs.run()
        status = highs.getModelStatus()
        if status != core.HighsModelStatus.kOptimal:
            raise RuntimeError(
                f"VCG probe for bidder {v} failed: "
                f"{highs.modelStatusToString(status)}"
            )
        out[v] = float(-highs.getInfo().objective_function_value)
        highs.changeColsCost(idx.size, idx, cost[idx])
    return out


def vcg_payments(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    alpha: float,
    method: str = "auto",
    compiled_structure=None,
) -> FractionalVCG:
    """Compute scaled fractional VCG payments for every bidder.

    ``method="auto"`` uses the warm-started probe loop when the persistent
    HiGHS backend is available and the reference rebuild otherwise;
    ``"warm"`` / ``"reference"`` force one path.  ``compiled_structure``
    forwards an existing engine compilation to the warm path.
    """
    if method not in VCG_METHODS:
        raise ValueError(f"method must be one of {VCG_METHODS}, got {method!r}")
    n = problem.n
    contributions = np.zeros(n)
    for col, x in solution.support():
        contributions[col.vertex] += col.value * x
    probes = [v for v in range(n) if contributions[v] > 0]
    lp_without = np.full(n, float(solution.value))
    payments = np.zeros(n)

    warm_values: dict[int, float] | None = None
    screened: set[int] = set()
    if method in ("auto", "warm"):
        # dual screening: externality ≤ contribution_v − z_v, so bidders at
        # or below zero provably pay nothing — skip the solve, record the
        # dual bound in lp_without
        screened = {
            v for v in probes if contributions[v] - float(solution.z[v]) <= 1e-9
        }
        to_probe = [v for v in probes if v not in screened]
        warm_values = _warm_values_without(
            problem, solution, to_probe, compiled_structure=compiled_structure
        )
        if warm_values is None and method == "warm":  # pragma: no cover
            raise RuntimeError(
                "persistent HiGHS backend unavailable; use method='reference'"
            )
    if warm_values is None:
        screened = set()
        lp = AuctionLP(problem, columns=list(solution.columns))
        warm_values = {v: _lp_value_without(problem, lp, v) for v in probes}

    for v in probes:
        if v in screened:
            lp_without[v] = float(solution.value) - float(solution.z[v])
            payments[v] = 0.0  # provably zero: externality ≤ contribution − z_v
            continue
        lp_without[v] = warm_values[v]
        externality = lp_without[v] - (solution.value - contributions[v])
        payments[v] = max(0.0, externality) / alpha
    return FractionalVCG(
        payments=payments,
        lp_value=solution.value,
        lp_without=lp_without,
        contributions=contributions,
    )
