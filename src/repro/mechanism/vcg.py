"""Scaled fractional VCG payments (Section 5 / Lavi–Swamy).

The allocation rule of the mechanism is "sample from the decomposition of
x*/α", whose expected bidder-v value is exactly ``v's LP share / α``.
Charging 1/α times the *fractional* VCG payments then makes the mechanism
truthful in expectation:

    pay_v = ( LPopt(without v) − (LPopt − v's LP contribution) ) / α.

Both terms are LP solves of the same relaxation, so payments inherit the
LP's polynomial solvability.  Payments are clipped at 0 from below (they
are provably ≥ 0 for packing problems; the clip only guards numerics) and
never exceed v's expected value (individual rationality), which tests
verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP, AuctionLPSolution

__all__ = ["FractionalVCG", "vcg_payments"]


@dataclass
class FractionalVCG:
    payments: np.ndarray  # per bidder, already scaled by 1/α
    lp_value: float
    lp_without: np.ndarray  # LPopt with each bidder removed
    contributions: np.ndarray  # each bidder's share of the LP optimum


def _lp_value_without(problem: AuctionProblem, lp: AuctionLP, vertex: int) -> float:
    """LP optimum with ``vertex``'s columns removed (valuation zeroed)."""
    cols = [c for c in lp.columns if c.vertex != vertex]
    if not cols:
        return 0.0
    sub = AuctionLP(problem, columns=cols)
    return sub.solve().value


def vcg_payments(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    alpha: float,
) -> FractionalVCG:
    """Compute scaled fractional VCG payments for every bidder."""
    n = problem.n
    contributions = np.zeros(n)
    for col, x in solution.support():
        contributions[col.vertex] += col.value * x
    lp = AuctionLP(problem, columns=list(solution.columns))
    lp_without = np.zeros(n)
    payments = np.zeros(n)
    for v in range(n):
        if contributions[v] <= 0:
            # Bidders with no LP share pay nothing and impose no externality
            # under this solution; skip the LP solve.
            lp_without[v] = solution.value
            continue
        lp_without[v] = _lp_value_without(problem, lp, v)
        externality = lp_without[v] - (solution.value - contributions[v])
        payments[v] = max(0.0, externality) / alpha
    return FractionalVCG(
        payments=payments,
        lp_value=solution.value,
        lp_without=lp_without,
        contributions=contributions,
    )
