"""Lavi–Swamy decomposition (Section 5).

Writes the scaled LP optimum ``x*/α`` as a convex combination of feasible
*integral* allocations.  Column generation over the decomposition LP:

* master (covering form):  min Σ_l λ_l  s.t.  Σ_l λ_l·𝟙[S_l gives v bundle T]
  ≥ x*_{v,T}/α for every support pair, λ ≥ 0;
* pricing: the master's duals ``w ≥ 0`` act as *adjusted valuations*; the
  approximation algorithm (LP re-solve under w + derandomized rounding,
  + Algorithm 3 for weighted graphs) returns an integral allocation of
  w-value ≥ LPopt_w/α ≥ w·x*/α = α·μ/α = μ, so whenever the master optimum
  μ exceeds 1 a violated dual constraint — a new pool allocation — is found.
  This is exactly how the paper "verifies the integrality gap";
* termination: μ ≤ 1.  The deficit 1 − μ goes to the empty allocation, and
  per-pair *keep probabilities* shave the ≥ down to exact equality, so the
  sampled allocation satisfies  E[𝟙(v gets T)] = x*_{v,T}/α  exactly —
  the property the truthfulness proof needs.

The paper's "slight extension" of Lavi–Swamy is reproduced faithfully: the
ILP behind LP (1)/(4) is *infeasible* (integer LP points may violate actual
channel feasibility); what the decomposition uses is only that the
algorithm outputs **feasible** allocations whose value is within α of the
*fractional* optimum, which our rounding algorithms provide.

Three implementations of the column-generation loop coexist:

* ``pricing="approx"`` (default) — the engine-compiled hot path.  The
  support columns are compiled once into a
  :class:`~repro.engine.compiled.CompiledAuction` (shared structure
  compilation, vectorized CSC assembly); each pricing iteration re-solves
  that matrix on the persistent HiGHS backend with a new objective and
  rounds with the vectorized derandomization kernels.  Solves are *cold*
  (model re-passed, no basis reuse), which is what keeps every pricing
  vertex — and therefore the whole decomposition: pool, weights, keep
  probabilities, samples — bit-identical to ``"reference"``
  (pinned by ``tests/test_mechanism_parity.py``).
* ``pricing="warm"`` — maximum throughput: pricing re-solves mutate only
  the objective of the loaded model (``changeColsCost`` + previous-basis
  simplex restart) and the master runs on a persistent incremental-column
  HiGHS instance (:class:`_IncrementalMaster`).  Both return optimal
  solutions, but on the degenerate LPs of the decomposition possibly a
  different optimal vertex / dual than a cold solve — so the pool can
  legitimately differ from the reference while carrying the *same* exact
  marginals.  Like the engine's ``lp_warm_start``, this profile is opt-in
  and never used where bit-parity is pinned.
* ``pricing="reference"`` — the seed-era loop kept verbatim (fresh
  ``AuctionLP`` build + ``linprog`` per iteration): the baseline
  ``BENCH_mechanism.json`` measures against, and the parity anchor.

``pricing="exact"`` prices with the MILP as before (small instances at any
α above their true gap).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.core.auction import Allocation, AuctionProblem
from repro.core.auction_lp import AuctionLP, AuctionLPSolution, Column
from repro.core.conflict_resolution import make_fully_feasible
from repro.core.derandomize import derandomize_rounding
from repro.util.rng import ensure_rng

__all__ = ["DecompositionResult", "decompose_lp_solution", "default_alpha"]

PRICING_MODES = ("approx", "warm", "exact", "reference")


def default_alpha(problem: AuctionProblem) -> float:
    """The verified integrality gap: 8√kρ, ×2⌈log₂ n⌉ for weighted graphs."""
    return problem.approximation_bound()


@dataclass
class DecompositionResult:
    """A convex combination of feasible allocations matching x*/α exactly."""

    problem: AuctionProblem
    allocations: list[Allocation]
    weights: np.ndarray  # convex weights over `allocations` (sum ≤ 1;
    # the remainder is the empty allocation)
    target: dict[tuple[int, frozenset[int]], float]  # x*_{v,T}/α
    keep_probability: dict[tuple[int, int, frozenset[int]], float]
    alpha: float
    iterations: int
    master_value: float

    @property
    def empty_weight(self) -> float:
        return float(max(0.0, 1.0 - self.weights.sum()))

    def pair_mass(self) -> dict[tuple[int, frozenset[int]], float]:
        """E[𝟙(v gets T)] after keep-probabilities — must equal `target`."""
        mass: dict[tuple[int, frozenset[int]], float] = {k: 0.0 for k in self.target}
        for li, (alloc, lam) in enumerate(zip(self.allocations, self.weights)):
            for v, bundle in alloc.items():
                key = (v, bundle)
                keep = self.keep_probability.get((li, v, bundle), 1.0)
                if key in mass:
                    mass[key] += float(lam) * keep
        return mass

    def expected_welfare(self) -> float:
        """Σ target·b — equals b(x*)/α by construction."""
        return float(
            sum(
                self.problem.valuations[v].value(bundle) * m
                for (v, bundle), m in self.target.items()
            )
        )

    def sample(self, rng=None) -> Allocation:
        """Draw an allocation: pick a pool member by weight, then apply the
        per-pair keep probabilities (dropping a bundle keeps feasibility)."""
        rng = ensure_rng(rng)
        u = rng.random()
        acc = 0.0
        chosen = -1
        for li, lam in enumerate(self.weights):
            acc += float(lam)
            if u < acc:
                chosen = li
                break
        if chosen < 0:
            return {}
        out: Allocation = {}
        for v, bundle in self.allocations[chosen].items():
            keep = self.keep_probability.get((chosen, v, bundle), 1.0)
            if keep >= 1.0 or rng.random() < keep:
                out[v] = bundle
        return out


def _adjusted_problem(
    problem: AuctionProblem, adjusted_cols: list[Column]
) -> AuctionProblem:
    """The problem under the adjusted valuations (one bid per support pair,
    duplicates keep the max) — what the derandomized rounding maximizes."""
    from repro.valuations.explicit import ExplicitValuation

    n = problem.n
    bids: list[dict[frozenset[int], float]] = [dict() for _ in range(n)]
    for col in adjusted_cols:
        if col.value > 0:
            prev = bids[col.vertex].get(col.bundle, 0.0)
            bids[col.vertex][col.bundle] = max(prev, col.value)
    return AuctionProblem(
        structure=problem.structure,
        k=problem.k,
        valuations=[ExplicitValuation(problem.k, b) for b in bids],
    )


def _round_adjusted(
    problem: AuctionProblem,
    adjusted_cols: list[Column],
    x: np.ndarray,
    value: float,
    y: np.ndarray,
    z: np.ndarray,
) -> Allocation:
    """Derandomized rounding (+ Algorithm 3) under adjusted valuations —
    the shared back half of both pricing oracles."""
    solution = AuctionLPSolution(
        columns=adjusted_cols, x=x, value=value, y=y, z=z
    )
    adj_problem = _adjusted_problem(problem, adjusted_cols)
    result = derandomize_rounding(adj_problem, solution)
    allocation = result.allocation
    if problem.is_weighted:
        resolution = make_fully_feasible(adj_problem, allocation)
        allocation = resolution.allocation
    return dict(allocation)


def _integral_allocation_for(
    problem: AuctionProblem,
    lp: AuctionLP,
    objective: np.ndarray,
) -> Allocation:
    """The reference pricing oracle: rebuild LP (1)/(4) and cold-solve it
    under the adjusted valuations `objective` (one value per LP column)."""
    a, b, _ = lp.build()
    from repro.core.lp import solve_packing_lp

    sol = solve_packing_lp(objective, a, b)
    n, k = problem.n, problem.k
    adjusted_cols = [
        Column(col.vertex, col.bundle, float(obj))
        for col, obj in zip(lp.columns, objective)
    ]
    return _round_adjusted(
        problem,
        adjusted_cols,
        sol.x,
        sol.value,
        sol.duals[: n * k].reshape(n, k),
        sol.duals[n * k :],
    )


class _CompiledPricer:
    """The pricing oracle on the engine: compile once, re-price many times.

    The support columns' constraint matrix never changes across pricing
    iterations — only the objective (the master's duals ``w``) does — so
    the matrix is assembled once through :class:`CompiledAuction` (shared
    structure compilation, vectorized CSC assembly).  With ``warm=True``
    every solve after the first goes through the warm-start path of
    :func:`~repro.engine.highs.solve_packing_lp_fast`: ``changeColsCost``
    on the loaded model plus a previous-basis simplex restart.  With
    ``warm=False`` each solve re-passes the model cold — bit-identical to
    the reference oracle's ``linprog`` (only the scipy/AuctionLP rebuild
    overhead is gone).
    """

    def __init__(
        self,
        problem: AuctionProblem,
        columns: list[Column],
        warm: bool = False,
        compiled_structure=None,
    ) -> None:
        from repro.engine.compiled import CompiledAuction, compile_structure

        self._problem = problem
        self._columns = columns
        compiled = CompiledAuction(
            problem,
            structure=compiled_structure or compile_structure(problem.structure),
            columns=columns,
        )
        self._a, self._b, _ = compiled.matrices_csc()
        self._warm_key = ("lavi-swamy-pricing", id(self)) if warm else None

    def price(self, objective: np.ndarray) -> Allocation:
        from repro.engine.highs import solve_packing_lp_fast

        sol = solve_packing_lp_fast(
            objective,
            self._a,
            self._b,
            warm_key=self._warm_key,
            solver="simplex",
        )
        n, k = self._problem.n, self._problem.k
        adjusted_cols = [
            Column(col.vertex, col.bundle, float(obj))
            for col, obj in zip(self._columns, objective)
        ]
        return _round_adjusted(
            self._problem,
            adjusted_cols,
            sol.x,
            sol.value,
            sol.duals[: n * k].reshape(n, k),
            sol.duals[n * k :],
        )


def _solve_master(
    pool: list[Allocation],
    pairs: list[tuple[int, frozenset[int]]],
    r: np.ndarray,
) -> tuple[np.ndarray, float, np.ndarray]:
    """min Σλ s.t. Σ_l λ_l 𝟙[pair ∈ l] ≥ r; returns (λ, μ, duals w ≥ 0).

    The reference master: rebuilt from the whole pool and cold-solved with
    ``linprog`` every iteration (also the fallback when the private HiGHS
    bindings are unavailable).
    """
    a = _master_matrix(pool, pairs)
    res = linprog(
        np.ones(len(pool)),
        A_ub=-a,
        b_ub=-r,
        bounds=(0, None),
        method="highs",
    )
    if res.status != 0:
        raise RuntimeError(f"decomposition master failed: {res.message}")
    duals = np.asarray(res.ineqlin.marginals, dtype=float)
    w = np.maximum(-duals, 0.0)  # duals of ≥-rows in min problem are ≤ 0
    return np.asarray(res.x, dtype=float), float(res.fun), w


def _master_matrix(
    pool: list[Allocation], pairs: list[tuple[int, frozenset[int]]]
) -> sp.csr_matrix:
    pair_index = {p: i for i, p in enumerate(pairs)}
    rows, cols, data = [], [], []
    for li, alloc in enumerate(pool):
        for v, bundle in alloc.items():
            idx = pair_index.get((v, bundle))
            if idx is not None:
                rows.append(idx)
                cols.append(li)
                data.append(1.0)
    return sp.coo_matrix((data, (rows, cols)), shape=(len(pairs), len(pool))).tocsr()


def _solve_master_fast(
    pool: list[Allocation],
    pairs: list[tuple[int, frozenset[int]]],
    r: np.ndarray,
) -> tuple[np.ndarray, float, np.ndarray]:
    """The reference master on the persistent HiGHS backend.

    Same model ``linprog`` would pass (min Σλ as max −Σλ over −Aλ ≤ −r),
    cold-solved — primal, value, and duals are bit-identical to
    :func:`_solve_master`; only the scipy call overhead is gone.
    """
    from repro.engine.highs import fast_backend_available, solve_packing_lp_fast

    if not fast_backend_available():  # pragma: no cover - binding-dependent
        return _solve_master(pool, pairs, r)
    a = _master_matrix(pool, pairs)
    sol = solve_packing_lp_fast(
        -np.ones(len(pool)), sp.csc_matrix(-a), -r, solver="simplex"
    )
    return sol.x, float(-sol.value), sol.duals


class _IncrementalMaster:
    """The decomposition master on a persistent incremental-column HiGHS.

    Rows (one ≥-covering constraint per support pair) are fixed at
    construction; each iteration only *appends* the pricing oracle's new
    allocations via ``addCols`` and re-solves from the previous basis —
    the classic column-generation warm start — instead of rebuilding the
    LP from the whole pool and cold-solving it.  Falls back to the
    ``linprog`` rebuild when the private bindings are missing.
    """

    def __init__(
        self, pairs: list[tuple[int, frozenset[int]]], r: np.ndarray
    ) -> None:
        from repro.engine.highs import (
            highs_core,
            new_highs_instance,
            pass_colwise_model,
        )

        self._pairs = pairs
        self._pair_index = {p: i for i, p in enumerate(pairs)}
        self._r = np.asarray(r, dtype=float)
        self._added = 0
        self._core = highs_core()
        self._highs = new_highs_instance()
        if self._highs is None:
            return
        m = len(pairs)
        empty = sp.csc_matrix(
            (np.empty(0), np.empty(0, np.int32), np.zeros(1, np.int32)),
            shape=(m, 0),
        )
        pass_colwise_model(
            self._highs,
            empty,
            np.empty(0),
            np.empty(0),
            np.empty(0),
            self._r,
            np.full(m, np.inf),
        )

    def _append(self, allocs: list[Allocation]) -> None:
        starts: list[int] = []
        indices: list[int] = []
        for alloc in allocs:
            starts.append(len(indices))
            covered = sorted(
                self._pair_index[key]
                for key in ((v, bundle) for v, bundle in alloc.items())
                if key in self._pair_index
            )
            indices.extend(covered)
        num = len(allocs)
        self._highs.addCols(
            num,
            np.ones(num),
            np.zeros(num),
            np.full(num, np.inf),
            len(indices),
            np.asarray(starts, dtype=np.int32),
            np.asarray(indices, dtype=np.int32),
            np.ones(len(indices)),
        )

    def solve(
        self, pool: list[Allocation]
    ) -> tuple[np.ndarray, float, np.ndarray]:
        if self._highs is None:  # pragma: no cover - binding-dependent
            return _solve_master(pool, self._pairs, self._r)
        if len(pool) > self._added:
            self._append(pool[self._added :])
            self._added = len(pool)
        self._highs.run()
        status = self._highs.getModelStatus()
        if status != self._core.HighsModelStatus.kOptimal:
            raise RuntimeError(
                "decomposition master failed: "
                f"{self._highs.modelStatusToString(status)}"
            )
        solution = self._highs.getSolution()
        lam = np.asarray(solution.col_value, dtype=float)
        w = np.maximum(np.asarray(solution.row_dual, dtype=float), 0.0)
        mu = float(self._highs.getInfo().objective_function_value)
        return lam, mu, w


class _FastMaster:
    """Reference master semantics on the persistent backend: rebuilt from
    the pool each iteration and cold-solved — bit-identical results,
    without the scipy call overhead."""

    def __init__(
        self, pairs: list[tuple[int, frozenset[int]]], r: np.ndarray
    ) -> None:
        self._pairs = pairs
        self._r = np.asarray(r, dtype=float)

    def solve(
        self, pool: list[Allocation]
    ) -> tuple[np.ndarray, float, np.ndarray]:
        return _solve_master_fast(pool, self._pairs, self._r)


def decompose_lp_solution(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    alpha: float | None = None,
    max_iterations: int = 400,
    tolerance: float = 1e-7,
    seed=None,
    pricing: str = "approx",
    compiled_structure=None,
) -> DecompositionResult:
    """Decompose ``x*/α`` into a convex combination of feasible allocations.

    ``pricing`` selects the oracle that searches for violated dual
    constraints: ``"approx"`` is the paper's route (the α-approximation
    itself, valid whenever α is the verified gap 8√kρ / 16√kρ⌈log n⌉) on
    the engine-compiled fast path, bit-identical to ``"reference"`` — the
    same oracle on the seed-era rebuild-per-iteration pipeline (the
    benchmark baseline; parity is pinned by
    ``tests/test_mechanism_parity.py``).  ``"warm"`` trades that parity
    for warm-started pricing re-solves and an incremental-column master
    (optimal but not vertex-pinned — see the module docstring).
    ``"exact"`` prices with the MILP of :mod:`repro.core.exact`, letting
    small instances decompose at *any* α down to their true integrality
    gap (used by experiment E8 to run the mechanism at practical scales).

    ``compiled_structure`` forwards an existing engine compilation of the
    problem's structure to the compiled pricer (the mechanism and the
    auction service pass their cached ones).
    """
    if pricing not in PRICING_MODES:
        raise ValueError(f"unknown pricing mode {pricing!r}")
    rng = ensure_rng(seed)
    alpha_val = default_alpha(problem) if alpha is None else float(alpha)
    support = solution.support()
    pairs = [(col.vertex, col.bundle) for col, _ in support]
    support_x = np.array([x for _, x in support])
    r = support_x / alpha_val
    target = {p: float(ri) for p, ri in zip(pairs, r)}
    support_cols = [col for col, _ in support]

    if pricing == "reference":
        lp = AuctionLP(problem, columns=support_cols)
        columns = lp.columns
        price = lambda objective: _integral_allocation_for(problem, lp, objective)  # noqa: E731
        master = None
    else:
        columns = support_cols
        pricer = _CompiledPricer(
            problem,
            support_cols,
            warm=pricing == "warm",
            compiled_structure=compiled_structure,
        )
        price = pricer.price
        master = _IncrementalMaster(pairs, r) if pricing == "warm" else None
        if master is None:
            master = _FastMaster(pairs, r)

    # Seed pool: the true-valuation allocation plus per-pair singletons
    # (every single (v, T) is feasible on its own), guaranteeing the master
    # is feasible from the first iteration.
    pool: list[Allocation] = []
    seen: set[tuple[tuple[int, frozenset[int]], ...]] = set()

    def add(alloc: Allocation) -> bool:
        key = tuple(sorted(((v, b) for v, b in alloc.items() if b)))
        if key in seen:
            return False
        seen.add(key)
        pool.append({v: b for v, b in alloc.items() if b})
        return True

    add(price(np.array([c.value for c in columns])))
    for v, bundle in pairs:
        add({v: bundle})

    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        if master is None:
            lam, mu, w = _solve_master(pool, pairs, r)
        else:
            lam, mu, w = master.solve(pool)
        if mu <= 1.0 + tolerance:
            break
        # columns and pairs share the same order by construction
        objective = np.asarray(w, dtype=float).copy()
        if pricing == "exact":
            from repro.core.exact import solve_exact

            adjusted_cols = [
                Column(c.vertex, c.bundle, float(o))
                for c, o in zip(columns, objective)
                if o > 0
            ]
            exact = solve_exact(problem, columns=adjusted_cols)
            if exact.value <= 1.0 + tolerance:
                raise RuntimeError(
                    f"decomposition infeasible: α={alpha_val} is below this "
                    "instance's integrality gap (exact pricing found no "
                    "violated constraint while the master optimum is "
                    f"{mu:.4f} > 1)"
                )
            new_alloc = exact.allocation
        else:
            new_alloc = price(objective)
        if not add(new_alloc):
            # Pricing returned a known allocation: numerically stuck.  Try a
            # randomized escape before giving up (theory says w-value ≥ μ).
            escaped = False
            from repro.core.rounding import round_unweighted, round_weighted

            adjusted = AuctionLPSolution(
                columns=[
                    Column(c.vertex, c.bundle, float(o))
                    for c, o in zip(columns, objective)
                ],
                x=support_x,
                value=solution.value,
                y=solution.y,
                z=solution.z,
            )
            for _ in range(10):
                if problem.is_weighted:
                    alloc, _ = round_weighted(problem, adjusted, rng)
                else:
                    alloc, _ = round_unweighted(problem, adjusted, rng)
                if add(alloc):
                    escaped = True
                    break
            if not escaped:
                raise RuntimeError(
                    "decomposition pricing stalled; the verified integrality "
                    f"gap α={alpha_val} may be too small for this instance"
                )
    else:
        raise RuntimeError("decomposition did not converge")

    # Exact equality via keep probabilities: achieved mass may exceed r.
    achieved = {p: 0.0 for p in pairs}
    for li, alloc in enumerate(pool):
        if lam[li] <= 0:
            continue
        for v, bundle in alloc.items():
            key = (v, bundle)
            if key in achieved:
                achieved[key] += lam[li]
    keep: dict[tuple[int, int, frozenset[int]], float] = {}
    for li, alloc in enumerate(pool):
        if lam[li] <= 0:
            continue
        for v, bundle in alloc.items():
            key = (v, bundle)
            if key not in achieved:
                keep[(li, v, bundle)] = 0.0  # outside support: always drop
            elif achieved[key] > target[key]:
                keep[(li, v, bundle)] = target[key] / achieved[key]

    used = [li for li in range(len(pool)) if lam[li] > tolerance]
    allocations = [pool[li] for li in used]
    weights = np.array([lam[li] for li in used])
    keep_remap = {
        (used.index(li), v, b): q for (li, v, b), q in keep.items() if li in used
    }
    total = float(weights.sum())
    if total > 1.0:  # normalize tiny numerical overshoot
        weights = weights / total
    return DecompositionResult(
        problem=problem,
        allocations=allocations,
        weights=weights,
        target=target,
        keep_probability=keep_remap,
        alpha=alpha_val,
        iterations=iterations,
        master_value=float(mu),
    )
