"""Lavi–Swamy decomposition (Section 5).

Writes the scaled LP optimum ``x*/α`` as a convex combination of feasible
*integral* allocations.  Column generation over the decomposition LP:

* master (covering form):  min Σ_l λ_l  s.t.  Σ_l λ_l·𝟙[S_l gives v bundle T]
  ≥ x*_{v,T}/α for every support pair, λ ≥ 0;
* pricing: the master's duals ``w ≥ 0`` act as *adjusted valuations*; the
  approximation algorithm (LP re-solve under w + derandomized rounding,
  + Algorithm 3 for weighted graphs) returns an integral allocation of
  w-value ≥ LPopt_w/α ≥ w·x*/α = α·μ/α = μ, so whenever the master optimum
  μ exceeds 1 a violated dual constraint — a new pool allocation — is found.
  This is exactly how the paper "verifies the integrality gap";
* termination: μ ≤ 1.  The deficit 1 − μ goes to the empty allocation, and
  per-pair *keep probabilities* shave the ≥ down to exact equality, so the
  sampled allocation satisfies  E[𝟙(v gets T)] = x*_{v,T}/α  exactly —
  the property the truthfulness proof needs.

The paper's "slight extension" of Lavi–Swamy is reproduced faithfully: the
ILP behind LP (1)/(4) is *infeasible* (integer LP points may violate actual
channel feasibility); what the decomposition uses is only that the
algorithm outputs **feasible** allocations whose value is within α of the
*fractional* optimum, which our rounding algorithms provide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.core.auction import Allocation, AuctionProblem
from repro.core.auction_lp import AuctionLP, AuctionLPSolution, Column
from repro.core.conflict_resolution import make_fully_feasible
from repro.core.derandomize import derandomize_rounding
from repro.util.rng import ensure_rng

__all__ = ["DecompositionResult", "decompose_lp_solution", "default_alpha"]


def default_alpha(problem: AuctionProblem) -> float:
    """The verified integrality gap: 8√kρ, ×2⌈log₂ n⌉ for weighted graphs."""
    return problem.approximation_bound()


@dataclass
class DecompositionResult:
    """A convex combination of feasible allocations matching x*/α exactly."""

    problem: AuctionProblem
    allocations: list[Allocation]
    weights: np.ndarray  # convex weights over `allocations` (sum ≤ 1;
    # the remainder is the empty allocation)
    target: dict[tuple[int, frozenset[int]], float]  # x*_{v,T}/α
    keep_probability: dict[tuple[int, int, frozenset[int]], float]
    alpha: float
    iterations: int
    master_value: float

    @property
    def empty_weight(self) -> float:
        return float(max(0.0, 1.0 - self.weights.sum()))

    def pair_mass(self) -> dict[tuple[int, frozenset[int]], float]:
        """E[𝟙(v gets T)] after keep-probabilities — must equal `target`."""
        mass: dict[tuple[int, frozenset[int]], float] = {k: 0.0 for k in self.target}
        for li, (alloc, lam) in enumerate(zip(self.allocations, self.weights)):
            for v, bundle in alloc.items():
                key = (v, bundle)
                keep = self.keep_probability.get((li, v, bundle), 1.0)
                if key in mass:
                    mass[key] += float(lam) * keep
        return mass

    def expected_welfare(self) -> float:
        """Σ target·b — equals b(x*)/α by construction."""
        return float(
            sum(
                self.problem.valuations[v].value(bundle) * m
                for (v, bundle), m in self.target.items()
            )
        )

    def sample(self, rng=None) -> Allocation:
        """Draw an allocation: pick a pool member by weight, then apply the
        per-pair keep probabilities (dropping a bundle keeps feasibility)."""
        rng = ensure_rng(rng)
        u = rng.random()
        acc = 0.0
        chosen = -1
        for li, lam in enumerate(self.weights):
            acc += float(lam)
            if u < acc:
                chosen = li
                break
        if chosen < 0:
            return {}
        out: Allocation = {}
        for v, bundle in self.allocations[chosen].items():
            keep = self.keep_probability.get((chosen, v, bundle), 1.0)
            if keep >= 1.0 or rng.random() < keep:
                out[v] = bundle
        return out


def _integral_allocation_for(
    problem: AuctionProblem,
    lp: AuctionLP,
    objective: np.ndarray,
) -> Allocation:
    """Run the (derandomized) approximation algorithm under the adjusted
    valuations `objective` (one value per LP column)."""
    import copy

    a, b, _ = lp.build()
    from repro.core.lp import solve_packing_lp

    sol = solve_packing_lp(objective, a, b)
    n, k = problem.n, problem.k
    adjusted_cols = [
        Column(col.vertex, col.bundle, float(obj))
        for col, obj in zip(lp.columns, objective)
    ]
    solution = AuctionLPSolution(
        columns=adjusted_cols,
        x=sol.x,
        value=sol.value,
        y=sol.duals[: n * k].reshape(n, k),
        z=sol.duals[n * k :],
    )
    # Derandomized rounding maximizes the *adjusted* objective, so rebuild a
    # problem whose welfare is the adjusted one via explicit valuations.
    from repro.valuations.explicit import ExplicitValuation

    bids: list[dict[frozenset[int], float]] = [dict() for _ in range(n)]
    for col in adjusted_cols:
        if col.value > 0:
            prev = bids[col.vertex].get(col.bundle, 0.0)
            bids[col.vertex][col.bundle] = max(prev, col.value)
    adj_problem = copy.copy(problem)
    adj_problem = AuctionProblem(
        structure=problem.structure,
        k=problem.k,
        valuations=[ExplicitValuation(problem.k, b) for b in bids],
    )
    result = derandomize_rounding(adj_problem, solution)
    allocation = result.allocation
    if problem.is_weighted:
        resolution = make_fully_feasible(adj_problem, allocation)
        allocation = resolution.allocation
    return dict(allocation)


def _solve_master(
    pool: list[Allocation],
    pairs: list[tuple[int, frozenset[int]]],
    r: np.ndarray,
) -> tuple[np.ndarray, float, np.ndarray]:
    """min Σλ s.t. Σ_l λ_l 𝟙[pair ∈ l] ≥ r; returns (λ, μ, duals w ≥ 0)."""
    pair_index = {p: i for i, p in enumerate(pairs)}
    rows, cols, data = [], [], []
    for li, alloc in enumerate(pool):
        for v, bundle in alloc.items():
            idx = pair_index.get((v, bundle))
            if idx is not None:
                rows.append(idx)
                cols.append(li)
                data.append(1.0)
    a = sp.coo_matrix((data, (rows, cols)), shape=(len(pairs), len(pool))).tocsr()
    res = linprog(
        np.ones(len(pool)),
        A_ub=-a,
        b_ub=-r,
        bounds=(0, None),
        method="highs",
    )
    if res.status != 0:
        raise RuntimeError(f"decomposition master failed: {res.message}")
    duals = np.asarray(res.ineqlin.marginals, dtype=float)
    w = np.maximum(-duals, 0.0)  # duals of ≥-rows in min problem are ≤ 0
    return np.asarray(res.x, dtype=float), float(res.fun), w


def decompose_lp_solution(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    alpha: float | None = None,
    max_iterations: int = 400,
    tolerance: float = 1e-7,
    seed=None,
    pricing: str = "approx",
) -> DecompositionResult:
    """Decompose ``x*/α`` into a convex combination of feasible allocations.

    ``pricing`` selects the oracle that searches for violated dual
    constraints: ``"approx"`` is the paper's route (the α-approximation
    itself, valid whenever α is the verified gap 8√kρ / 16√kρ⌈log n⌉);
    ``"exact"`` prices with the MILP of :mod:`repro.core.exact`, letting
    small instances decompose at *any* α down to their true integrality
    gap (used by experiment E8 to run the mechanism at practical scales).
    """
    if pricing not in ("approx", "exact"):
        raise ValueError(f"unknown pricing mode {pricing!r}")
    rng = ensure_rng(seed)
    alpha_val = default_alpha(problem) if alpha is None else float(alpha)
    support = solution.support()
    pairs = [(col.vertex, col.bundle) for col, _ in support]
    r = np.array([x for _, x in support]) / alpha_val
    target = {p: float(ri) for p, ri in zip(pairs, r)}
    lp = AuctionLP(problem, columns=[col for col, _ in support])

    # Seed pool: the true-valuation allocation plus per-pair singletons
    # (every single (v, T) is feasible on its own), guaranteeing the master
    # is feasible from the first iteration.
    pool: list[Allocation] = []
    seen: set[tuple[tuple[int, frozenset[int]], ...]] = set()

    def add(alloc: Allocation) -> bool:
        key = tuple(sorted(((v, b) for v, b in alloc.items() if b)))
        if key in seen:
            return False
        seen.add(key)
        pool.append({v: b for v, b in alloc.items() if b})
        return True

    add(_integral_allocation_for(problem, lp, np.array([c.value for c in lp.columns])))
    for v, bundle in pairs:
        add({v: bundle})

    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        lam, mu, w = _solve_master(pool, pairs, r)
        if mu <= 1.0 + tolerance:
            break
        objective = np.zeros(len(lp.columns))
        for i, (v, bundle) in enumerate(pairs):
            # columns and pairs share the same order by construction
            objective[i] = w[i]
        if pricing == "exact":
            from repro.core.exact import solve_exact

            adjusted_cols = [
                Column(c.vertex, c.bundle, float(o))
                for c, o in zip(lp.columns, objective)
                if o > 0
            ]
            exact = solve_exact(problem, columns=adjusted_cols)
            if exact.value <= 1.0 + tolerance:
                raise RuntimeError(
                    f"decomposition infeasible: α={alpha_val} is below this "
                    "instance's integrality gap (exact pricing found no "
                    "violated constraint while the master optimum is "
                    f"{mu:.4f} > 1)"
                )
            new_alloc = exact.allocation
        else:
            new_alloc = _integral_allocation_for(problem, lp, objective)
        if not add(new_alloc):
            # Pricing returned a known allocation: numerically stuck.  Try a
            # randomized escape before giving up (theory says w-value ≥ μ).
            escaped = False
            from repro.core.rounding import round_unweighted, round_weighted

            adjusted = AuctionLPSolution(
                columns=[
                    Column(c.vertex, c.bundle, float(o))
                    for c, o in zip(lp.columns, objective)
                ],
                x=solution.x,
                value=solution.value,
                y=solution.y,
                z=solution.z,
            )
            for _ in range(10):
                if problem.is_weighted:
                    alloc, _ = round_weighted(problem, adjusted, rng)
                else:
                    alloc, _ = round_unweighted(problem, adjusted, rng)
                if add(alloc):
                    escaped = True
                    break
            if not escaped:
                raise RuntimeError(
                    "decomposition pricing stalled; the verified integrality "
                    f"gap α={alpha_val} may be too small for this instance"
                )
    else:
        raise RuntimeError("decomposition did not converge")

    # Exact equality via keep probabilities: achieved mass may exceed r.
    achieved = {p: 0.0 for p in pairs}
    for li, alloc in enumerate(pool):
        if lam[li] <= 0:
            continue
        for v, bundle in alloc.items():
            key = (v, bundle)
            if key in achieved:
                achieved[key] += lam[li]
    keep: dict[tuple[int, int, frozenset[int]], float] = {}
    for li, alloc in enumerate(pool):
        if lam[li] <= 0:
            continue
        for v, bundle in alloc.items():
            key = (v, bundle)
            if key not in achieved:
                keep[(li, v, bundle)] = 0.0  # outside support: always drop
            elif achieved[key] > target[key]:
                keep[(li, v, bundle)] = target[key] / achieved[key]

    used = [li for li in range(len(pool)) if lam[li] > tolerance]
    allocations = [pool[li] for li in used]
    weights = np.array([lam[li] for li in used])
    keep_remap = {
        (used.index(li), v, b): q for (li, v, b), q in keep.items() if li in used
    }
    total = float(weights.sum())
    if total > 1.0:  # normalize tiny numerical overshoot
        weights = weights / total
    return DecompositionResult(
        problem=problem,
        allocations=allocations,
        weights=weights,
        target=target,
        keep_probability=keep_remap,
        alpha=alpha_val,
        iterations=iterations,
        master_value=float(mu),
    )
