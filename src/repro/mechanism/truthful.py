"""The truthful-in-expectation mechanism (Section 5, end to end).

Pipeline per auction:

1. collect reported valuations, solve LP (1)/(4);
2. decompose x*/α into a convex combination of feasible integral
   allocations (:mod:`repro.mechanism.lavi_swamy`);
3. charge scaled fractional VCG payments (:mod:`repro.mechanism.vcg`);
4. sample the published distribution.

Expected utilities are *exactly computable* from the decomposition (no
sampling noise): bidder v's expected value under reports ``b'`` equals
``Σ_T b_v(T) · mass_{v,T}(b')`` where the mass is the decomposition target.
:meth:`TruthfulMechanism.expected_utility` exposes this, and the E8
experiment uses it to check  E[u(truth)] ≥ E[u(misreport)]  across sampled
misreports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.auction import Allocation, AuctionProblem
from repro.core.solver import SpectrumAuctionSolver
from repro.mechanism.lavi_swamy import (
    DecompositionResult,
    decompose_lp_solution,
    default_alpha,
)
from repro.mechanism.vcg import FractionalVCG, vcg_payments
from repro.util.rng import ensure_rng
from repro.valuations.base import Valuation

__all__ = ["MechanismOutcome", "TruthfulMechanism"]


@dataclass
class MechanismOutcome:
    """Published outcome of one mechanism run."""

    decomposition: DecompositionResult
    payments: np.ndarray
    alpha: float
    lp_value: float
    sampled_allocation: Allocation = field(default_factory=dict)

    def expected_value_for(self, vertex: int, true_valuation: Valuation) -> float:
        """Bidder's expected *true* value under the published distribution."""
        return float(
            sum(
                true_valuation.value(bundle) * mass
                for (v, bundle), mass in self.decomposition.target.items()
                if v == vertex
            )
        )

    def expected_utility(self, vertex: int, true_valuation: Valuation) -> float:
        return self.expected_value_for(vertex, true_valuation) - float(
            self.payments[vertex]
        )


class TruthfulMechanism:
    """Truthful-in-expectation spectrum auction for a fixed conflict
    structure (interference is public; valuations are reported).

    The structure is compiled once at construction: every
    :meth:`run` — including the misreport probes of E8, which re-solve the
    LP for each reported profile — reuses the engine's precomputed
    interference coefficients instead of rebuilding the LP rows."""

    def __init__(
        self,
        structure,
        k: int,
        alpha: float | None = None,
        pricing: str = "approx",
        compiled_structure=None,
    ) -> None:
        """``pricing`` selects the decomposition oracle (see
        :func:`~repro.mechanism.lavi_swamy.decompose_lp_solution`):
        ``"approx"`` — the engine-compiled fast path, bit-identical to
        ``"reference"`` (the seed-era pipeline, kept as the benchmark
        baseline); ``"warm"`` — warm-started pricing, maximum throughput,
        not vertex-pinned; ``"exact"`` — MILP pricing for small instances
        at sub-gap α.  The reference mode also keeps the per-bidder
        rebuild VCG loop, so it is the complete pre-fast-path pipeline.

        ``compiled_structure`` injects an existing engine compilation of
        ``structure`` (the auction service passes its own cached one);
        ``None`` compiles through the engine's keyed cache."""
        from repro.engine import compile_structure

        self.structure = structure
        self.k = k
        self.alpha = alpha
        self.pricing = pricing
        # the structure's engine compilation, held for the mechanism's
        # lifetime and passed to every run()'s solver — reuse survives
        # eviction from the engine's bounded cache
        self._compiled_structure = (
            compile_structure(structure)
            if compiled_structure is None
            else compiled_structure
        )

    def prepare(
        self,
        valuations: list[Valuation],
        seed=None,
        lp_method: str = "auto",
    ) -> MechanismOutcome:
        """Compute the published outcome — LP, decomposition, payments —
        without sampling.

        This is the cacheable half of the mechanism: for a fixed reported
        profile the outcome is deterministic (the seed only feeds the
        decomposition's rare randomized-escape path), so the auction
        service keys prepared outcomes by scene + profile fingerprint and
        draws per-request samples from the shared decomposition.
        """
        rng = ensure_rng(seed)
        problem = AuctionProblem(self.structure, self.k, valuations)
        from repro.engine import CompiledAuction

        solver = SpectrumAuctionSolver(
            problem,
            compiled=CompiledAuction(problem, structure=self._compiled_structure),
        )
        solution = solver.solve_lp(lp_method)
        alpha = default_alpha(problem) if self.alpha is None else self.alpha
        decomposition = decompose_lp_solution(
            problem,
            solution,
            alpha=alpha,
            seed=rng,
            pricing=self.pricing,
            compiled_structure=(
                None if self.pricing == "reference" else self._compiled_structure
            ),
        )
        vcg: FractionalVCG = vcg_payments(
            problem,
            solution,
            alpha,
            method="reference" if self.pricing == "reference" else "auto",
            compiled_structure=self._compiled_structure,
        )
        return MechanismOutcome(
            decomposition=decomposition,
            payments=vcg.payments,
            alpha=alpha,
            lp_value=solution.value,
        )

    def run(
        self,
        valuations: list[Valuation],
        seed=None,
        lp_method: str = "auto",
        sample: bool = True,
    ) -> MechanismOutcome:
        """Run the mechanism on reported valuations."""
        rng = ensure_rng(seed)
        outcome = self.prepare(valuations, seed=rng, lp_method=lp_method)
        if sample:
            outcome.sampled_allocation = outcome.decomposition.sample(rng)
        return outcome
