"""The truthful-in-expectation mechanism (Section 5, end to end).

Pipeline per auction:

1. collect reported valuations, solve LP (1)/(4);
2. decompose x*/α into a convex combination of feasible integral
   allocations (:mod:`repro.mechanism.lavi_swamy`);
3. charge scaled fractional VCG payments (:mod:`repro.mechanism.vcg`);
4. sample the published distribution.

Expected utilities are *exactly computable* from the decomposition (no
sampling noise): bidder v's expected value under reports ``b'`` equals
``Σ_T b_v(T) · mass_{v,T}(b')`` where the mass is the decomposition target.
:meth:`TruthfulMechanism.expected_utility` exposes this, and the E8
experiment uses it to check  E[u(truth)] ≥ E[u(misreport)]  across sampled
misreports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.auction import Allocation, AuctionProblem
from repro.core.solver import SpectrumAuctionSolver
from repro.mechanism.lavi_swamy import (
    DecompositionResult,
    decompose_lp_solution,
    default_alpha,
)
from repro.mechanism.vcg import FractionalVCG, vcg_payments
from repro.util.rng import ensure_rng
from repro.valuations.base import Valuation

__all__ = ["MechanismOutcome", "TruthfulMechanism"]


@dataclass
class MechanismOutcome:
    """Published outcome of one mechanism run."""

    decomposition: DecompositionResult
    payments: np.ndarray
    alpha: float
    lp_value: float
    sampled_allocation: Allocation = field(default_factory=dict)

    def expected_value_for(self, vertex: int, true_valuation: Valuation) -> float:
        """Bidder's expected *true* value under the published distribution."""
        return float(
            sum(
                true_valuation.value(bundle) * mass
                for (v, bundle), mass in self.decomposition.target.items()
                if v == vertex
            )
        )

    def expected_utility(self, vertex: int, true_valuation: Valuation) -> float:
        return self.expected_value_for(vertex, true_valuation) - float(
            self.payments[vertex]
        )


class TruthfulMechanism:
    """Truthful-in-expectation spectrum auction for a fixed conflict
    structure (interference is public; valuations are reported).

    The structure is compiled once at construction: every
    :meth:`run` — including the misreport probes of E8, which re-solve the
    LP for each reported profile — reuses the engine's precomputed
    interference coefficients instead of rebuilding the LP rows."""

    def __init__(self, structure, k: int, alpha: float | None = None) -> None:
        from repro.engine import compile_structure

        self.structure = structure
        self.k = k
        self.alpha = alpha
        # the structure's engine compilation, held for the mechanism's
        # lifetime and passed to every run()'s solver — reuse survives
        # eviction from the engine's bounded cache
        self._compiled_structure = compile_structure(structure)

    def run(
        self,
        valuations: list[Valuation],
        seed=None,
        lp_method: str = "auto",
        sample: bool = True,
    ) -> MechanismOutcome:
        """Run the mechanism on reported valuations."""
        rng = ensure_rng(seed)
        problem = AuctionProblem(self.structure, self.k, valuations)
        from repro.engine import CompiledAuction

        solver = SpectrumAuctionSolver(
            problem,
            compiled=CompiledAuction(problem, structure=self._compiled_structure),
        )
        solution = solver.solve_lp(lp_method)
        alpha = default_alpha(problem) if self.alpha is None else self.alpha
        decomposition = decompose_lp_solution(
            problem, solution, alpha=alpha, seed=rng
        )
        vcg: FractionalVCG = vcg_payments(problem, solution, alpha)
        outcome = MechanismOutcome(
            decomposition=decomposition,
            payments=vcg.payments,
            alpha=alpha,
            lp_value=solution.value,
        )
        if sample:
            outcome.sampled_allocation = decomposition.sample(rng)
        return outcome
