"""Mechanism design: Lavi–Swamy decomposition, scaled VCG, truthfulness."""

from repro.mechanism.lavi_swamy import (
    DecompositionResult,
    decompose_lp_solution,
    default_alpha,
)
from repro.mechanism.truthful import MechanismOutcome, TruthfulMechanism
from repro.mechanism.vcg import FractionalVCG, vcg_payments

__all__ = [
    "DecompositionResult",
    "decompose_lp_solution",
    "default_alpha",
    "FractionalVCG",
    "vcg_payments",
    "TruthfulMechanism",
    "MechanismOutcome",
]
