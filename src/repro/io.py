"""Instance serialization: save/load auction problems as JSON.

Lets users pin down and share the exact instances behind a result —
structures (graph + ordering + ρ), valuations, and channel counts survive a
round trip bit-for-bit.  Only JSON-native types are written, so files are
portable and diffable.

Limitations (by design): structure ``metadata`` entries that are not
JSON-native (e.g. the live ``PhysicalModel`` object or LinkSet references)
are dropped on save — the graph already encodes everything the solver
needs; regenerate models from geometry if you need them back.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.auction import AuctionProblem
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.interference.base import ConflictStructure, WeightedConflictStructure
from repro.valuations.additive import (
    AdditiveValuation,
    BudgetedAdditiveValuation,
    CappedAdditiveValuation,
    UnitDemandValuation,
)
from repro.valuations.base import Valuation
from repro.valuations.explicit import (
    ExplicitValuation,
    SingleMindedValuation,
    XORValuation,
)

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "save_problem",
    "load_problem",
]


# ----------------------------------------------------------------------
# valuations
# ----------------------------------------------------------------------
def _bids_to_list(bids: dict[frozenset[int], float]) -> list[list]:
    return [[sorted(bundle), value] for bundle, value in sorted(
        bids.items(), key=lambda kv: sorted(kv[0])
    )]


def _bids_from_list(items: list[list]) -> dict[frozenset[int], float]:
    return {frozenset(bundle): float(value) for bundle, value in items}


def _valuation_to_dict(v: Valuation) -> dict:
    if isinstance(v, SingleMindedValuation):
        return {
            "type": "single_minded",
            "k": v.k,
            "bundle": sorted(v.bundle),
            "value": v.bid_value,
        }
    if isinstance(v, XORValuation):
        return {"type": "xor", "k": v.k, "bids": _bids_to_list(v.bids)}
    if isinstance(v, ExplicitValuation):
        return {"type": "explicit", "k": v.k, "bids": _bids_to_list(v.bids)}
    if isinstance(v, BudgetedAdditiveValuation):
        return {
            "type": "budgeted",
            "per_channel": v.per_channel.tolist(),
            "budget": v.budget,
        }
    if isinstance(v, CappedAdditiveValuation):
        return {
            "type": "capped",
            "per_channel": v.per_channel.tolist(),
            "cap": v.cap,
        }
    if isinstance(v, UnitDemandValuation):
        return {"type": "unit_demand", "per_channel": v.per_channel.tolist()}
    if isinstance(v, AdditiveValuation):
        return {"type": "additive", "per_channel": v.per_channel.tolist()}
    raise TypeError(f"cannot serialize valuation of type {type(v).__name__}")


def _valuation_from_dict(data: dict) -> Valuation:
    kind = data["type"]
    if kind == "single_minded":
        return SingleMindedValuation(
            data["k"], frozenset(data["bundle"]), data["value"]
        )
    if kind == "xor":
        return XORValuation(data["k"], _bids_from_list(data["bids"]))
    if kind == "explicit":
        return ExplicitValuation(data["k"], _bids_from_list(data["bids"]))
    if kind == "budgeted":
        return BudgetedAdditiveValuation(
            np.array(data["per_channel"]), data["budget"]
        )
    if kind == "capped":
        return CappedAdditiveValuation(np.array(data["per_channel"]), data["cap"])
    if kind == "unit_demand":
        return UnitDemandValuation(np.array(data["per_channel"]))
    if kind == "additive":
        return AdditiveValuation(np.array(data["per_channel"]))
    raise ValueError(f"unknown valuation type {kind!r}")


# ----------------------------------------------------------------------
# structures
# ----------------------------------------------------------------------
def _json_safe_metadata(metadata: dict) -> dict:
    out = {}
    for key, value in metadata.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
    return out


def _structure_to_dict(structure) -> dict:
    common = {
        "ordering": structure.ordering.perm.tolist(),
        "rho": structure.rho,
        "rho_source": structure.rho_source,
        "metadata": _json_safe_metadata(structure.metadata),
    }
    if isinstance(structure, WeightedConflictStructure):
        return {
            "type": "weighted",
            "weights": structure.graph.weights.tolist(),
            **common,
        }
    if isinstance(structure, ConflictStructure):
        return {
            "type": "unweighted",
            "n": structure.graph.n,
            "edges": sorted(structure.graph.edges()),
            **common,
        }
    raise TypeError(f"cannot serialize structure of type {type(structure).__name__}")


def _structure_from_dict(data: dict):
    ordering = VertexOrdering(data["ordering"])
    if data["type"] == "weighted":
        graph = WeightedConflictGraph(np.array(data["weights"]))
        return WeightedConflictStructure(
            graph, ordering, data["rho"], data["rho_source"], dict(data["metadata"])
        )
    if data["type"] == "unweighted":
        graph = ConflictGraph(data["n"], [tuple(e) for e in data["edges"]])
        return ConflictStructure(
            graph, ordering, data["rho"], data["rho_source"], dict(data["metadata"])
        )
    raise ValueError(f"unknown structure type {data['type']!r}")


# ----------------------------------------------------------------------
# problems
# ----------------------------------------------------------------------
FORMAT_VERSION = 1


def problem_to_dict(problem: AuctionProblem) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "k": problem.k,
        "structure": _structure_to_dict(problem.structure),
        "valuations": [_valuation_to_dict(v) for v in problem.valuations],
    }


def problem_from_dict(data: dict) -> AuctionProblem:
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('format_version')!r}"
        )
    return AuctionProblem(
        structure=_structure_from_dict(data["structure"]),
        k=int(data["k"]),
        valuations=[_valuation_from_dict(v) for v in data["valuations"]],
    )


def save_problem(problem: AuctionProblem, path) -> None:
    """Write a problem to ``path`` as JSON."""
    Path(path).write_text(json.dumps(problem_to_dict(problem), indent=1))


def load_problem(path) -> AuctionProblem:
    """Read a problem saved by :func:`save_problem`."""
    return problem_from_dict(json.loads(Path(path).read_text()))
