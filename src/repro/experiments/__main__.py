"""``python -m repro.experiments`` — run the experiment suite."""

import sys

from repro.experiments.report import main

if __name__ == "__main__":
    sys.exit(main())
