"""Workload builders for the experiment suite (E1–E16, A1–A6) and the
batch-engine benchmarks.

Each builder returns fully-specified problem instances from a seed, so
benchmark numbers are reproducible bit-for-bit.

The metro-scale family (``metro_*``) models a metropolitan deployment:
n up to ~10⁴ transmitters or links spread over an area that grows with n,
so the conflict degree stays constant (the regime where the spatial-index
builders and the sparse compile path are near-linear while the dense
builders are O(n²)).  ``reauction_fleet`` is the warm-start reference
workload: one region whose bidders keep their bundle interests across
epochs and only re-price them — consecutive LPs share the constraint
matrix, which the warm-started HiGHS path exploits.
"""

from __future__ import annotations

import math

from repro.core.auction import AuctionProblem
from repro.core.asymmetric import AsymmetricAuctionProblem
from repro.geometry.disks import random_disk_instance
from repro.geometry.links import random_links
from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.generators import random_regular_graph, theorem18_edge_partition
from repro.interference.disk import disk_transmitter_model
from repro.interference.physical import (
    linear_power,
    mean_power,
    physical_model_structure,
    uniform_power,
)
from repro.interference.power_control import power_control_structure
from repro.interference.protocol import protocol_model
from repro.util.rng import ensure_rng
from repro.valuations.explicit import XORValuation
from repro.valuations.generators import (
    all_or_nothing_valuations,
    random_xor_valuations,
)

__all__ = [
    "protocol_auction",
    "disk_auction",
    "physical_auction",
    "power_control_auction",
    "theorem18_auction",
    "protocol_auction_fleet",
    "reauction_fleet",
    "metro_extent",
    "metro_disk_scene",
    "metro_protocol_scene",
    "metro_disk_auction",
    "metro_protocol_auction",
    "metro_truthful_auction",
    "metro_fleet",
]

DEFAULT_LENGTHS = (0.02, 0.08)
DEFAULT_RADII = (0.05, 0.15)


def protocol_auction(
    n: int,
    k: int,
    seed,
    delta: float = 1.0,
    bids_per_bidder: int = 4,
    extent: float = 1.0,
) -> AuctionProblem:
    """Protocol-model auction with XOR bidders (E1, E11, E13, A1–A3)."""
    rng = ensure_rng(seed)
    links = random_links(n, extent=extent, length_range=DEFAULT_LENGTHS, seed=rng)
    structure = protocol_model(links, delta)
    vals = random_xor_valuations(n, k, bids_per_bidder=bids_per_bidder, seed=rng)
    return AuctionProblem(structure, k, vals)


def protocol_auction_fleet(
    regions: int,
    epochs: int,
    n: int,
    k: int,
    seed,
    delta: float = 1.0,
    bids_per_bidder: int = 4,
) -> list[AuctionProblem]:
    """The batch engine's reference workload: one auction per region/epoch.

    Each region fixes a protocol-model conflict structure; every epoch
    re-auctions it with fresh XOR valuations.  Problems of one region share
    their structure object, so the engine compiles each region once.
    """
    rng = ensure_rng(seed)
    fleet: list[AuctionProblem] = []
    for _ in range(regions):
        links = random_links(n, length_range=DEFAULT_LENGTHS, seed=rng)
        structure = protocol_model(links, delta)
        for _ in range(epochs):
            vals = random_xor_valuations(
                n, k, bids_per_bidder=bids_per_bidder, seed=rng
            )
            fleet.append(AuctionProblem(structure, k, vals))
    return fleet


def disk_auction(n: int, k: int, seed) -> AuctionProblem:
    """Disk-graph transmitter auction (E2 companion, E11)."""
    rng = ensure_rng(seed)
    inst = random_disk_instance(n, seed=rng)
    structure = disk_transmitter_model(inst)
    vals = random_xor_valuations(n, k, seed=rng)
    return AuctionProblem(structure, k, vals)


def reauction_fleet(
    epochs: int,
    n: int,
    k: int,
    seed,
    delta: float = 1.0,
    bids_per_bidder: int = 4,
) -> list[AuctionProblem]:
    """One region re-auctioned with re-priced bids: the warm-start workload.

    Every epoch keeps each bidder's *bundle interests* (so the LP constraint
    matrices are identical across epochs — realistic for license renewals
    where demand sets are stable but prices move) and re-draws the values
    with the XOR generator's distribution.
    """
    rng = ensure_rng(seed)
    links = random_links(n, length_range=DEFAULT_LENGTHS, seed=rng)
    structure = protocol_model(links, delta)
    base = random_xor_valuations(n, k, bids_per_bidder=bids_per_bidder, seed=rng)
    fleet: list[AuctionProblem] = []
    for _ in range(epochs):
        vals = []
        for valuation in base:
            bids = {}
            for bundle in valuation.bids:
                base_value = int(rng.integers(1, 101))
                bids[bundle] = float(base_value * (1 + len(bundle)) // 2 + len(bundle))
            vals.append(XORValuation(k, bids))
        fleet.append(AuctionProblem(structure, k, vals))
    return fleet


def metro_extent(n: int, mean_reach: float, density: float = 12.0) -> float:
    """Deployment-area side length giving an expected conflict degree of
    ``density``: n disks of interaction reach ``mean_reach`` in a square of
    side ``√(n·π·reach²/density)`` average ``density`` conflicts each."""
    if n < 1 or density <= 0:
        raise ValueError("need n >= 1 and density > 0")
    return math.sqrt(n * math.pi * mean_reach**2 / density)


def metro_disk_scene(
    n: int,
    seed,
    density: float = 12.0,
    radius_range: tuple[float, float] = DEFAULT_RADII,
    method: str = "auto",
):
    """Metro-scale disk-model conflict structure (no valuations).

    The scene half of :func:`metro_disk_auction`: what the auction service
    registers once and serves many request profiles against.
    """
    rng = ensure_rng(seed)
    extent = metro_extent(n, sum(radius_range), density)  # mean r_i + r_j
    inst = random_disk_instance(
        n, extent=extent, radius_range=radius_range, seed=rng, method=method
    )
    return disk_transmitter_model(inst)


def metro_protocol_scene(
    n: int,
    seed,
    density: float = 12.0,
    delta: float = 1.0,
    length_range: tuple[float, float] = DEFAULT_LENGTHS,
    method: str = "auto",
):
    """Metro-scale protocol-model conflict structure (no valuations)."""
    rng = ensure_rng(seed)
    # interaction reach of a link ≈ its guard radius around the receiver
    mean_reach = (1.0 + delta) * (length_range[0] + length_range[1]) / 2.0
    extent = metro_extent(n, mean_reach, density)
    links = random_links(n, extent=extent, length_range=length_range, seed=rng)
    return protocol_model(links, delta, method=method)


def metro_disk_auction(
    n: int,
    k: int,
    seed,
    density: float = 12.0,
    radius_range: tuple[float, float] = DEFAULT_RADII,
    bids_per_bidder: int = 4,
    method: str = "auto",
) -> AuctionProblem:
    """Metro-scale disk-model auction: constant conflict density at any n.

    ``method`` is forwarded to the graph builder (``"dense"`` forces the
    O(n²) path — the pre-spatial-index baseline BENCH_scale.json measures).
    """
    rng = ensure_rng(seed)
    structure = metro_disk_scene(
        n, seed=rng, density=density, radius_range=radius_range, method=method
    )
    vals = random_xor_valuations(n, k, bids_per_bidder=bids_per_bidder, seed=rng)
    return AuctionProblem(structure, k, vals)


def metro_protocol_auction(
    n: int,
    k: int,
    seed,
    density: float = 12.0,
    delta: float = 1.0,
    length_range: tuple[float, float] = DEFAULT_LENGTHS,
    bids_per_bidder: int = 4,
    method: str = "auto",
) -> AuctionProblem:
    """Metro-scale protocol-model auction over links (constant density)."""
    rng = ensure_rng(seed)
    structure = metro_protocol_scene(
        n,
        seed=rng,
        density=density,
        delta=delta,
        length_range=length_range,
        method=method,
    )
    vals = random_xor_valuations(n, k, bids_per_bidder=bids_per_bidder, seed=rng)
    return AuctionProblem(structure, k, vals)


def metro_fleet(
    regions: int,
    n: int,
    k: int,
    seed,
    model: str = "disk",
    method: str = "auto",
    **kwargs,
) -> list[AuctionProblem]:
    """A fleet of metro-scale auctions, one per region."""
    builders = {"disk": metro_disk_auction, "protocol": metro_protocol_auction}
    if model not in builders:
        raise ValueError(f"model must be one of {sorted(builders)}, got {model!r}")
    rng = ensure_rng(seed)
    return [
        builders[model](n, k, seed=rng, method=method, **kwargs)
        for _ in range(regions)
    ]


def metro_truthful_auction(
    n: int,
    k: int = 4,
    seed=0,
    density: float = 12.0,
    radius_range: tuple[float, float] = DEFAULT_RADII,
    bids_per_bidder: int = 2,
    method: str = "auto",
) -> AuctionProblem:
    """Metro-scale disk auction shaped for the truthful mechanism.

    Same constant-density disk scenes as :func:`metro_disk_auction`, but
    with the leaner bid profile of a truthful deployment (fewer channels,
    two bundles per bidder): the Lavi–Swamy decomposition prices over the
    LP support and the VCG stage probes every contributing bidder, so the
    column count — not n — is what the mechanism's wall clock scales with.
    ``BENCH_mechanism.json``'s n=1000 acceptance point uses this builder.
    """
    return metro_disk_auction(
        n,
        k,
        seed=seed,
        density=density,
        radius_range=radius_range,
        bids_per_bidder=bids_per_bidder,
        method=method,
    )


def physical_auction(
    n: int,
    k: int,
    seed,
    scheme: str = "linear",
    alpha: float = 3.0,
    beta: float = 1.5,
) -> AuctionProblem:
    """Fixed-power physical-model auction (E5 companion, E6)."""
    rng = ensure_rng(seed)
    links = random_links(n, length_range=DEFAULT_LENGTHS, seed=rng)
    power = {
        "uniform": lambda: uniform_power(links),
        "linear": lambda: linear_power(links, alpha),
        "mean": lambda: mean_power(links, alpha),
    }[scheme]()
    structure = physical_model_structure(links, power, alpha, beta)
    vals = random_xor_valuations(n, k, seed=rng)
    return AuctionProblem(structure, k, vals)


def power_control_auction(
    n: int, k: int, seed, alpha: float = 3.0, beta: float = 1.5
) -> AuctionProblem:
    """Power-control auction (E7)."""
    rng = ensure_rng(seed)
    links = random_links(n, length_range=DEFAULT_LENGTHS, seed=rng)
    structure = power_control_structure(links, alpha, beta)
    vals = random_xor_valuations(n, k, seed=rng)
    return AuctionProblem(structure, k, vals)


def theorem18_auction(
    n: int, d: int, k: int, seed
) -> tuple[AsymmetricAuctionProblem, object]:
    """Theorem 18 hardness instance: edge-partitioned regular graph with
    all-or-nothing bidders (E9).  Returns (problem, base graph)."""
    base = random_regular_graph(n, d, seed=seed)
    ordering = VertexOrdering.identity(n)
    graphs = theorem18_edge_partition(base, k, ordering)
    rho = max(1, -(-d // k))  # ⌈d/k⌉
    vals = all_or_nothing_valuations(n, k)
    return AsymmetricAuctionProblem(graphs, ordering, rho, vals), base
