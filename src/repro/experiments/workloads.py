"""Workload builders for the experiment suite (E1–E16, A1–A6) and the
batch-engine benchmarks.

Each builder returns fully-specified problem instances from a seed, so
benchmark numbers are reproducible bit-for-bit.
"""

from __future__ import annotations

from repro.core.auction import AuctionProblem
from repro.core.asymmetric import AsymmetricAuctionProblem
from repro.geometry.disks import random_disk_instance
from repro.geometry.links import random_links
from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.generators import random_regular_graph, theorem18_edge_partition
from repro.interference.disk import disk_transmitter_model
from repro.interference.physical import (
    linear_power,
    mean_power,
    physical_model_structure,
    uniform_power,
)
from repro.interference.power_control import power_control_structure
from repro.interference.protocol import protocol_model
from repro.util.rng import ensure_rng
from repro.valuations.generators import (
    all_or_nothing_valuations,
    random_xor_valuations,
)

__all__ = [
    "protocol_auction",
    "disk_auction",
    "physical_auction",
    "power_control_auction",
    "theorem18_auction",
    "protocol_auction_fleet",
]

DEFAULT_LENGTHS = (0.02, 0.08)


def protocol_auction(
    n: int,
    k: int,
    seed,
    delta: float = 1.0,
    bids_per_bidder: int = 4,
    extent: float = 1.0,
) -> AuctionProblem:
    """Protocol-model auction with XOR bidders (E1, E11, E13, A1–A3)."""
    rng = ensure_rng(seed)
    links = random_links(n, extent=extent, length_range=DEFAULT_LENGTHS, seed=rng)
    structure = protocol_model(links, delta)
    vals = random_xor_valuations(n, k, bids_per_bidder=bids_per_bidder, seed=rng)
    return AuctionProblem(structure, k, vals)


def protocol_auction_fleet(
    regions: int,
    epochs: int,
    n: int,
    k: int,
    seed,
    delta: float = 1.0,
    bids_per_bidder: int = 4,
) -> list[AuctionProblem]:
    """The batch engine's reference workload: one auction per region/epoch.

    Each region fixes a protocol-model conflict structure; every epoch
    re-auctions it with fresh XOR valuations.  Problems of one region share
    their structure object, so the engine compiles each region once.
    """
    rng = ensure_rng(seed)
    fleet: list[AuctionProblem] = []
    for _ in range(regions):
        links = random_links(n, length_range=DEFAULT_LENGTHS, seed=rng)
        structure = protocol_model(links, delta)
        for _ in range(epochs):
            vals = random_xor_valuations(
                n, k, bids_per_bidder=bids_per_bidder, seed=rng
            )
            fleet.append(AuctionProblem(structure, k, vals))
    return fleet


def disk_auction(n: int, k: int, seed) -> AuctionProblem:
    """Disk-graph transmitter auction (E2 companion, E11)."""
    rng = ensure_rng(seed)
    inst = random_disk_instance(n, seed=rng)
    structure = disk_transmitter_model(inst)
    vals = random_xor_valuations(n, k, seed=rng)
    return AuctionProblem(structure, k, vals)


def physical_auction(
    n: int,
    k: int,
    seed,
    scheme: str = "linear",
    alpha: float = 3.0,
    beta: float = 1.5,
) -> AuctionProblem:
    """Fixed-power physical-model auction (E5 companion, E6)."""
    rng = ensure_rng(seed)
    links = random_links(n, length_range=DEFAULT_LENGTHS, seed=rng)
    power = {
        "uniform": lambda: uniform_power(links),
        "linear": lambda: linear_power(links, alpha),
        "mean": lambda: mean_power(links, alpha),
    }[scheme]()
    structure = physical_model_structure(links, power, alpha, beta)
    vals = random_xor_valuations(n, k, seed=rng)
    return AuctionProblem(structure, k, vals)


def power_control_auction(
    n: int, k: int, seed, alpha: float = 3.0, beta: float = 1.5
) -> AuctionProblem:
    """Power-control auction (E7)."""
    rng = ensure_rng(seed)
    links = random_links(n, length_range=DEFAULT_LENGTHS, seed=rng)
    structure = power_control_structure(links, alpha, beta)
    vals = random_xor_valuations(n, k, seed=rng)
    return AuctionProblem(structure, k, vals)


def theorem18_auction(
    n: int, d: int, k: int, seed
) -> tuple[AsymmetricAuctionProblem, object]:
    """Theorem 18 hardness instance: edge-partitioned regular graph with
    all-or-nothing bidders (E9).  Returns (problem, base graph)."""
    base = random_regular_graph(n, d, seed=seed)
    ordering = VertexOrdering.identity(n)
    graphs = theorem18_edge_partition(base, k, ordering)
    rho = max(1, -(-d // k))  # ⌈d/k⌉
    vals = all_or_nothing_valuations(n, k)
    return AsymmetricAuctionProblem(graphs, ordering, rho, vals), base
