"""Experiment runners: one function per paper claim (see the experiment
index in DESIGN.md).

Every runner is deterministic from its seed, returns an
:class:`ExperimentOutput` holding a printable table plus machine-readable
summary stats, and is sized so the full benchmark suite finishes in
minutes on a laptop.  The benchmarks in ``benchmarks/`` are thin wrappers
that time these runners and persist the tables under
``benchmarks/results/``.

Repetition loops route through :mod:`repro.engine`: the LP is compiled and
solved once per instance and the rounding repetitions run on the
vectorized kernels with per-repetition child RNGs, which draw exactly the
same uniforms as the original sequential loops — the tables and summary
stats are bit-identical to the seed pipeline, only faster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP
from repro.core.asymmetric import AsymmetricAuctionLP, round_asymmetric
from repro.core.baselines import (
    edge_lp_value,
    greedy_channel_allocation,
    local_ratio_independent_set,
)
from repro.core.column_generation import solve_with_column_generation
from repro.core.conflict_resolution import make_fully_feasible
from repro.core.derandomize import derandomize_rounding
from repro.core.exact import solve_exact
from repro.core.rounding import default_scale
from repro.core.solver import SpectrumAuctionSolver
from repro.engine import compile_auction, round_batch, stack_draws
from repro.experiments import workloads
from repro.geometry.disks import random_disk_instance
from repro.geometry.links import random_links
from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.generators import clique
from repro.graphs.independence import max_weight_independent_set
from repro.graphs.inductive import (
    inductive_independence_number,
    rho_of_ordering,
    weighted_rho_of_ordering,
)
from repro.interference.base import ConflictStructure
from repro.interference.civilized import (
    CivilizedInstance,
    civilized_distance2_model,
)
from repro.interference.disk import (
    DISK_RHO_BOUND,
    DISTANCE2_DISK_RHO_BOUND,
    distance2_coloring_model,
)
from repro.interference.physical import (
    linear_power,
    mean_power,
    physical_model_structure,
    uniform_power,
)
from repro.interference.protocol import protocol_model, protocol_rho_bound
from repro.mechanism.lavi_swamy import decompose_lp_solution
from repro.mechanism.truthful import TruthfulMechanism
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.tables import Table
from repro.valuations.explicit import XORValuation
from repro.valuations.generators import random_xor_valuations

__all__ = ["ExperimentOutput"] + [f"run_e{i}" for i in range(1, 17)] + [
    "run_a1_split_ablation",
    "run_a2_resolution_ablation",
    "run_a3_scaling_ablation",
    "run_a4_clip_ablation",
    "run_a5_derandomization_comparison",
    "run_a6_ordering_sensitivity",
]


@dataclass
class ExperimentOutput:
    """A printable table plus the summary stats tests assert on."""

    experiment: str
    table: Table
    summary: dict = field(default_factory=dict)
    chart: str = ""

    def render(self) -> str:
        body = f"== {self.experiment} ==\n{self.table.render()}"
        if self.chart:
            body += "\n\n" + self.chart
        return body


def _rounded_welfares(problem, lp_solution, reps, seed, **plan_kwargs) -> list[float]:
    """Welfare of one rounding repetition per child RNG, engine-vectorized.

    Each repetition draws the same uniforms its child generator would feed
    the sequential Algorithm 1/2 loop, so the values match the seed
    pipeline exactly (weighted problems: partly-feasible welfare, finish
    with Algorithm 3 separately).
    """
    resolve = plan_kwargs.pop("resolve", "survivors")
    compiled = compile_auction(problem)
    plan = compiled.rounding_plan(lp_solution, **plan_kwargs)
    draws = stack_draws(spawn_rngs(seed, reps), plan.width)
    outcome = round_batch(compiled, plan, draws, resolve=resolve)
    return [problem.welfare(alloc) for alloc in outcome.allocations]


def _mean_rounded_welfare(problem, lp_solution, reps, seed) -> tuple[float, float]:
    values = _rounded_welfares(problem, lp_solution, reps, seed)
    return float(np.mean(values)), float(np.max(values))


# ----------------------------------------------------------------------
# E1 — Theorem 3: Algorithm 1 meets b*/(8√k ρ); ratio scales like √k.
# ----------------------------------------------------------------------
def run_e1(n: int = 40, ks=(1, 2, 4, 9, 16), reps: int = 20, seed: int = 11) -> ExperimentOutput:
    table = Table(
        ["k", "lp_value", "mean_welfare", "emp_ratio", "bound_8sqrtk_rho", "bound_met"]
    )
    ratios = []
    all_met = True
    for k in ks:
        problem = workloads.protocol_auction(n, k, seed=seed + k)
        lp = compile_auction(problem).solve_lp()
        mean_w, _ = _mean_rounded_welfare(problem, lp, reps, seed + 100 + k)
        bound = 8.0 * math.sqrt(k) * problem.rho
        met = mean_w >= lp.value / bound - 1e-9
        all_met &= met
        ratio = lp.value / mean_w if mean_w > 0 else float("inf")
        ratios.append(ratio)
        table.add_row(k, lp.value, mean_w, ratio, bound, met)
    from repro.util.ascii_plot import bar_chart

    chart = bar_chart(
        [f"k={k}" for k in ks],
        ratios,
        title="empirical LP/welfare ratio vs k (bound grows as 8sqrt(k)rho)",
    )
    return ExperimentOutput(
        "E1 Theorem 3: unweighted rounding vs k",
        table,
        {"all_bounds_met": all_met, "ratios": ratios, "ks": list(ks)},
        chart=chart,
    )


# ----------------------------------------------------------------------
# E2 — Proposition 9: disk graphs have ρ ≤ 5.
# ----------------------------------------------------------------------
def run_e2(ns=(20, 40, 80, 160), reps: int = 3, seed: int = 21) -> ExperimentOutput:
    table = Table(["n", "max_rho_ordering", "max_rho_exact", "bound"])
    worst = 0
    for n in ns:
        ordered, exact = 0, 0
        for child in spawn_rngs(seed + n, reps):
            inst = random_disk_instance(n, seed=child, radius_range=(0.03, 0.15))
            ordered = max(ordered, rho_of_ordering(inst.graph, inst.ordering))
            exact = max(exact, inductive_independence_number(inst.graph)[0])
        worst = max(worst, ordered)
        table.add_row(n, ordered, exact, DISK_RHO_BOUND)
    return ExperimentOutput(
        "E2 Proposition 9: disk-graph rho <= 5",
        table,
        {"worst_measured": worst, "bound": DISK_RHO_BOUND},
    )


# ----------------------------------------------------------------------
# E3 — Proposition 13: protocol-model ρ bound over Δ.
# ----------------------------------------------------------------------
def run_e3(deltas=(0.5, 1.0, 2.0, 4.0), n: int = 50, reps: int = 3, seed: int = 31) -> ExperimentOutput:
    table = Table(["delta", "max_rho_ordering", "bound"])
    ok = True
    for delta in deltas:
        measured = 0
        for child in spawn_rngs(seed + int(delta * 10), reps):
            links = random_links(n, length_range=(0.02, 0.08), seed=child)
            cs = protocol_model(links, delta)
            measured = max(measured, rho_of_ordering(cs.graph, cs.ordering))
        bound = protocol_rho_bound(delta)
        ok &= measured <= bound
        table.add_row(delta, measured, bound)
    return ExperimentOutput(
        "E3 Proposition 13: protocol-model rho vs delta",
        table,
        {"all_within_bound": ok},
    )


# ----------------------------------------------------------------------
# E4 — Propositions 11/12: distance-2 coloring ρ bounds.
# ----------------------------------------------------------------------
def run_e4(n: int = 25, ratios=(2.0, 3.0, 4.0), seed: int = 41) -> ExperimentOutput:
    table = Table(["model", "r_over_s", "measured_rho", "bound"])
    ok = True
    s = 0.05
    for r_over_s in ratios:
        r = r_over_s * s
        inst = CivilizedInstance.sample(n, r=r, s=s, seed=seed + int(r_over_s))
        cs = civilized_distance2_model(inst)
        measured = rho_of_ordering(cs.graph, cs.ordering)
        ok &= measured <= cs.rho
        table.add_row("civilized", r_over_s, measured, cs.rho)
    disk = random_disk_instance(n, seed=seed, radius_range=(0.04, 0.12))
    cs = distance2_coloring_model(disk)
    measured = rho_of_ordering(cs.graph, cs.ordering)
    ok &= measured <= DISTANCE2_DISK_RHO_BOUND
    table.add_row("disk", "-", measured, DISTANCE2_DISK_RHO_BOUND)
    return ExperimentOutput(
        "E4 Propositions 11/12: distance-2 coloring rho",
        table,
        {"all_within_bound": ok},
    )


# ----------------------------------------------------------------------
# E5 — Proposition 15: physical model fixed powers, ρ = O(log n).
# ----------------------------------------------------------------------
def run_e5(ns=(10, 20, 40, 80), schemes=("uniform", "linear", "mean"), seed: int = 51) -> ExperimentOutput:
    from repro.util.ascii_plot import bar_chart

    table = Table(["scheme", "n", "rho_lower", "rho_upper", "upper_over_log2n"])
    max_normalized = 0.0
    mean_upper_by_n: dict[int, list[float]] = {n: [] for n in ns}
    for scheme in schemes:
        for n in ns:
            links = random_links(n, length_range=(0.02, 0.08), seed=seed + n)
            power = {
                "uniform": lambda: uniform_power(links),
                "linear": lambda: linear_power(links, 3.0),
                "mean": lambda: mean_power(links, 3.0),
            }[scheme]()
            structure = physical_model_structure(links, power)
            bounds = weighted_rho_of_ordering(
                structure.graph, structure.ordering, heavy_threshold=0.05
            )
            normalized = bounds.upper / math.log2(max(2, n))
            max_normalized = max(max_normalized, normalized)
            mean_upper_by_n[n].append(bounds.upper)
            table.add_row(scheme, n, bounds.lower, bounds.upper, normalized)
    chart = bar_chart(
        [f"n={n}" for n in ns],
        [float(np.mean(mean_upper_by_n[n])) for n in ns],
        title="mean rho upper bound vs n (O(log n) shape: ~+1 per doubling)",
    )
    return ExperimentOutput(
        "E5 Proposition 15: physical-model rho growth",
        table,
        {"max_rho_over_log2n": max_normalized},
        chart=chart,
    )


# ----------------------------------------------------------------------
# E6 — Lemmas 7+8: weighted rounding + Algorithm 3.
# ----------------------------------------------------------------------
def run_e6(n: int = 30, ks=(1, 4, 9), reps: int = 15, seed: int = 61) -> ExperimentOutput:
    table = Table(
        ["k", "lp_value", "mean_welfare", "bound", "bound_met", "max_alg3_rounds", "log2n_cap"]
    )
    all_met = True
    rounds_ok = True
    for k in ks:
        problem = workloads.physical_auction(n, k, seed=seed + k)
        compiled = compile_auction(problem)
        lp = compiled.solve_lp()
        log_cap = math.ceil(math.log2(max(2, n)))
        plan = compiled.rounding_plan(lp)
        draws = stack_draws(spawn_rngs(seed + 100 + k, reps), plan.width)
        outcome = round_batch(compiled, plan, draws)
        values, max_rounds = [], 0
        for partly in outcome.allocations:
            res = make_fully_feasible(problem, partly)
            values.append(problem.welfare(res.allocation))
            max_rounds = max(max_rounds, res.rounds)
        mean_w = float(np.mean(values))
        bound = 16.0 * math.sqrt(k) * problem.rho * log_cap
        met = mean_w >= lp.value / bound - 1e-9
        all_met &= met
        rounds_ok &= max_rounds <= log_cap
        table.add_row(k, lp.value, mean_w, bound, met, max_rounds, log_cap)
    return ExperimentOutput(
        "E6 Lemmas 7+8: weighted rounding + Algorithm 3",
        table,
        {"all_bounds_met": all_met, "rounds_within_log": rounds_ok},
    )


# ----------------------------------------------------------------------
# E7 — Theorem 17: power control end-to-end.
# ----------------------------------------------------------------------
def run_e7(n: int = 24, ks=(1, 4), reps: int = 10, seed: int = 71) -> ExperimentOutput:
    table = Table(["k", "lp_value", "mean_welfare", "sinr_ok_fraction", "mean_winners"])
    sinr_all_ok = True
    for k in ks:
        problem = workloads.power_control_auction(n, k, seed=seed + k)
        solver = SpectrumAuctionSolver(problem)
        lp = solver.solve_lp()
        welfare, sinr_ok, winners = [], 0, []
        for child in spawn_rngs(seed + 100 + k, reps):
            # engine path: the LP is solved once above and reused per rep
            result = solver.solve(seed=child, lp_solution=lp)
            welfare.append(result.welfare)
            sinr_ok += bool(result.sinr_feasible)
            winners.append(len([v for v, s in result.allocation.items() if s]))
        frac = sinr_ok / reps
        sinr_all_ok &= sinr_ok == reps
        table.add_row(k, lp.value, float(np.mean(welfare)), frac, float(np.mean(winners)))
    return ExperimentOutput(
        "E7 Theorem 17: power control end-to-end",
        table,
        {"sinr_always_feasible": sinr_all_ok},
    )


# ----------------------------------------------------------------------
# E8 — Section 5: Lavi–Swamy mechanism.
# ----------------------------------------------------------------------
def run_e8(n: int = 10, k: int = 3, misreports: int = 4, seed: int = 81) -> ExperimentOutput:
    problem = workloads.protocol_auction(n, k, seed=seed, bids_per_bidder=2)
    solution = SpectrumAuctionSolver(problem).solve_lp("explicit")
    dec = decompose_lp_solution(problem, solution, seed=seed)
    mass = dec.pair_mass()
    mass_err = max(
        (abs(mass[p] - dec.target[p]) for p in dec.target), default=0.0
    )
    welfare_err = abs(dec.expected_welfare() - solution.value / dec.alpha)

    # fast-vs-reference parity on this instance: the compiled default path
    # must publish the same distribution (bit-identical marginals, identical
    # pool) and the same payoffs (within VCG-probe tolerance) as the
    # pre-fast-path pipeline, which stays available as pricing="reference"
    mech = TruthfulMechanism(problem.structure, k)
    truth = mech.run(problem.valuations, seed=seed, sample=False)
    reference = TruthfulMechanism(problem.structure, k, pricing="reference").run(
        problem.valuations, seed=seed, sample=False
    )
    marginals_identical = truth.decomposition.target == reference.decomposition.target
    pool_identical = (
        truth.decomposition.allocations == reference.decomposition.allocations
    )
    payment_gap = float(np.abs(truth.payments - reference.payments).max())
    rng = ensure_rng(seed + 1)
    max_gain = -math.inf
    for bidder in range(min(4, n)):
        true_val = problem.valuations[bidder]
        u_truth = truth.expected_utility(bidder, true_val)
        for _ in range(misreports):
            lied = list(problem.valuations)
            lied[bidder] = XORValuation(
                k,
                {b: float(rng.integers(1, 150)) for b in true_val.support()},
            )
            out = mech.run(lied, seed=int(rng.integers(2**31)), sample=False)
            max_gain = max(max_gain, out.expected_utility(bidder, true_val) - u_truth)

    revenue = float(truth.payments.sum())
    table = Table(["metric", "value"], precision=9)
    table.add_row("decomposition pair-mass error", mass_err)
    table.add_row("E[welfare] - b*/alpha error", welfare_err)
    table.add_row("max misreport utility gain", max_gain)
    table.add_row("alpha", dec.alpha)
    table.add_row("pool size", len(dec.allocations))
    table.add_row("total scaled-VCG revenue", revenue)
    table.add_row("fast-vs-reference payment gap", payment_gap)
    table.add_row("fast-vs-reference marginals identical", float(marginals_identical))
    return ExperimentOutput(
        "E8 Section 5: truthful-in-expectation mechanism",
        table,
        {
            "mass_error": mass_err,
            "welfare_error": welfare_err,
            "max_misreport_gain": max_gain,
            "revenue": revenue,
            "payment_parity_gap": payment_gap,
            "marginals_identical": bool(marginals_identical),
            "pool_identical": bool(pool_identical),
        },
    )


# ----------------------------------------------------------------------
# E9 — Theorem 18 / Section 6: asymmetric channels.
# ----------------------------------------------------------------------
def run_e9(n: int = 24, d: int = 8, ks=(1, 2, 4, 8), reps: int = 20, seed: int = 91) -> ExperimentOutput:
    table = Table(
        ["k", "rho", "lp_value", "opt_alpha_G", "mean_welfare", "emp_ratio", "bound_4k_rho", "bound_met"]
    )
    all_met = True
    for k in ks:
        problem, base = workloads.theorem18_auction(n, d, k, seed=seed)
        solution = AsymmetricAuctionLP(problem).solve()
        _, opt = max_weight_independent_set(base)
        values = [
            problem.welfare(round_asymmetric(problem, solution, child)[0])
            for child in spawn_rngs(seed + k, reps)
        ]
        mean_w = float(np.mean(values))
        bound = 4.0 * k * problem.rho
        met = mean_w >= solution.value / bound - 1e-9
        all_met &= met
        ratio = solution.value / mean_w if mean_w > 0 else float("inf")
        table.add_row(k, problem.rho, solution.value, opt, mean_w, ratio, bound, met)
    return ExperimentOutput(
        "E9 Theorem 18: asymmetric channels",
        table,
        {"all_bounds_met": all_met},
    )


# ----------------------------------------------------------------------
# E10 — Section 2.1: edge-LP clique gap vs the inductive LP.
# ----------------------------------------------------------------------
def run_e10(ns=(4, 8, 16, 32, 64), seed: int = 101) -> ExperimentOutput:
    table = Table(["n", "opt", "edge_lp", "edge_gap", "inductive_lp", "inductive_gap"])
    max_inductive_gap = 0.0
    for n in ns:
        graph = clique(n)
        profits = np.ones(n)
        _, edge_value = edge_lp_value(graph, profits)
        structure = ConflictStructure(graph, VertexOrdering.identity(n), rho=1.0)
        vals = [XORValuation(1, {frozenset({0}): 1.0}) for _ in range(n)]
        problem = AuctionProblem(structure, 1, vals)
        inductive_value = AuctionLP(problem).solve().value
        opt = 1.0  # best feasible: one winner on a clique
        max_inductive_gap = max(max_inductive_gap, inductive_value / opt)
        table.add_row(
            n, opt, edge_value, edge_value / opt, inductive_value, inductive_value / opt
        )
    return ExperimentOutput(
        "E10 Section 2.1: clique integrality gaps",
        table,
        {"max_inductive_gap": max_inductive_gap},
    )


# ----------------------------------------------------------------------
# E11 — Who wins: LP rounding vs greedy vs exact optimum.
# ----------------------------------------------------------------------
def run_e11(n: int = 10, k: int = 3, instances: int = 8, seed: int = 111) -> ExperimentOutput:
    table = Table(
        ["instance", "opt", "lp", "rounding_best5", "derandomized", "greedy", "local_ratio_k1"]
    )
    ratios = {"rounding": [], "derandomized": [], "greedy": []}
    for i, child in enumerate(spawn_rngs(seed, instances)):
        inst_seed = int(child.integers(2**31))
        problem = workloads.protocol_auction(n, k, seed=inst_seed, bids_per_bidder=3)
        opt = solve_exact(problem).value
        lp = compile_auction(problem).solve_lp()
        _, best5 = _mean_rounded_welfare(problem, lp, 5, inst_seed + 1)
        der = problem.welfare(derandomize_rounding(problem, lp).allocation)
        greedy = problem.welfare(greedy_channel_allocation(problem))
        # Local ratio on channel 0's projection (k=1 reference point).
        profits = np.array(
            [problem.valuations[v].value(frozenset({0})) for v in range(n)]
        )
        _, lr = local_ratio_independent_set(
            problem.graph, problem.ordering, profits
        )
        if opt > 0:
            ratios["rounding"].append(best5 / opt)
            ratios["derandomized"].append(der / opt)
            ratios["greedy"].append(greedy / opt)
        table.add_row(i, opt, lp.value, best5, der, greedy, lr)
    summary = {name: float(np.mean(vals)) for name, vals in ratios.items()}
    return ExperimentOutput(
        "E11 empirical comparison vs exact optimum",
        table,
        summary,
    )


# ----------------------------------------------------------------------
# E12 — Section 2.2: demand-oracle column generation.
# ----------------------------------------------------------------------
def run_e12(n: int = 30, ks=(4, 8, 16, 32), seed: int = 121) -> ExperimentOutput:
    # A dense disk instance (ρ = 5, many conflicts) makes the packing rows
    # bind, so pricing must run several rounds before the duals settle.
    from repro.interference.disk import disk_transmitter_model
    from repro.valuations.generators import random_capped_additive_valuations

    table = Table(
        ["k", "colgen_value", "explicit_value", "iterations", "columns", "oracle_calls"]
    )
    agree = True
    inst = random_disk_instance(n, seed=seed, radius_range=(0.15, 0.3))
    structure = disk_transmitter_model(inst)
    max_iters = 0
    for k in ks:
        vals = random_capped_additive_valuations(n, k, seed=seed + k)
        problem = AuctionProblem(structure, k, vals)
        cg = solve_with_column_generation(problem)
        max_iters = max(max_iters, cg.iterations)
        if 2**k <= 2048:
            explicit = AuctionLP(problem).solve().value
            agree &= abs(cg.solution.value - explicit) <= 1e-5 * max(1.0, explicit)
            explicit_str = explicit
        else:
            explicit_str = float("nan")
        table.add_row(
            k,
            cg.solution.value,
            explicit_str,
            cg.iterations,
            cg.columns_generated,
            cg.oracle_calls,
        )
    return ExperimentOutput(
        "E12 Section 2.2: column generation with demand oracles",
        table,
        {"values_agree": agree, "max_iterations": max_iters},
    )


# ----------------------------------------------------------------------
# E13 — derandomized rounding meets the bound deterministically.
# ----------------------------------------------------------------------
def run_e13(n: int = 40, ks=(1, 4, 9), seed: int = 131) -> ExperimentOutput:
    table = Table(["k", "lp_value", "derand_welfare", "bound", "bound_met"])
    all_met = True
    for k in ks:
        problem = workloads.protocol_auction(n, k, seed=seed + k)
        lp = compile_auction(problem).solve_lp()
        result = derandomize_rounding(problem, lp)
        welfare = problem.welfare(result.allocation)
        bound = lp.value / (8.0 * math.sqrt(k) * problem.rho)
        met = welfare >= bound - 1e-9
        all_met &= met
        table.add_row(k, lp.value, welfare, bound, met)
    return ExperimentOutput(
        "E13 derandomized rounding (deterministic bound)",
        table,
        {"all_bounds_met": all_met},
    )


# ----------------------------------------------------------------------
# E14 — Theorem 17's two regimes: fading (Euclidean) vs general metrics.
# ----------------------------------------------------------------------
def run_e14(ns=(10, 20, 40), alphas=(1.5, 2.5, 3.5), seed: int = 141) -> ExperimentOutput:
    """Theorem 17's *fading metric* hypothesis, probed via the path-loss
    exponent: the plane has doubling dimension 2, so α > 2 is fading
    (O(1) promised) and α < 2 is not (only the general O(log n) bound
    applies).  Measured ρ(π) of the Theorem 17 weighted graph should be
    larger and grow faster for α below 2.  A homogeneous shortest-path
    metric is included for reference: there everything interferes with
    everything, the clipped graph degenerates to all-pairs conflicts and
    ρ collapses to 1 (only singleton independent sets)."""
    from repro.geometry.links import random_metric_links
    from repro.graphs.independence import greedy_weighted_independent_set
    from repro.interference.power_control import power_control_structure

    table = Table(["setting", "n", "rho_upper", "greedy_IS_size", "parallelism"])
    parallelism: dict[str, list[float]] = {"fading": [], "nonfading": []}

    def measure(label: str, links, n: int, alpha: float, bucket: str | None) -> None:
        structure = power_control_structure(links, alpha=alpha)
        bounds = weighted_rho_of_ordering(
            structure.graph, structure.ordering, heavy_threshold=0.05
        )
        members, _ = greedy_weighted_independent_set(
            structure.graph, np.ones(n)
        )
        frac = len(members) / n
        if bucket:
            parallelism[bucket].append(frac)
        table.add_row(label, n, bounds.upper, len(members), frac)

    for alpha in alphas:
        for n in ns:
            links = random_links(n, length_range=(0.02, 0.08), seed=seed + n)
            bucket = "fading" if alpha > 2 else "nonfading"
            label = f"alpha={alpha}" + (" (fading)" if alpha > 2 else " (non-fading)")
            measure(label, links, n, alpha, bucket)
    for n in ns:
        links = random_metric_links(n, seed=seed + n)
        measure("shortest-path metric", links, n, 3.0, None)
    return ExperimentOutput(
        "E14 Theorem 17: fading (alpha>2) vs non-fading exponents",
        table,
        {
            "mean_parallelism_fading": float(np.mean(parallelism["fading"])),
            "mean_parallelism_nonfading": float(np.mean(parallelism["nonfading"])),
        },
    )


# ----------------------------------------------------------------------
# E15 — scheduling extension: channels needed to serve everyone.
# ----------------------------------------------------------------------
def run_e15(ns=(20, 40, 80), seed: int = 151) -> ExperimentOutput:
    """Extension (Section 1.2 related work): greedy peeling scheduler on
    the auction substrate.  Reports channels needed vs. n and vs. the
    max-degree+1 coloring bound."""
    from repro.core.scheduling import schedule_all
    from repro.interference.disk import disk_transmitter_model

    table = Table(["model", "n", "channels_used", "max_degree_plus1", "valid"])
    all_valid = True
    for n in ns:
        links = random_links(n, length_range=(0.02, 0.08), seed=seed + n)
        cs = protocol_model(links, 1.0)
        sched = schedule_all(cs)
        valid = sched.validate(cs.graph)
        all_valid &= valid
        table.add_row("protocol", n, sched.num_channels, cs.graph.max_degree() + 1, valid)
        inst = random_disk_instance(n, seed=seed + n)
        ds = disk_transmitter_model(inst)
        sched_d = schedule_all(ds)
        valid_d = sched_d.validate(ds.graph)
        all_valid &= valid_d
        table.add_row("disk", n, sched_d.num_channels, ds.graph.max_degree() + 1, valid_d)
    return ExperimentOutput(
        "E15 scheduling extension: channels to serve all bidders",
        table,
        {"all_valid": all_valid},
    )


# ----------------------------------------------------------------------
# E16 — online arrival baseline (related work [9]) vs offline optimum.
# ----------------------------------------------------------------------
def run_e16(n: int = 10, k: int = 3, instances: int = 6, orders: int = 10, seed: int = 161) -> ExperimentOutput:
    """Competitive ratio of the online greedy against the offline exact
    optimum, over random arrival orders."""
    from repro.core.online import online_greedy

    table = Table(["instance", "opt", "online_mean", "online_worst", "competitive_mean"])
    ratios = []
    for i, child in enumerate(spawn_rngs(seed, instances)):
        inst_seed = int(child.integers(2**31))
        problem = workloads.protocol_auction(n, k, seed=inst_seed, bids_per_bidder=3)
        opt = solve_exact(problem).value
        values = [
            online_greedy(problem, seed=order_rng).welfare
            for order_rng in spawn_rngs(inst_seed + 1, orders)
        ]
        mean_v, worst_v = float(np.mean(values)), float(np.min(values))
        comp = mean_v / opt if opt > 0 else 1.0
        ratios.append(comp)
        table.add_row(i, opt, mean_v, worst_v, comp)
    return ExperimentOutput(
        "E16 online greedy vs offline optimum (extension)",
        table,
        {"mean_competitive_ratio": float(np.mean(ratios))},
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def run_a1_split_ablation(n: int = 40, k: int = 16, reps: int = 30, seed: int = 141) -> ExperimentOutput:
    """A1: the √k bundle-size split (Algorithm 1 line 1) on/off."""
    problem = workloads.protocol_auction(n, k, seed=seed, bids_per_bidder=4)
    lp = compile_auction(problem).solve_lp()
    table = Table(["variant", "mean_welfare"])
    out = {}
    for split in (True, False):
        values = _rounded_welfares(problem, lp, reps, seed + split, split=split)
        out["split" if split else "no_split"] = float(np.mean(values))
        table.add_row("split" if split else "no_split", float(np.mean(values)))
    return ExperimentOutput("A1 bundle-size split ablation", table, out)


def run_a2_resolution_ablation(n: int = 40, k: int = 4, reps: int = 30, seed: int = 151) -> ExperimentOutput:
    """A2: conflict resolution against survivors vs tentative bundles."""
    problem = workloads.protocol_auction(n, k, seed=seed)
    lp = compile_auction(problem).solve_lp()
    table = Table(["variant", "mean_welfare"])
    out = {}
    for mode in ("survivors", "tentative"):
        values = _rounded_welfares(problem, lp, reps, seed, resolve=mode)
        out[mode] = float(np.mean(values))
        table.add_row(mode, float(np.mean(values)))
    return ExperimentOutput("A2 conflict-resolution reference ablation", table, out)


def run_a3_scaling_ablation(n: int = 40, k: int = 4, reps: int = 30, seed: int = 161) -> ExperimentOutput:
    """A3: rounding scale multiplier (paper: 2√kρ)."""
    problem = workloads.protocol_auction(n, k, seed=seed)
    lp = compile_auction(problem).solve_lp()
    base = default_scale(problem)
    table = Table(["scale_multiplier", "scale", "mean_welfare"])
    out = {}
    for mult in (0.25, 0.5, 1.0, 2.0):
        scale = max(1.0, base * mult)
        values = _rounded_welfares(
            problem, lp, reps, seed + int(mult * 100), scale=scale
        )
        out[mult] = float(np.mean(values))
        table.add_row(mult, scale, float(np.mean(values)))
    return ExperimentOutput("A3 rounding-scale ablation", table, out)


def run_a6_ordering_sensitivity(
    n: int = 30, k: int = 4, seed: int = 191
) -> ExperimentOutput:
    """A6: how ordering quality propagates through the pipeline.

    Runs the same protocol-model auction with four orderings — the model's
    certified one, exact-optimal, degeneracy, and random — each paired with
    its *measured* ρ(π) in the LP.  Worse orderings inflate ρ, loosening the
    LP and deflating the derandomized welfare."""
    from repro.graphs.inductive import inductive_independence_number
    from repro.graphs.orderings import degeneracy_ordering, random_ordering
    from repro.interference.base import ConflictStructure

    base = workloads.protocol_auction(n, k, seed=seed)
    graph = base.graph
    exact_rho, exact_order = inductive_independence_number(graph)
    candidates = {
        "certified (length)": base.ordering,
        "exact-optimal": exact_order,
        "degeneracy": degeneracy_ordering(graph),
        "random": random_ordering(graph, seed=seed),
    }
    table = Table(["ordering", "rho_pi", "lp_value", "derand_welfare"])
    out: dict[str, dict] = {}
    for name, ordering in candidates.items():
        rho_pi = max(1, rho_of_ordering(graph, ordering))
        structure = ConflictStructure(graph, ordering, float(rho_pi), "measured")
        problem = AuctionProblem(structure, k, base.valuations)
        lp = AuctionLP(problem).solve()
        welfare = problem.welfare(derandomize_rounding(problem, lp).allocation)
        out[name] = {"rho": rho_pi, "lp": lp.value, "welfare": welfare}
        table.add_row(name, rho_pi, lp.value, welfare)
    return ExperimentOutput(
        "A6 ordering-quality sensitivity",
        table,
        out,
    )


def run_a5_derandomization_comparison(
    n: int = 30, k: int = 4, reps: int = 30, seed: int = 181
) -> ExperimentOutput:
    """A5: conditional expectations vs pairwise-independent seed space vs
    randomized rounding (mean and best-of-reps)."""
    from repro.core.pairwise import pairwise_derandomize

    problem = workloads.protocol_auction(n, k, seed=seed)
    lp = compile_auction(problem).solve_lp()
    cond = problem.welfare(derandomize_rounding(problem, lp).allocation)
    pw = pairwise_derandomize(problem, lp, max_seeds=8000)
    rand_vals = _rounded_welfares(problem, lp, reps, seed)
    table = Table(["method", "welfare", "deterministic"])
    table.add_row("conditional expectations", cond, True)
    table.add_row(f"pairwise q={pw.q}", pw.welfare, True)
    table.add_row(f"randomized mean ({reps} reps)", float(np.mean(rand_vals)), False)
    table.add_row(f"randomized best-of-{reps}", float(np.max(rand_vals)), False)
    return ExperimentOutput(
        "A5 derandomization strategies",
        table,
        {
            "conditional": cond,
            "pairwise": pw.welfare,
            "randomized_mean": float(np.mean(rand_vals)),
            "randomized_best": float(np.max(rand_vals)),
        },
    )


def run_a4_clip_ablation(n: int = 25, k: int = 2, reps: int = 10, seed: int = 171) -> ExperimentOutput:
    """A4: Theorem 17 weights raw vs clipped at 1."""
    from repro.interference.power_control import power_control_structure

    rng = ensure_rng(seed)
    links = random_links(n, length_range=(0.02, 0.08), seed=rng)
    vals = random_xor_valuations(n, k, seed=rng)
    table = Table(["variant", "rho", "lp_value", "mean_welfare"])
    out = {}
    for clip in (True, False):
        structure = power_control_structure(links, clip=clip)
        problem = AuctionProblem(structure, k, vals)
        compiled = compile_auction(problem)
        lp = compiled.solve_lp()
        plan = compiled.rounding_plan(lp)
        draws = stack_draws(spawn_rngs(seed + clip, reps), plan.width)
        values = []
        for partly in round_batch(compiled, plan, draws).allocations:
            res = make_fully_feasible(problem, partly)
            values.append(problem.welfare(res.allocation))
        name = "clipped" if clip else "raw"
        out[name] = {"rho": structure.rho, "welfare": float(np.mean(values))}
        table.add_row(name, structure.rho, lp.value, float(np.mean(values)))
    return ExperimentOutput("A4 Theorem-17 weight clipping ablation", table, out)
