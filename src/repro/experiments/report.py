"""Run the whole experiment suite and render a single report.

Programmatic:

    from repro.experiments.report import run_all, render_report
    outputs = run_all()
    print(render_report(outputs))

Command line:

    python -m repro.experiments                 # run everything
    python -m repro.experiments E1 E10 A3       # run a subset
    python -m repro.experiments --list          # show available ids
"""

from __future__ import annotations

import sys
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.harness import ExperimentOutput

__all__ = ["run_all", "render_report", "main"]


def run_all(ids: list[str] | None = None) -> dict[str, tuple[ExperimentOutput, float]]:
    """Run the selected experiments (all by default); returns
    id → (output, wall seconds)."""
    selected = list(ALL_EXPERIMENTS) if not ids else ids
    unknown = [i for i in selected if i not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")
    results: dict[str, tuple[ExperimentOutput, float]] = {}
    for exp_id in selected:
        start = time.perf_counter()
        output = ALL_EXPERIMENTS[exp_id]()
        results[exp_id] = (output, time.perf_counter() - start)
    return results


def render_report(results: dict[str, tuple[ExperimentOutput, float]]) -> str:
    """One text block per experiment, plus a timing footer."""
    blocks = []
    for exp_id, (output, seconds) in results.items():
        blocks.append(f"{output.render()}\n[{exp_id}: {seconds:.2f}s]")
    total = sum(seconds for _, seconds in results.values())
    blocks.append(f"total: {len(results)} experiments in {total:.1f}s")
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if "--list" in args:
        print("available experiments:", ", ".join(ALL_EXPERIMENTS))
        return 0
    ids = [a for a in args if not a.startswith("-")] or None
    try:
        results = run_all(ids)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(render_report(results))
    return 0
