"""reprolint: determinism/concurrency/parity static analysis.

Run as ``python -m repro.analysis`` (or the ``reprolint`` console
script).  See DESIGN.md for the invariant catalogue and the
pragma/baseline workflow.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, split_findings
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.engine import FileContext, analyze_paths, build_context
from repro.analysis.rules import ALL_RULES, Finding, Rule, rule_index

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "Baseline",
    "DEFAULT_CONFIG",
    "FileContext",
    "Finding",
    "Rule",
    "analyze_paths",
    "build_context",
    "rule_index",
    "split_findings",
]
