"""Project configuration for the reprolint rule families.

Paths in this module are POSIX-style globs relative to the scanned
package root (the ``repro`` package directory), e.g. ``util/rng.py`` or
``engine/*.py``.  The defaults encode this repository's determinism
contract; tests inject narrower configs around fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch

__all__ = ["AnalysisConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunable scope of the rule families (all path entries are globs)."""

    # modules allowed to touch global RNG machinery (the seeded-RNG funnel)
    rng_allowed: tuple[str, ...] = ("util/rng.py",)
    # modules where wall-clock reads are legitimate (latency metrics,
    # arrival stamping, report headers) — results never flow from them
    wallclock_allowed: tuple[str, ...] = (
        "service/metrics.py",
        "service/traffic.py",
        "experiments/report.py",
    )
    # the one module allowed to create multiprocessing contexts directly
    mp_allowed: tuple[str, ...] = ("util/mp.py",)
    # modules whose functions are parity-critical kernels: in-place
    # mutation of (values reachable from) parameters is flagged there
    kernel_modules: tuple[str, ...] = (
        "engine/*.py",
        "core/rounding.py",
        "core/derandomize.py",
        "core/conflict_resolution.py",
        "service/scenes.py",
    )
    # call-result types that are safe as module-level state (internally
    # locked or immutable-by-contract)
    module_state_factories: tuple[str, ...] = (
        "LRUCache",
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "local",
        "SimpleQueue",
        "Queue",
        "object",
    )
    # modules allowed to emit key-sorted JSON (the canonical encoder);
    # everywhere else key order is load order and must be preserved
    json_sort_allowed: tuple[str, ...] = ("io.py",)
    # float-equality comparisons allowed without a pragma (none by
    # default: use `# repro: allow[float-eq]` with a justification)
    float_eq_allowed: tuple[str, ...] = ()
    # modules where except-blocks must visibly handle what they catch
    # (re-raise, log, record a metric, or fail a future) — the serving
    # layer's typed-resolution contract makes swallowed exceptions bugs
    silent_except_modules: tuple[str, ...] = ("service/*.py",)
    # modules where a constant-true loop around socket/HTTP calls is
    # flagged: network retries must be bounded with backoff (the
    # resilient-edge contract), never `while True`
    unbounded_retry_modules: tuple[str, ...] = ("service/*.py",)
    # extra per-rule path exemptions: rule id -> glob tuple
    exempt: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def matches(self, rel: str, patterns: tuple[str, ...]) -> bool:
        """Does the package-relative path ``rel`` match any glob?"""
        return any(fnmatch(rel, pattern) for pattern in patterns)

    def exempted(self, rel: str, rule_id: str) -> bool:
        return self.matches(rel, self.exempt.get(rule_id, ()))


DEFAULT_CONFIG = AnalysisConfig()
