"""Rule and Finding primitives shared by every reprolint rule family."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import FileContext

__all__ = ["Finding", "Rule"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location.

    ``context`` is the stripped source line: baselines key on
    ``(rule, path, context)`` plus an occurrence index, so findings stay
    pinned across unrelated edits that only shift line numbers.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    context: str

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.context)

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class Rule:
    """Base class: subclasses set the id/family/invariant and implement
    :meth:`check` yielding findings (pragma filtering happens in the
    engine, not per-rule)."""

    rule_id: str = ""
    family: str = ""
    invariant: str = ""

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=ctx.rel,
            line=line,
            col=col + 1,
            rule=self.rule_id,
            message=message,
            context=ctx.line(line),
        )
