"""Determinism rule family.

Every number this repo reports is pinned to a seed: randomness must flow
through ``repro.util.rng``, iteration order into LP columns and
fingerprints must be explicit, and results must not depend on when they
were computed.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.rules.base import Finding, Rule

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import FileContext

__all__ = ["GlobalRngRule", "SetIterationRule", "JsonSortKeysRule", "WallClockRule"]


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``a.b.c`` attribute chain, or None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# np.random entry points that construct *seeded* generators — the only
# sanctioned way into numpy randomness
_SAFE_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "RandomState",
}

# stdlib random: only explicit instances are seedable per-experiment
_SAFE_STDLIB_RANDOM = {"Random", "SystemRandom"}


class GlobalRngRule(Rule):
    rule_id = "global-rng"
    family = "determinism"
    invariant = (
        "all randomness flows through seeded generators from repro.util.rng; "
        "global-state RNG (np.random.* module functions, stdlib random.*) is "
        "invisible to the seed pipeline and breaks replayability"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        if config.matches(ctx.rel, config.rng_allowed):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.module == "random" and node.level == 0:
                    bad = [
                        a.name for a in node.names if a.name not in _SAFE_STDLIB_RANDOM
                    ]
                    if bad:
                        yield self.finding(
                            ctx,
                            node,
                            f"global-state RNG import from 'random' "
                            f"({', '.join(sorted(bad))}); use repro.util.rng.ensure_rng",
                        )
                elif node.module in ("numpy.random", "np.random"):
                    bad = [a.name for a in node.names if a.name not in _SAFE_NP_RANDOM]
                    if bad:
                        yield self.finding(
                            ctx,
                            node,
                            f"global-state RNG import from 'numpy.random' "
                            f"({', '.join(sorted(bad))}); use repro.util.rng.ensure_rng",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _SAFE_NP_RANDOM
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"call to global-state RNG '{name}'; "
                        "use a Generator from repro.util.rng.ensure_rng",
                    )
                elif (
                    len(parts) == 2
                    and parts[0] == "random"
                    and parts[1] not in _SAFE_STDLIB_RANDOM
                    and "random" in ctx.stdlib_random_aliases
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"call to global-state RNG '{name}'; "
                        "use a Generator from repro.util.rng.ensure_rng",
                    )


def _is_set_producing(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class SetIterationRule(Rule):
    rule_id = "set-iteration"
    family = "determinism"
    invariant = (
        "set iteration order depends on hash seeding; iterating a set "
        "without sorted() can permute LP columns, fingerprints, and "
        "serialized output between runs"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                # list(set(..)) / tuple(set(..)) / enumerate(set(..)) bake
                # the unordered iteration into a sequence
                if node.func.id in ("list", "tuple", "enumerate") and node.args:
                    iters.append(node.args[0])
            for it in iters:
                if _is_set_producing(it):
                    yield self.finding(
                        ctx,
                        it,
                        "iteration over an unordered set; wrap in sorted(...) "
                        "to pin the order",
                    )


class JsonSortKeysRule(Rule):
    rule_id = "json-sort-keys"
    family = "determinism"
    invariant = (
        "outside the canonical encoder, JSON key order is load order; "
        "sort_keys=True silently permutes round-tripped structures "
        "(PR 4: sorted trace JSON permuted LP columns)"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        if config.matches(ctx.rel, config.json_sort_allowed):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) not in ("json.dump", "json.dumps"):
                continue
            for kw in node.keywords:
                if kw.arg == "sort_keys" and not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is False
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "json sort_keys=True outside the canonical encoder "
                        "reorders keys on round-trip; preserve insertion order",
                    )


_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.asctime",
    "time.localtime",
    "time.gmtime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    rule_id = "wall-clock"
    family = "determinism"
    invariant = (
        "result-affecting modules must not read the wall clock; timestamps "
        "belong in metrics/trace/report modules where they cannot reach "
        "solver inputs"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        if config.matches(ctx.rel, config.wallclock_allowed):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read '{name}' in a result-affecting module; "
                    "use time.perf_counter for durations or move the "
                    "timestamp into an allowlisted module",
                )
