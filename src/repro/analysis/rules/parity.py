"""Parity-safety rule family.

Bit-identical parity between the seed pipeline and every fast path is
the repo's acceptance bar.  Exact float comparisons and hidden in-place
mutation of kernel inputs are the two ways a "refactor" silently changes
results.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.rules.base import Finding, Rule
from repro.analysis.rules.determinism import dotted_name

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import FileContext

__all__ = ["FloatEqRule", "KernelMutationRule"]


class FloatEqRule(Rule):
    rule_id = "float-eq"
    family = "parity"
    invariant = (
        "no `==`/`!=` against float literals outside tests: a comparison "
        "that holds on one code path can flip under reordered arithmetic; "
        "compare integers, use tolerances, or annotate exact sentinels"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        if config.matches(ctx.rel, config.float_eq_allowed):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            exprs = [node.left, *node.comparators]
            for op, lhs, rhs in zip(node.ops, exprs, exprs[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (lhs, rhs):
                    if isinstance(side, ast.Constant) and isinstance(side.value, float):
                        yield self.finding(
                            ctx,
                            node,
                            f"exact float comparison against {side.value!r}; "
                            "compare integer counts or use an explicit "
                            "tolerance",
                        )
                        break


# in-place mutators on ndarray / sparse / dict / list / set receivers
_MUTATORS = {
    "sort",
    "sort_indices",
    "sum_duplicates",
    "eliminate_zeros",
    "prune",
    "setdiag",
    "resize",
    "setflags",
    "fill",
    "partition",
    "shuffle",
    "update",
    "clear",
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "setdefault",
    "add",
    "discard",
}


def _root_name(node: ast.expr) -> str | None:
    """Base Name of an attribute/subscript chain: ``a.b[c].d`` -> ``a``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_tainted(node: ast.expr, tainted: set[str]) -> bool:
    """Could ``node`` alias memory reachable from a tainted parameter?
    Calls break taint (``x.copy()``), views and conditionals keep it."""
    if isinstance(node, (ast.Attribute, ast.Subscript, ast.Name)):
        root = _root_name(node)
        return root is not None and root in tainted
    if isinstance(node, ast.IfExp):
        return _is_tainted(node.body, tainted) or _is_tainted(node.orelse, tainted)
    return False


def _expr_children(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Direct expression fields of a statement (bodies of compound
    statements are recursed separately to keep taint tracking ordered)."""
    for _, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item


class KernelMutationRule(Rule):
    rule_id = "kernel-mutation"
    family = "parity"
    invariant = (
        "kernel functions must not mutate their array/sparse parameters in "
        "place: callers reuse compiled structures across runs, so hidden "
        "mutation leaks state between auctions; declare intentional "
        "mutation with `# repro: mutates[name]` on the def line"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        if not config.matches(ctx.rel, config.kernel_modules):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        args = fn.args
        params = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if a.arg not in ("self", "cls")
        ]
        header_end = fn.body[0].lineno if fn.body else fn.lineno + 1
        declared = ctx.pragmas.mutated_params(
            range(fn.lineno, max(header_end, fn.lineno + 1))
        )
        tainted = {p for p in params if p not in declared}
        if not tainted:
            return
        yield from self._scan(ctx, fn.body, tainted)

    def _check_calls(
        self, ctx: FileContext, expr: ast.expr, tainted: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and _is_tainted(func.value, tainted)
            ):
                root = _root_name(func.value)
                yield self.finding(
                    ctx,
                    node,
                    f"call to in-place mutator '.{func.attr}()' on "
                    f"parameter-reachable '{root}'",
                )
            for kw in node.keywords:
                if kw.arg == "out" and _is_tainted(kw.value, tainted):
                    root = _root_name(kw.value)
                    name = dotted_name(func) or "<call>"
                    yield self.finding(
                        ctx,
                        node,
                        f"'{name}(out={root})' writes into a "
                        "parameter-reachable array",
                    )

    def _scan(
        self, ctx: FileContext, body: list[ast.stmt], tainted: set[str]
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # nested defs get their own parameter taint pass
                continue
            for expr in _expr_children(stmt):
                yield from self._check_calls(ctx, expr, tainted)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    yield from self._check_calls(ctx, item.context_expr, tainted)
            if isinstance(stmt, ast.Assign):
                value_tainted = _is_tainted(stmt.value, tainted)
                for target in stmt.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _root_name(target)
                        if root is not None and root in tainted:
                            yield self.finding(
                                ctx,
                                target,
                                f"in-place store into parameter-reachable "
                                f"'{root}' in a kernel function",
                            )
                    elif isinstance(target, ast.Name):
                        # rebinding propagates or clears taint
                        if value_tainted:
                            tainted.add(target.id)
                        else:
                            tainted.discard(target.id)
            elif isinstance(stmt, ast.AugAssign):
                root = _root_name(stmt.target)
                if root is not None and root in tainted:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"augmented assignment mutates parameter-reachable "
                        f"'{root}' in place",
                    )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                # loop variable bound from a tainted iterable stays tainted
                if _is_tainted(stmt.iter, tainted) and isinstance(
                    stmt.target, ast.Name
                ):
                    tainted.add(stmt.target.id)
            # recurse into compound statement bodies in order
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    yield from self._scan(ctx, sub, tainted)
            for handler in getattr(stmt, "handlers", []):
                yield from self._scan(ctx, handler.body, tainted)
