"""Robustness rule family.

The serving layer's fault-tolerance contract (DESIGN.md → "Fault
tolerance & chaos") is that every accepted request resolves to a result
or a *typed* failure.  An ``except`` block that swallows an exception
without doing anything observable breaks that contract silently — the
request neither completes nor fails, it just vanishes from the
accounting.  This family makes the convention machine-checkable.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.rules.base import Finding, Rule
from repro.analysis.rules.determinism import dotted_name

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import FileContext

__all__ = ["SilentExceptRule", "UnboundedRetryRule"]

# call names (last dotted segment) that count as visibly handling the
# caught exception: failing a future, logging, or bumping a metric
_HANDLER_CALLS = {
    "set_exception",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "info",
    "debug",
}
_HANDLER_PREFIXES = ("record_", "log")


def _call_handles(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1]
    return last in _HANDLER_CALLS or last.startswith(_HANDLER_PREFIXES)


def _handler_is_silent(handler: ast.ExceptHandler) -> bool:
    """True when nothing in the handler body re-raises, logs, records a
    metric, or fails a future (nested ``try``/``def`` bodies included —
    handling anywhere in the block counts)."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
        if isinstance(node, ast.Call) and _call_handles(node):
            return False
    return True


# call names (last dotted segment) that reach the network: opening
# connections, HTTP exchanges, and the stream reads/writes under them
_NETWORK_CALLS = {
    "open_connection",
    "create_connection",
    "connect",
    "connect_ex",
    "urlopen",
    "getresponse",
    "request",
    "sendall",
    "readuntil",
    "readexactly",
    "_exchange",
}


def _constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _network_call_in(node: ast.While) -> ast.Call | None:
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        name = dotted_name(child.func)
        if name is not None and name.rsplit(".", 1)[-1] in _NETWORK_CALLS:
            return child
    return None


class UnboundedRetryRule(Rule):
    rule_id = "unbounded-retry"
    family = "robustness"
    invariant = (
        "network retries in the serving layer must be bounded with "
        "backoff (RetryPolicy): a constant-true loop around a socket or "
        "HTTP call retries forever, hammering a struggling peer and "
        "hanging the caller instead of failing typed"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        if not config.matches(ctx.rel, config.unbounded_retry_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While) or not _constant_true(node.test):
                continue
            call = _network_call_in(node)
            if call is not None:
                name = dotted_name(call.func) or "a network call"
                yield self.finding(
                    ctx,
                    node,
                    f"constant-true loop wraps {name}: bound the retries "
                    "and back off (see RetryPolicy) instead of looping "
                    "forever",
                )


class SilentExceptRule(Rule):
    rule_id = "silent-except"
    family = "robustness"
    invariant = (
        "in the serving layer, an except-block must visibly handle what it "
        "catches: re-raise, log, record a metric, or fail a future — "
        "swallowed exceptions make requests vanish from the typed-"
        "resolution accounting"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        if not config.matches(ctx.rel, config.silent_except_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if _handler_is_silent(handler):
                    caught = (
                        ast.unparse(handler.type)
                        if handler.type is not None
                        else "BaseException"
                    )
                    yield self.finding(
                        ctx,
                        handler,
                        f"except block swallows {caught} without re-raising, "
                        "logging, or recording a metric",
                    )
