"""reprolint rule registry."""

from __future__ import annotations

from repro.analysis.rules.base import Finding, Rule
from repro.analysis.rules.concurrency import (
    ForkResetRule,
    GuardedByRule,
    ModuleStateRule,
    MpContextRule,
)
from repro.analysis.rules.determinism import (
    GlobalRngRule,
    JsonSortKeysRule,
    SetIterationRule,
    WallClockRule,
)
from repro.analysis.rules.parity import FloatEqRule, KernelMutationRule
from repro.analysis.rules.robustness import SilentExceptRule, UnboundedRetryRule

__all__ = ["ALL_RULES", "Finding", "Rule", "rule_index"]

ALL_RULES: tuple[Rule, ...] = (
    GlobalRngRule(),
    SetIterationRule(),
    JsonSortKeysRule(),
    WallClockRule(),
    GuardedByRule(),
    ModuleStateRule(),
    MpContextRule(),
    ForkResetRule(),
    FloatEqRule(),
    KernelMutationRule(),
    SilentExceptRule(),
    UnboundedRetryRule(),
)


def rule_index() -> dict[str, Rule]:
    return {rule.rule_id: rule for rule in ALL_RULES}
