"""Concurrency & fork-safety rule family.

The service layer shares compiled scenes, worker handles, and metrics
across threads, and the shard pool forks/spawns workers holding native
HiGHS handles.  These rules make the locking and fork-reset conventions
machine-checkable.
"""

from __future__ import annotations

import ast
import re
import tokenize
import io as _io
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.analysis.rules.base import Finding, Rule
from repro.analysis.rules.determinism import dotted_name

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import FileContext

__all__ = ["GuardedByRule", "ModuleStateRule", "MpContextRule", "ForkResetRule"]

_GUARD_COMMENT = re.compile(r"#:\s*guarded-by:\s*([\w.,\s]+)")


def _guard_comment_lines(source: str) -> dict[int, tuple[str, ...]]:
    """Map line number -> guard names declared via ``#: guarded-by: ...``."""
    out: dict[int, tuple[str, ...]] = {}
    try:
        tokens = tokenize.generate_tokens(_io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
        return out
    for token in comments:
        match = _GUARD_COMMENT.search(token.string)
        if match is None:
            continue
        names = tuple(
            part.strip().removeprefix("self.")
            for part in match.group(1).split(",")
            if part.strip()
        )
        if names:
            out[token.start[0]] = names
    return out


def _assigned_attr_names(stmt: ast.stmt) -> list[str]:
    """Names declared by an assignment: ``self.x`` targets and bare-name
    class fields, covering Assign and AnnAssign."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    names: list[str] = []
    for target in targets:
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                names.append(target.attr)
        elif isinstance(target, ast.Name):
            names.append(target.id)
    return names


@dataclass
class _ClassGuards:
    """Guard declarations collected for one class."""

    self_guards: dict[str, tuple[str, ...]] = field(default_factory=dict)
    field_guards: dict[str, tuple[str, ...]] = field(default_factory=dict)
    decl_lines: set[int] = field(default_factory=set)


def _is_exempt_function(name: str) -> bool:
    # __init__/__new__ run before the object is shared; *_locked is the
    # repo convention for "caller holds the lock"
    return name in ("__init__", "__new__") or name.endswith("_locked")


def _with_guard_names(stmt: ast.With | ast.AsyncWith) -> set[str]:
    names: set[str] = set()
    for item in stmt.items:
        expr = item.context_expr
        # unwrap guard-acquiring calls like `with self._lock:` vs
        # `with self._cond:` — both are Attribute/Name expressions;
        # `with lock_of(x):` style calls are not recognised as guards
        if isinstance(expr, ast.Attribute):
            names.add(expr.attr)
        elif isinstance(expr, ast.Name):
            names.add(expr.id)
    return names


class GuardedByRule(Rule):
    rule_id = "guarded-by"
    family = "concurrency"
    invariant = (
        "attributes declared `#: guarded-by: <lock>` (or listed in a class "
        "`_guarded_by` registry) are only touched inside `with <lock>:` "
        "blocks, except in __init__/__new__ and *_locked helpers"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        comment_guards = _guard_comment_lines(ctx.source)
        classes = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]
        module_field_guards: dict[str, tuple[str, ...]] = {}
        per_class: list[tuple[ast.ClassDef, _ClassGuards]] = []

        for cls in classes:
            guards = _ClassGuards()
            for stmt in cls.body:
                # class-level registry: _guarded_by = {"attr": "_lock", ...}
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "_guarded_by"
                    and isinstance(stmt.value, ast.Dict)
                ):
                    for key, value in zip(stmt.value.keys, stmt.value.values):
                        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                            continue
                        if isinstance(value, ast.Constant) and isinstance(value.value, str):
                            guards.self_guards[key.value] = (value.value,)
                        elif isinstance(value, (ast.Tuple, ast.List)):
                            names = tuple(
                                e.value
                                for e in value.elts
                                if isinstance(e, ast.Constant) and isinstance(e.value, str)
                            )
                            if names:
                                guards.self_guards[key.value] = names
                    guards.decl_lines.add(stmt.lineno)
                    continue
                # annotated class fields (dataclass style): module-wide check
                declared = comment_guards.get(stmt.lineno)
                if declared:
                    for name in _assigned_attr_names(stmt):
                        guards.field_guards[name] = declared
                        guards.decl_lines.add(stmt.lineno)
            # annotated self.attr assignments inside methods
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for stmt in ast.walk(fn):
                    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        continue
                    declared = comment_guards.get(stmt.lineno)
                    if not declared:
                        continue
                    for name in _assigned_attr_names(stmt):
                        guards.self_guards[name] = declared
                        guards.decl_lines.add(stmt.lineno)
            module_field_guards.update(guards.field_guards)
            per_class.append((cls, guards))

        findings: list[Finding] = []
        for cls, guards in per_class:
            if not guards.self_guards:
                continue
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _is_exempt_function(fn.name):
                    continue
                self._scan(
                    ctx,
                    fn,
                    frozenset(),
                    guards.self_guards,
                    guards.decl_lines,
                    self_only=True,
                    out=findings,
                )
        if module_field_guards:
            decl_lines = {
                line for _, guards in per_class for line in guards.decl_lines
            }
            for node in ctx.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_exempt_function(node.name):
                        continue
                    self._scan(
                        ctx,
                        node,
                        frozenset(),
                        module_field_guards,
                        decl_lines,
                        self_only=False,
                        out=findings,
                    )
                elif isinstance(node, ast.ClassDef):
                    for fn in node.body:
                        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            continue
                        if _is_exempt_function(fn.name):
                            continue
                        self._scan(
                            ctx,
                            fn,
                            frozenset(),
                            module_field_guards,
                            decl_lines,
                            self_only=False,
                            out=findings,
                        )
        seen: set[tuple[int, int, str]] = set()
        for finding in sorted(findings):
            marker = (finding.line, finding.col, finding.message)
            if marker not in seen:
                seen.add(marker)
                yield finding

    def _scan(
        self,
        ctx: FileContext,
        root: ast.FunctionDef | ast.AsyncFunctionDef,
        held: frozenset[str],
        guarded: dict[str, tuple[str, ...]],
        decl_lines: set[int],
        *,
        self_only: bool,
        out: list[Finding],
    ) -> None:
        def visit(node: ast.AST, held: frozenset[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = _with_guard_names(node)
                for item in node.items:
                    visit(item.context_expr, held)
                for stmt in node.body:
                    visit(stmt, held | acquired)
                return
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not root
            ):
                if _is_exempt_function(node.name):
                    return
                # nested defs may run on another thread: guards do not
                # carry over (lambdas do — they stay lexical)
                held = frozenset()
            elif isinstance(node, ast.Attribute) and node.attr in guarded:
                receiver_ok = (
                    isinstance(node.value, ast.Name) and node.value.id == "self"
                    if self_only
                    else True
                )
                if (
                    receiver_ok
                    and node.lineno not in decl_lines
                    and not (held & set(guarded[node.attr]))
                ):
                    locks = ", ".join(guarded[node.attr])
                    out.append(
                        self.finding(
                            ctx,
                            node,
                            f"attribute '{node.attr}' is guarded by "
                            f"'{locks}' but accessed outside a "
                            f"'with ... {guarded[node.attr][0]}' block",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        visit(root, held)


class ModuleStateRule(Rule):
    rule_id = "module-state"
    family = "concurrency"
    invariant = (
        "module-level mutable state is shared by every thread and survives "
        "forks; only UPPER_CASE constants and internally-locked factories "
        "(LRUCache, threading primitives, thread-locals) are allowed"
    )

    _MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            names = [
                n
                for n in names
                if n != n.upper() and not (n.startswith("__") and n.endswith("__"))
            ]
            if not names:
                continue
            if isinstance(value, self._MUTABLE_LITERALS):
                yield self.finding(
                    ctx,
                    stmt,
                    f"mutable module-level state '{names[0]}'; hoist into a "
                    "class, make it an UPPER_CASE constant, or use a locked "
                    "container",
                )
            elif isinstance(value, ast.Call):
                func = dotted_name(value.func)
                base = func.rsplit(".", 1)[-1] if func else None
                if base is not None and base not in config.module_state_factories:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"module-level state '{names[0]}' from factory "
                        f"'{base}' is not on the thread-safe allowlist",
                    )


class MpContextRule(Rule):
    rule_id = "mp-context"
    family = "concurrency"
    invariant = (
        "multiprocessing contexts are created only through repro.util.mp, "
        "which pins the start method and fork-safety policy per platform"
    )

    _FACTORIES = {
        "get_context",
        "get_start_method",
        "set_start_method",
        "Pool",
        "Process",
        "Manager",
        "Queue",
        "SimpleQueue",
        "JoinableQueue",
        "Pipe",
    }

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        if config.matches(ctx.rel, config.mp_allowed):
            return
        aliases: set[str] = set()
        direct: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "multiprocessing":
                        aliases.add(alias.asname or "multiprocessing")
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.module.split(".")[0] == "multiprocessing":
                    for alias in node.names:
                        if alias.name in self._FACTORIES:
                            direct.add(alias.asname or alias.name)
        if not aliases and not direct:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
                and func.attr in self._FACTORIES
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"direct multiprocessing factory "
                    f"'{func.value.id}.{func.attr}'; use repro.util.mp.mp_context",
                )
            elif isinstance(func, ast.Name) and func.id in direct:
                yield self.finding(
                    ctx,
                    node,
                    f"direct multiprocessing factory '{func.id}'; "
                    "use repro.util.mp.mp_context",
                )


class ForkResetRule(Rule):
    rule_id = "fork-reset"
    family = "concurrency"
    invariant = (
        "a module owning a threading.local() (native handles: solver "
        "instances, warm-start state) must call repro.util.mp."
        "register_fork_reset so spawned workers start from a clean handle "
        "(PR 6: fork-inherited HiGHS warm-start state)"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        registers = any(
            isinstance(node, ast.Call)
            and (dotted_name(node.func) or "").rsplit(".", 1)[-1]
            == "register_fork_reset"
            for node in ast.walk(ctx.tree)
        )
        if registers:
            return
        bodies: list[list[ast.stmt]] = [ctx.tree.body]
        bodies.extend(n.body for n in ctx.tree.body if isinstance(n, ast.ClassDef))
        for body in bodies:
            for stmt in body:
                if isinstance(stmt, ast.Assign):
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    value = stmt.value
                else:
                    continue
                if not isinstance(value, ast.Call):
                    continue
                func = dotted_name(value.func)
                if func is not None and func.rsplit(".", 1)[-1] == "local":
                    yield self.finding(
                        ctx,
                        stmt,
                        "threading.local() without a fork-reset hook; call "
                        "repro.util.mp.register_fork_reset(name, reset_fn) "
                        "in this module",
                    )
