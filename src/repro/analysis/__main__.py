"""reprolint CLI: ``python -m repro.analysis`` (installed as ``reprolint``).

Exit codes: 0 clean against the baseline, 1 new findings (or stale
baseline entries), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline, split_findings
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import ALL_RULES

__all__ = ["main"]

_BASELINE_NAME = "reprolint-baseline.json"


def _default_target() -> Path | None:
    """Scan root when none is given: the ``repro`` package, preferring a
    ``src`` checkout under the current directory."""
    for candidate in (Path("src") / "repro", Path("repro")):
        if (candidate / "__init__.py").exists():
            return candidate
    here = Path(__file__).resolve().parent.parent  # .../repro
    if (here / "__init__.py").exists():
        return here
    return None


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "determinism/concurrency/parity static analysis for the repro "
            "codebase"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--baseline-update",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id:16s} [{rule.family}] {rule.invariant}")
        return 0

    paths = list(args.paths)
    if not paths:
        target = _default_target()
        if target is None:
            print(
                "reprolint: no paths given and no repro package found",
                file=sys.stderr,
            )
            return 2
        paths = [target]
    for path in paths:
        if not path.exists():
            print(f"reprolint: no such path: {path}", file=sys.stderr)
            return 2

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = Path(_BASELINE_NAME)

    findings = analyze_paths(paths, DEFAULT_CONFIG)

    if args.baseline_update:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"reprolint: baseline updated ({len(findings)} finding(s) -> "
            f"{baseline_path})"
        )
        return 0

    baseline = Baseline.load(baseline_path)
    new, stale = split_findings(findings, baseline)

    if args.json:
        payload = {
            "findings": [f.to_json() for f in new],
            "baselined": len(findings) - len(new),
            "stale_baseline": [
                {"rule": rule, "path": rel, "context": context}
                for rule, rel, context in stale
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in new:
            print(finding.render())
        for rule, rel, context in stale:
            print(
                f"{rel}: stale baseline entry for {rule} ({context!r}); "
                "run --baseline-update"
            )
        summary = (
            f"reprolint: {len(new)} new finding(s), "
            f"{len(findings) - len(new)} baselined, {len(stale)} stale"
        )
        print(summary)

    return 1 if new or stale else 0


if __name__ == "__main__":
    raise SystemExit(main())
