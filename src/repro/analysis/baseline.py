"""Baseline bookkeeping: grandfathered findings that do not fail CI.

Baselines key on ``(rule, path, stripped-line-content)`` with a count,
not on line numbers, so unrelated edits that shift lines do not
invalidate the file.  Fixing a baselined finding makes the entry stale;
``--baseline-update`` prunes it.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.rules import Finding

__all__ = ["Baseline", "split_findings"]

_VERSION = 1


@dataclass
class Baseline:
    """Multiset of grandfathered finding keys."""

    entries: Counter[tuple[str, str, str]]

    @classmethod
    def empty(cls) -> Baseline:
        return cls(entries=Counter())

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Missing file == empty baseline (every finding is new)."""
        if not path.exists():
            return cls.empty()
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries: Counter[tuple[str, str, str]] = Counter()
        for row in payload.get("findings", []):
            key = (str(row["rule"]), str(row["path"]), str(row["context"]))
            entries[key] += int(row.get("count", 1))
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> Baseline:
        return cls(entries=Counter(f.key() for f in findings))

    def save(self, path: Path) -> None:
        rows = [
            {"rule": rule, "path": rel, "context": context, "count": count}
            for (rule, rel, context), count in sorted(self.entries.items())
        ]
        payload = {"version": _VERSION, "findings": rows}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_findings(
    findings: Iterable[Finding], baseline: Baseline
) -> tuple[list[Finding], list[tuple[str, str, str]]]:
    """Partition into (new findings, stale baseline keys).

    Each baseline entry absorbs up to ``count`` occurrences of its key;
    extra occurrences are new.  Entries with unused capacity are stale.
    """
    budget = Counter(baseline.entries)
    new: list[Finding] = []
    for finding in findings:
        key = finding.key()
        if budget[key] > 0:
            budget[key] -= 1
        else:
            new.append(finding)
    stale = sorted(key for key, remaining in budget.items() if remaining > 0)
    return new, stale
