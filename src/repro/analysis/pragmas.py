"""Inline pragma parsing for the reprolint engine.

Two pragma forms, both trailing comments:

* ``# repro: allow[rule-id]`` — suppress the named rule(s) on this line.
  A comma-separated list suppresses several rules at once; ``allow[*]``
  suppresses every rule on the line.  Free text after the closing bracket
  (conventionally ``-- why``) is encouraged and ignored by the parser.
* ``# repro: mutates[a, b]`` — placed on (or directly under) a ``def``
  line, declares that the function intentionally mutates the named
  parameters, exempting them from the ``kernel-mutation`` rule.

Pragmas are parsed from the token stream, not with a line regex, so a
string literal containing ``# repro:`` never counts as a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["PragmaMap", "parse_pragmas"]

_PRAGMA = re.compile(r"#\s*repro:\s*(allow|mutates)\[([^\]]*)\]")


@dataclass
class PragmaMap:
    """Per-line pragma lookup for one source file."""

    allow: dict[int, set[str]] = field(default_factory=dict)
    mutates: dict[int, set[str]] = field(default_factory=dict)

    def allows(self, line: int, rule_id: str) -> bool:
        """Is ``rule_id`` suppressed on ``line``?"""
        granted = self.allow.get(line)
        if granted is None:
            return False
        return "*" in granted or rule_id in granted

    def mutated_params(self, lines: range) -> set[str]:
        """Union of ``mutates[...]`` names declared on any line in ``lines``
        (callers pass the span of a ``def`` header)."""
        out: set[str] = set()
        for line in lines:
            out |= self.mutates.get(line, set())
        return out


def parse_pragmas(source: str) -> PragmaMap:
    """Extract the pragma map from ``source`` (tolerates tokenize errors:
    a file that does not tokenize has no pragmas)."""
    pragmas = PragmaMap()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
        return pragmas
    for token in comments:
        for match in _PRAGMA.finditer(token.string):
            kind, payload = match.group(1), match.group(2)
            names = {part.strip() for part in payload.split(",") if part.strip()}
            if not names:
                continue
            target = pragmas.allow if kind == "allow" else pragmas.mutates
            target.setdefault(token.start[0], set()).update(names)
    return pragmas
