"""reprolint driver: file discovery, per-file context, rule execution."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.pragmas import PragmaMap, parse_pragmas
from repro.analysis.rules import ALL_RULES, Finding, Rule

__all__ = ["FileContext", "analyze_paths", "build_context", "iter_python_files"]


@dataclass
class FileContext:
    """Everything a rule needs about one source file."""

    path: Path
    rel: str  # POSIX path relative to the scan root, e.g. "util/rng.py"
    source: str
    tree: ast.Module
    pragmas: PragmaMap
    lines: list[str] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    @property
    def stdlib_random_aliases(self) -> set[str]:
        """Names bound to the stdlib ``random`` module in this file."""
        out: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        out.add(alias.asname or "random")
        return out


def iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    yield from sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)


def build_context(path: Path, root: Path) -> FileContext | None:
    """Parse one file; returns None for files that do not parse (they are
    someone else's problem — the interpreter will complain first)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    rel = path.name if root.is_file() else path.relative_to(root).as_posix()
    return FileContext(
        path=path,
        rel=rel,
        source=source,
        tree=tree,
        pragmas=parse_pragmas(source),
        lines=source.splitlines(),
    )


def analyze_paths(
    paths: Iterable[Path],
    config: AnalysisConfig = DEFAULT_CONFIG,
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Finding]:
    """Run ``rules`` over every python file under ``paths``; pragma- and
    config-suppressed findings are filtered here, not per-rule."""
    findings: list[Finding] = []
    for root in paths:
        root = root.resolve()
        for file_path in iter_python_files(root):
            ctx = build_context(file_path, root)
            if ctx is None:
                continue
            for rule in rules:
                if config.exempted(ctx.rel, rule.rule_id):
                    continue
                for finding in rule.check(ctx, config):
                    if ctx.pragmas.allows(finding.line, rule.rule_id):
                        continue
                    findings.append(finding)
    findings.sort()
    return findings
