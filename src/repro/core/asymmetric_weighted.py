"""Asymmetric channels with edge-*weighted* per-channel graphs (Section 6).

Section 6 sketches the general case — "for each of the k channels a
different edge-weight function w_j" — by replacing w̄ with w̄_j in LP
constraint (4b) and scaling the rounding probabilities by 4kρ.  The paper
stops at the LP-rounding bound; we complete the pipeline with an explicit
two-stage conflict resolution (flagged as a reproduction *extension*,
since the paper gives no pseudocode for this case):

* **partial resolution** — scanning in increasing π, vertex ``v`` is
  dropped when *any* channel j ∈ S(v) has backward shared weight
  Σ_{u earlier, j ∈ S(u)} w̄_j(u, v) ≥ 1/2.  The Lemma 4-style accounting
  still works: the expected total over all of v's channels is at most
  Σ_{j∈T} ρ/(4kρ) ≤ 1/4, so by Markov the drop probability is ≤ 1/2.
* **completion** — Algorithm 3's peeling, applied with the per-channel
  weights (a vertex's load is the max over its channels), bounded by
  k·⌈log n⌉ rounds in the worst case (each round halves the pending set
  for at least one channel); measured rounds stay at 1–2.

Feasibility of the final allocation is re-validated per channel against
each channel's own weighted graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.auction import Allocation
from repro.core.auction_lp import AuctionLPSolution, Column
from repro.core.lp import solve_packing_lp
from repro.core.rounding import sample_tentative
from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.util.rng import ensure_rng
from repro.valuations.base import Valuation, enumerate_bundles

__all__ = [
    "WeightedAsymmetricProblem",
    "WeightedAsymmetricLP",
    "round_weighted_asymmetric",
    "complete_weighted_asymmetric",
]


@dataclass
class WeightedAsymmetricProblem:
    """Problem 1 with a weighted conflict graph per channel."""

    graphs: list[WeightedConflictGraph]
    ordering: VertexOrdering
    rho: float
    valuations: list[Valuation]

    def __post_init__(self) -> None:
        if not self.graphs:
            raise ValueError("need at least one channel graph")
        n = self.graphs[0].n
        if any(g.n != n for g in self.graphs):
            raise ValueError("all channel graphs must share the vertex set")
        if self.ordering.n != n or len(self.valuations) != n:
            raise ValueError("ordering/valuations disagree with vertex count")
        if any(v.k != self.k for v in self.valuations):
            raise ValueError("valuations disagree with channel count")

    @property
    def k(self) -> int:
        return len(self.graphs)

    @property
    def n(self) -> int:
        return self.graphs[0].n

    def welfare(self, allocation: Allocation) -> float:
        return float(
            sum(self.valuations[v].value(s) for v, s in allocation.items() if s)
        )

    def is_feasible(self, allocation: Allocation) -> bool:
        for j, graph in enumerate(self.graphs):
            holders = [v for v, s in allocation.items() if j in s]
            if not graph.is_independent(holders):
                return False
        return True


class WeightedAsymmetricLP:
    """LP (4) with per-channel symmetric weights w̄_j in rows (v, j)."""

    def __init__(
        self,
        problem: WeightedAsymmetricProblem,
        columns: list[Column] | None = None,
        enumeration_limit: int = 2048,
    ) -> None:
        self.problem = problem
        if columns is None:
            columns = []
            for v, valuation in enumerate(problem.valuations):
                supp = valuation.support()
                if supp is None:
                    if 2**problem.k > enumeration_limit:
                        raise ValueError("no finite support and k too large")
                    supp = [b for b in enumerate_bundles(problem.k) if b]
                for bundle in supp:
                    value = valuation.value(bundle)
                    if bundle and value > 0:
                        columns.append(Column(v, frozenset(bundle), float(value)))
        self.columns = columns

    def solve(self) -> AuctionLPSolution:
        problem = self.problem
        n, k = problem.n, problem.k
        pos = problem.ordering.pos
        rows, cols, data = [], [], []
        for ci, col in enumerate(self.columns):
            u = col.vertex
            later = pos > pos[u]
            for j in col.bundle:
                wbar = problem.graphs[j].wbar_matrix[u]
                affected = np.flatnonzero(later & (wbar > 0))
                for v in affected.tolist():
                    rows.append(v * k + j)
                    cols.append(ci)
                    data.append(float(wbar[v]))
            rows.append(n * k + u)
            cols.append(ci)
            data.append(1.0)
        a = sp.coo_matrix(
            (data, (rows, cols)), shape=(n * k + n, len(self.columns))
        ).tocsr()
        b = np.concatenate([np.full(n * k, float(problem.rho)), np.ones(n)])
        c = np.array([col.value for col in self.columns])
        sol = solve_packing_lp(c, a, b)
        return AuctionLPSolution(
            columns=list(self.columns),
            x=sol.x,
            value=sol.value,
            y=sol.duals[: n * k].reshape(n, k),
            z=sol.duals[n * k :],
        )


def round_weighted_asymmetric(
    problem: WeightedAsymmetricProblem,
    solution: AuctionLPSolution,
    rng=None,
    scale: float | None = None,
) -> tuple[Allocation, dict]:
    """Section 6 rounding at scale 4kρ + per-channel partial resolution.

    The output satisfies, for every kept vertex v and every channel
    j ∈ S(v): Σ_{u earlier kept, j ∈ S(u)} w̄_j(u, v) < 1/2.
    """
    rng = ensure_rng(rng)
    eff_scale = (
        4.0 * problem.k * max(problem.rho, 1.0) if scale is None else float(scale)
    )
    tentative = sample_tentative(solution.per_vertex(), eff_scale, rng)
    pos = problem.ordering.pos
    final: Allocation = {}
    removed = 0
    for v in sorted(tentative, key=lambda u: pos[u]):
        bundle = tentative[v]
        overloaded = False
        for j in bundle:
            wbar_col = problem.graphs[j].wbar_matrix[:, v]
            total = sum(
                float(wbar_col[u]) for u, su in final.items() if j in su
            )
            if total >= 0.5:
                overloaded = True
                break
        if overloaded:
            removed += 1
        else:
            final[v] = bundle
    return final, {"scale": eff_scale, "tentative": len(tentative), "removed": removed}


def complete_weighted_asymmetric(
    problem: WeightedAsymmetricProblem,
    allocation: Allocation,
) -> tuple[Allocation, int]:
    """Algorithm 3-style completion with per-channel loads.

    Peels candidate allocations by decreasing π: a pending vertex is
    finalized when every channel's current shared weight is below 1,
    otherwise cleared and retried next round.  Returns the best candidate
    and the number of rounds (≤ k·⌈log₂ n⌉ by the per-channel halving
    argument; see the module docstring for the extension caveat).
    """
    pos = problem.ordering.pos
    pending = {v for v, s in allocation.items() if s}
    values = {v: problem.valuations[v].value(allocation[v]) for v in pending}
    # Termination is unconditional: the π-smallest pending vertex of each
    # round is always finalized (everything heavier was cleared before it
    # was examined), so each round shrinks `pending`.  The k·⌈log n⌉ cap
    # of the halving argument is asserted empirically in tests.
    max_rounds = max(1, problem.n)

    best: Allocation = {}
    best_value = -1.0
    rounds = 0
    while pending:
        rounds += 1
        if rounds > max_rounds:  # pragma: no cover - unreachable, see above
            raise RuntimeError("completion failed to make progress")
        current: Allocation = {v: allocation[v] for v in pending}
        for v in sorted(pending, key=lambda u: pos[u], reverse=True):
            bundle = current.get(v)
            if not bundle:
                continue
            ok = True
            for j in bundle:
                wbar_col = problem.graphs[j].wbar_matrix[:, v]
                total = sum(
                    float(wbar_col[u])
                    for u, su in current.items()
                    if u != v and j in su
                )
                if total >= 1.0:
                    ok = False
                    break
            if ok:
                pending.discard(v)
            else:
                del current[v]
        value = sum(values[v] for v in current)
        if value > best_value:
            best, best_value = current, value
    return best, rounds
