"""Scheduling companion: serve *all* bidders with few channels.

The paper's related work (Section 1.2) contrasts auctions (maximize welfare
with k fixed channels) against *scheduling* — partition every request into
a small number of feasible classes.  This extension closes the loop: a
greedy peeling scheduler built on the same substrate, useful both as a
capacity planner ("how many channels would clear this market?") and as an
upper bound k for auction experiments.

For unweighted conflict graphs the peeling uses the local-ratio
ρ-approximate MWIS along the inductive ordering (so each class is large),
giving the classic O(ρ·log n)-competitive set-cover-style guarantee; for
weighted graphs it greedily packs by the certified ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import local_ratio_independent_set
from repro.graphs.independence import greedy_weighted_independent_set
from repro.interference.base import ConflictStructure, WeightedConflictStructure

__all__ = ["Schedule", "schedule_all"]


@dataclass
class Schedule:
    """A partition of the vertex set into per-channel independent classes."""

    classes: list[list[int]]

    @property
    def num_channels(self) -> int:
        return len(self.classes)

    def channel_of(self) -> dict[int, int]:
        return {v: j for j, cls in enumerate(self.classes) for v in cls}

    def validate(self, graph) -> bool:
        """Every class independent, every vertex scheduled exactly once."""
        seen: set[int] = set()
        for cls in self.classes:
            if not graph.is_independent(cls):
                return False
            if seen & set(cls):
                return False
            seen.update(cls)
        return len(seen) == graph.n


def schedule_all(structure) -> Schedule:
    """Partition all vertices into feasible channel classes (greedy peeling).

    Works for both :class:`ConflictStructure` and
    :class:`WeightedConflictStructure`; raises if a vertex cannot be
    scheduled at all (possible in weighted graphs when a single vertex
    receives ≥ 1 incoming weight from... never: singletons are always
    independent, so termination is guaranteed).
    """
    if not isinstance(structure, (ConflictStructure, WeightedConflictStructure)):
        raise TypeError("expected a conflict structure")
    n = structure.n
    remaining = np.ones(n, dtype=bool)
    classes: list[list[int]] = []
    weighted = isinstance(structure, WeightedConflictStructure)
    while remaining.any():
        profits = remaining.astype(float)
        if weighted:
            chosen, _ = greedy_weighted_independent_set(
                structure.graph, profits, candidates=np.flatnonzero(remaining)
            )
        else:
            sub_profits = np.where(remaining, 1.0, 0.0)
            chosen, _ = local_ratio_independent_set(
                structure.graph, structure.ordering, sub_profits
            )
            chosen = [v for v in chosen if remaining[v]]
        if not chosen:
            # Greedy returned nothing although vertices remain (cannot
            # happen: any singleton is independent) — schedule one alone.
            chosen = [int(np.flatnonzero(remaining)[0])]
        classes.append(sorted(chosen))
        remaining[chosen] = False
    return Schedule(classes=classes)
