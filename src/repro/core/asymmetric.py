"""Asymmetric channels (Section 6): a different conflict graph per channel.

The LP swaps the single interference coefficient κ(u, v) for per-channel
coefficients κ_j(u, v) in rows (v, j); the rounding scales probabilities by
``2kρ`` (unweighted) / ``4kρ`` (weighted) instead of 2√kρ — the proof of
Lemma 4 then goes through *without* the symmetry of channels or the √k
bundle split, at the cost of an O(kρ) instead of O(√kρ) factor.  Theorem 18
shows this is essentially optimal; its instance construction lives in
:func:`repro.graphs.generators.theorem18_edge_partition`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.auction import Allocation
from repro.core.auction_lp import AuctionLPSolution, Column
from repro.core.lp import solve_packing_lp
from repro.core.rounding import sample_tentative
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.util.rng import ensure_rng
from repro.valuations.base import Valuation, enumerate_bundles

__all__ = [
    "AsymmetricAuctionProblem",
    "AsymmetricAuctionLP",
    "round_asymmetric",
    "solve_asymmetric_with_column_generation",
]


@dataclass
class AsymmetricAuctionProblem:
    """Problem 1 with per-channel conflict graphs (unweighted)."""

    graphs: list[ConflictGraph]
    ordering: VertexOrdering
    rho: float
    valuations: list[Valuation]

    def __post_init__(self) -> None:
        if not self.graphs:
            raise ValueError("need at least one channel graph")
        n = self.graphs[0].n
        if any(g.n != n for g in self.graphs):
            raise ValueError("all channel graphs must share the vertex set")
        if self.ordering.n != n:
            raise ValueError("ordering does not match vertex count")
        if len(self.valuations) != n:
            raise ValueError("one valuation per vertex required")
        if any(v.k != self.k for v in self.valuations):
            raise ValueError("valuations disagree with channel count")

    @property
    def k(self) -> int:
        return len(self.graphs)

    @property
    def n(self) -> int:
        return self.graphs[0].n

    def welfare(self, allocation: Allocation) -> float:
        return float(
            sum(self.valuations[v].value(s) for v, s in allocation.items() if s)
        )

    def is_feasible(self, allocation: Allocation) -> bool:
        """Channel j's holders must be independent in graph j."""
        for j, graph in enumerate(self.graphs):
            holders = [v for v, s in allocation.items() if j in s]
            if not graph.is_independent(holders):
                return False
        return True


class AsymmetricAuctionLP:
    """LP (1) with per-channel backward neighborhoods."""

    def __init__(
        self,
        problem: AsymmetricAuctionProblem,
        columns: list[Column] | None = None,
        enumeration_limit: int = 2048,
    ) -> None:
        self.problem = problem
        if columns is None:
            columns = []
            for v, valuation in enumerate(problem.valuations):
                supp = valuation.support()
                if supp is None:
                    if 2**problem.k > enumeration_limit:
                        raise ValueError(
                            "no finite support and k too large to enumerate"
                        )
                    supp = [b for b in enumerate_bundles(problem.k) if b]
                for bundle in supp:
                    value = valuation.value(bundle)
                    if bundle and value > 0:
                        columns.append(Column(v, frozenset(bundle), float(value)))
        self.columns = columns

    def solve(self) -> AuctionLPSolution:
        problem = self.problem
        n, k = problem.n, problem.k
        pos = problem.ordering.pos
        rows, cols, data = [], [], []
        for ci, col in enumerate(self.columns):
            u = col.vertex
            for j in col.bundle:
                adj = problem.graphs[j].adjacency[u]
                forward = np.flatnonzero(adj & (pos > pos[u]))
                for v in forward.tolist():
                    rows.append(v * k + j)
                    cols.append(ci)
                    data.append(1.0)
            rows.append(n * k + u)
            cols.append(ci)
            data.append(1.0)
        a = sp.coo_matrix((data, (rows, cols)), shape=(n * k + n, len(self.columns))).tocsr()
        b = np.concatenate([np.full(n * k, float(problem.rho)), np.ones(n)])
        c = np.array([col.value for col in self.columns])
        sol = solve_packing_lp(c, a, b)
        return AuctionLPSolution(
            columns=list(self.columns),
            x=sol.x,
            value=sol.value,
            y=sol.duals[: n * k].reshape(n, k),
            z=sol.duals[n * k :],
        )


def solve_asymmetric_with_column_generation(
    problem: AsymmetricAuctionProblem,
    max_iterations: int = 200,
    tolerance: float = 1e-7,
) -> tuple[AuctionLPSolution, int, bool]:
    """Demand-oracle solving of the asymmetric LP (Section 6 + Section 2.2).

    Identical master/pricing loop as the symmetric case; the bidder-specific
    prices use each channel's own backward relation:

        p_{v,j} = Σ_{u : {u,v} ∈ E_j, π(u) > π(v)} y_{u,j}.

    Returns ``(solution, iterations, converged)``.
    """
    pos = problem.ordering.pos
    n, k = problem.n, problem.k
    lp = AsymmetricAuctionLP(problem, columns=[])
    seen: set[tuple[int, frozenset[int]]] = set()

    def add_column(v: int, bundle: frozenset[int]) -> bool:
        key = (v, bundle)
        if not bundle or key in seen:
            return False
        value = problem.valuations[v].value(bundle)
        if value <= 0:
            return False
        seen.add(key)
        lp.columns.append(Column(v, bundle, float(value)))
        return True

    zero = np.zeros(k)
    for v, valuation in enumerate(problem.valuations):
        bundle, _ = valuation.demand(zero)
        add_column(v, bundle)

    solution = lp.solve()
    for iteration in range(1, max_iterations + 1):
        # prices[v, j] from per-channel forward neighborhoods.
        prices = np.zeros((n, k))
        for j in range(k):
            adj = problem.graphs[j].adjacency
            later = pos[:, None] < pos[None, :]
            prices[:, j] = (adj & later).astype(float) @ solution.y[:, j]
        added = 0
        for v, valuation in enumerate(problem.valuations):
            bundle, util = valuation.demand(prices[v])
            if bundle and util > solution.z[v] + tolerance:
                if add_column(v, bundle):
                    added += 1
        if added == 0:
            return solution, iteration, True
        solution = lp.solve()
    return solution, max_iterations, False


def round_asymmetric(
    problem: AsymmetricAuctionProblem,
    solution: AuctionLPSolution,
    rng=None,
    scale: float | None = None,
) -> tuple[Allocation, dict]:
    """Section 6 rounding: probability x/(2kρ), conflict resolution per
    channel's own graph, no bundle-size split."""
    rng = ensure_rng(rng)
    eff_scale = (
        2.0 * problem.k * max(problem.rho, 1.0) if scale is None else float(scale)
    )
    tentative = sample_tentative(solution.per_vertex(), eff_scale, rng)
    pos = problem.ordering.pos
    final: Allocation = {}
    removed = 0
    for v in sorted(tentative, key=lambda u: pos[u]):
        bundle = tentative[v]
        conflict = False
        for u, other in final.items():
            shared = bundle & other
            if not shared:
                continue
            if any(problem.graphs[j].has_edge(u, v) for j in shared):
                conflict = True
                break
        if conflict:
            removed += 1
        else:
            final[v] = bundle
    info = {"scale": eff_scale, "tentative": len(tentative), "removed": removed}
    return final, info
