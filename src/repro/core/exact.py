"""Exact optimum for small instances via MILP (HiGHS branch-and-bound).

Used as the reference in experiment E11 (and in tests) to measure the
empirical approximation ratios of the rounding algorithms.  Binary variable
per LP column (vertex, bundle); feasibility encoded per channel:

* unweighted — for every edge {u, v} and channel j, at most one endpoint's
  chosen bundle may contain j;
* weighted — for every vertex v and channel j, big-M conditional:
  Σ_u w(u, v)·y_{u,j} ≤ (1 − ε) + M_v (1 − y_{v,j}) where
  ``y_{v,j} = Σ_{T∋j} x_{v,T}`` is linear in the column variables.  The ε
  margin realizes the strict "< 1" of weighted independence; instances
  whose optimum depends on weights within ε of the threshold are outside
  the MILP's resolution (our generators stay clear of it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.auction import Allocation, AuctionProblem
from repro.core.auction_lp import AuctionLP, Column

__all__ = ["ExactResult", "solve_exact"]

STRICTNESS_EPS = 1e-6


@dataclass
class ExactResult:
    allocation: Allocation
    value: float
    status: int
    mip_gap: float


def _channel_incidence(columns: list[Column], n: int, k: int) -> dict[tuple[int, int], list[int]]:
    """(v, j) → column indices whose vertex is v and bundle contains j."""
    incidence: dict[tuple[int, int], list[int]] = {}
    for ci, col in enumerate(columns):
        for j in col.bundle:
            incidence.setdefault((col.vertex, j), []).append(ci)
    return incidence


def solve_exact(
    problem: AuctionProblem,
    columns: list[Column] | None = None,
    time_limit: float | None = None,
) -> ExactResult:
    """Solve Problem 1 exactly over the given columns (defaults to the
    valuation supports, which is lossless for our valuation classes)."""
    if columns is None:
        columns = AuctionLP.default_columns(problem)
    n, k = problem.n, problem.k
    ncols = len(columns)
    if ncols == 0:
        return ExactResult(allocation={}, value=0.0, status=0, mip_gap=0.0)
    c = np.array([col.value for col in columns])
    incidence = _channel_incidence(columns, n, k)

    constraints: list[LinearConstraint] = []
    rows, cols, data, ubs = [], [], [], []
    row = 0
    # One bundle per vertex.
    by_vertex: dict[int, list[int]] = {}
    for ci, col in enumerate(columns):
        by_vertex.setdefault(col.vertex, []).append(ci)
    for _, cis in sorted(by_vertex.items()):
        for ci in cis:
            rows.append(row)
            cols.append(ci)
            data.append(1.0)
        ubs.append(1.0)
        row += 1

    if problem.is_weighted:
        w = problem.graph.weights
        for v in range(n):
            in_weights = w[:, v]
            big_m = float(in_weights.sum())
            if big_m <= 0.0:  # weights are nonnegative: <= 0 is exactly "no in-edges"
                continue
            for j in range(k):
                own = incidence.get((v, j), [])
                if not own:
                    continue
                # Σ_u w(u,v) y_{u,j} + M_v y_{v,j} ≤ M_v + 1 − ε
                touched = False
                for u in range(n):
                    if u == v or in_weights[u] <= 0:
                        continue
                    for ci in incidence.get((u, j), []):
                        rows.append(row)
                        cols.append(ci)
                        data.append(float(in_weights[u]))
                        touched = True
                if not touched:
                    continue
                for ci in own:
                    rows.append(row)
                    cols.append(ci)
                    data.append(big_m)
                ubs.append(big_m + 1.0 - STRICTNESS_EPS)
                row += 1
    else:
        adjacency = problem.graph.adjacency
        for u, v in zip(*np.nonzero(np.triu(adjacency))):
            for j in range(k):
                cu = incidence.get((int(u), j), [])
                cv = incidence.get((int(v), j), [])
                if not cu or not cv:
                    continue
                for ci in cu + cv:
                    rows.append(row)
                    cols.append(ci)
                    data.append(1.0)
                ubs.append(1.0)
                row += 1

    a = sp.coo_matrix((data, (rows, cols)), shape=(row, ncols)).tocsr()
    constraints.append(LinearConstraint(a, -np.inf, np.array(ubs)))
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    res = milp(
        -c,
        constraints=constraints,
        integrality=np.ones(ncols),
        bounds=Bounds(0, 1),
        options=options,
    )
    if res.status not in (0, 1) or res.x is None:
        raise RuntimeError(f"MILP failed (status {res.status}): {res.message}")
    x = np.round(res.x).astype(int)
    allocation: Allocation = {}
    for ci, chosen in enumerate(x):
        if chosen:
            col = columns[ci]
            allocation[col.vertex] = col.bundle
    value = float(sum(columns[ci].value for ci in np.flatnonzero(x)))
    gap = float(getattr(res, "mip_gap", 0.0) or 0.0)
    return ExactResult(allocation=allocation, value=value, status=int(res.status), mip_gap=gap)
