"""Problem statement objects: combinatorial auctions with conflict graphs.

An :class:`AuctionProblem` bundles everything Problem 1 needs — a conflict
structure (graph + ordering + ρ), the channel count ``k``, and one valuation
per vertex.  Allocations are ``dict[vertex, frozenset[channel]]``; vertices
absent from the dict hold the empty bundle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.interference.base import ConflictStructure, WeightedConflictStructure
from repro.util.validation import check_allocation_feasible
from repro.valuations.base import Valuation

__all__ = ["AuctionProblem", "Allocation", "social_welfare"]

Allocation = dict[int, frozenset[int]]

Structure = Union[ConflictStructure, WeightedConflictStructure]


def social_welfare(valuations: list[Valuation], allocation: Allocation) -> float:
    """Σ_v b_v(S(v)) — the objective of Problem 1."""
    return float(
        sum(valuations[v].value(bundle) for v, bundle in allocation.items() if bundle)
    )


@dataclass
class AuctionProblem:
    """A combinatorial auction with conflict graph (Problem 1)."""

    structure: Structure
    k: int
    valuations: list[Valuation]

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("need at least one channel")
        if len(self.valuations) != self.structure.n:
            raise ValueError(
                f"{self.structure.n} vertices but {len(self.valuations)} valuations"
            )
        bad = [i for i, v in enumerate(self.valuations) if v.k != self.k]
        if bad:
            raise ValueError(f"valuations {bad} disagree with k={self.k}")

    @property
    def n(self) -> int:
        return self.structure.n

    @property
    def is_weighted(self) -> bool:
        return isinstance(self.structure, WeightedConflictStructure)

    @property
    def graph(self):
        return self.structure.graph

    @property
    def ordering(self):
        return self.structure.ordering

    @property
    def rho(self) -> float:
        return self.structure.rho

    def welfare(self, allocation: Allocation) -> float:
        return social_welfare(self.valuations, allocation)

    def is_feasible(self, allocation: Allocation) -> bool:
        """Re-validate per-channel independence against the conflict graph."""
        return check_allocation_feasible(self.graph, allocation, self.k)

    def approximation_bound(self) -> float:
        """The paper's guarantee for this problem class.

        Theorem 3 for unweighted graphs (8√k·ρ); Lemmas 7+8 for weighted
        graphs (16√k·ρ·⌈log₂ n⌉).
        """
        import math

        base = 8.0 * math.sqrt(self.k) * self.rho
        if self.is_weighted:
            return 2.0 * base * max(1, math.ceil(math.log2(max(2, self.n))))
        return base
