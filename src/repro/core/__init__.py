"""Core library: the paper's LP relaxation, rounding, and solvers."""

from repro.core.asymmetric import (
    AsymmetricAuctionLP,
    AsymmetricAuctionProblem,
    round_asymmetric,
    solve_asymmetric_with_column_generation,
)
from repro.core.asymmetric_weighted import (
    WeightedAsymmetricLP,
    WeightedAsymmetricProblem,
    complete_weighted_asymmetric,
    round_weighted_asymmetric,
)
from repro.core.online import OnlineResult, online_greedy
from repro.core.scheduling import Schedule, schedule_all
from repro.core.auction import Allocation, AuctionProblem, social_welfare
from repro.core.auction_lp import (
    AuctionLP,
    AuctionLPSolution,
    Column,
    allocation_to_lp_vector,
)
from repro.core.baselines import (
    edge_lp_value,
    greedy_channel_allocation,
    local_ratio_independent_set,
    round_edge_lp,
)
from repro.core.column_generation import (
    ColumnGenerationResult,
    bidder_prices,
    solve_with_column_generation,
)
from repro.core.conflict_resolution import (
    FullResolutionResult,
    check_condition5,
    make_fully_feasible,
)
from repro.core.derandomize import DerandomizedResult, derandomize_rounding
from repro.core.pairwise import (
    PairwiseRoundingResult,
    pairwise_derandomize,
    smallest_prime_at_least,
)
from repro.core.exact import ExactResult, solve_exact
from repro.core.lp import LPSolution, solve_packing_lp
from repro.core.rounding import (
    RoundingReport,
    default_scale,
    round_unweighted,
    round_weighted,
)
from repro.core.solver import SolverResult, SpectrumAuctionSolver

__all__ = [
    "AuctionProblem",
    "Allocation",
    "social_welfare",
    "AuctionLP",
    "AuctionLPSolution",
    "Column",
    "allocation_to_lp_vector",
    "solve_packing_lp",
    "LPSolution",
    "solve_with_column_generation",
    "ColumnGenerationResult",
    "bidder_prices",
    "round_unweighted",
    "round_weighted",
    "RoundingReport",
    "default_scale",
    "make_fully_feasible",
    "FullResolutionResult",
    "check_condition5",
    "derandomize_rounding",
    "DerandomizedResult",
    "pairwise_derandomize",
    "PairwiseRoundingResult",
    "smallest_prime_at_least",
    "solve_exact",
    "ExactResult",
    "edge_lp_value",
    "round_edge_lp",
    "local_ratio_independent_set",
    "greedy_channel_allocation",
    "AsymmetricAuctionProblem",
    "AsymmetricAuctionLP",
    "round_asymmetric",
    "WeightedAsymmetricProblem",
    "WeightedAsymmetricLP",
    "round_weighted_asymmetric",
    "complete_weighted_asymmetric",
    "Schedule",
    "schedule_all",
    "OnlineResult",
    "online_greedy",
    "solve_asymmetric_with_column_generation",
    "SpectrumAuctionSolver",
    "SolverResult",
]
