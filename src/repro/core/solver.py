"""End-to-end solver facade: LP → rounding → (Algorithm 3) → validation.

:class:`SpectrumAuctionSolver` wires the whole pipeline of the paper
together for a given :class:`~repro.core.auction.AuctionProblem`:

* solve LP (1)/(4) — explicitly over valuation supports, or with
  demand-oracle column generation;
* round with Algorithm 1 (unweighted) or Algorithm 2 + Algorithm 3
  (weighted), optionally derandomized;
* for power-control structures, run Kesselheim's power assignment per
  channel and verify the SINR constraints of every channel;
* re-validate feasibility of the final allocation against the conflict
  graph (never trusting the algorithms' own bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.auction import Allocation, AuctionProblem
from repro.core.auction_lp import AuctionLP, AuctionLPSolution
from repro.core.column_generation import solve_with_column_generation
from repro.core.conflict_resolution import make_fully_feasible
from repro.core.derandomize import derandomize_rounding
from repro.core.rounding import round_unweighted, round_weighted
from repro.util.rng import ensure_rng

__all__ = ["SolverResult", "SpectrumAuctionSolver"]


@dataclass
class SolverResult:
    """Everything a caller needs to audit one solver run."""

    allocation: Allocation
    welfare: float
    lp_value: float
    feasible: bool
    guarantee: float
    rounds_algorithm3: int = 0
    lp_iterations: int = 1
    channel_powers: dict[int, np.ndarray] = field(default_factory=dict)
    sinr_feasible: bool | None = None
    details: dict = field(default_factory=dict)

    @property
    def lp_ratio(self) -> float:
        """LP value over achieved welfare (empirical approximation factor)."""
        return self.lp_value / self.welfare if self.welfare > 0 else float("inf")

    def meets_guarantee(self) -> bool:
        """Theorem 3 / Lemmas 7–8 hold *in expectation*; a single run meeting
        the bound is the typical case, checked by the experiment harness
        across repetitions."""
        if self.lp_value <= 0:
            return True
        return self.welfare >= self.lp_value / self.guarantee - 1e-9


class SpectrumAuctionSolver:
    """Pipeline driver for one auction problem."""

    def __init__(self, problem: AuctionProblem) -> None:
        self.problem = problem

    # ------------------------------------------------------------------
    def solve_lp(self, method: str = "auto") -> AuctionLPSolution:
        """Solve the LP relaxation.

        ``method``: "explicit" (enumerate supports), "column_generation"
        (demand oracles only), or "auto" (explicit when supports exist,
        otherwise column generation).
        """
        if method not in ("auto", "explicit", "column_generation"):
            raise ValueError(f"unknown LP method {method!r}")
        if method == "column_generation":
            return solve_with_column_generation(self.problem).solution
        if method == "auto":
            have_supports = all(
                v.support() is not None for v in self.problem.valuations
            )
            if not have_supports and 2**self.problem.k > 2048:
                return solve_with_column_generation(self.problem).solution
        return AuctionLP(self.problem).solve()

    # ------------------------------------------------------------------
    def solve(
        self,
        seed=None,
        lp_method: str = "auto",
        derandomize: bool | str = False,
        rounding_attempts: int = 1,
        verify_power_control: bool = True,
    ) -> SolverResult:
        """Run the full pipeline.

        ``derandomize`` selects the rounding: ``False`` — randomized
        Algorithm 1/2 (best of ``rounding_attempts`` independent runs);
        ``True`` or ``"conditional"`` — method of conditional expectations;
        ``"pairwise"`` — exhaustive pairwise-independent seed space.
        """
        if derandomize not in (False, True, "conditional", "pairwise"):
            raise ValueError(f"unknown derandomize mode {derandomize!r}")
        rng = ensure_rng(seed)
        solution = self.solve_lp(lp_method)
        problem = self.problem

        def deterministic_tentative() -> Allocation:
            if derandomize == "pairwise":
                from repro.core.pairwise import pairwise_derandomize

                return pairwise_derandomize(problem, solution).allocation
            return derandomize_rounding(problem, solution).allocation

        best_alloc: Allocation = {}
        best_welfare = -1.0
        rounds_alg3 = 0
        attempts = 1 if derandomize else max(1, rounding_attempts)
        for _ in range(attempts):
            if problem.is_weighted:
                if derandomize:
                    partly = deterministic_tentative()
                else:
                    partly, _report = round_weighted(problem, solution, rng)
                resolution = make_fully_feasible(problem, partly)
                allocation = resolution.allocation
                rounds = resolution.rounds
            else:
                if derandomize:
                    allocation = deterministic_tentative()
                else:
                    allocation, _report = round_unweighted(problem, solution, rng)
                rounds = 0
            welfare = problem.welfare(allocation)
            if welfare > best_welfare:
                best_alloc, best_welfare = allocation, welfare
                rounds_alg3 = rounds

        feasible = problem.is_feasible(best_alloc)
        result = SolverResult(
            allocation=best_alloc,
            welfare=max(best_welfare, 0.0),
            lp_value=solution.value,
            feasible=feasible,
            guarantee=problem.approximation_bound(),
            rounds_algorithm3=rounds_alg3,
            lp_iterations=solution.iterations,
        )
        if (
            verify_power_control
            and problem.is_weighted
            and problem.structure.metadata.get("model") == "power-control"
        ):
            self._attach_powers(result)
        return result

    # ------------------------------------------------------------------
    def _attach_powers(self, result: SolverResult) -> None:
        """Kesselheim power assignment per channel + SINR verification."""
        from repro.interference.physical import PhysicalModel
        from repro.interference.power_control import kesselheim_power_assignment

        meta = self.problem.structure.metadata
        links = meta["links"]
        alpha, beta, noise = meta["alpha"], meta["beta"], meta["noise"]
        physical = PhysicalModel(links, alpha, beta, noise)
        all_ok = True
        for j in range(self.problem.k):
            members = [v for v, s in result.allocation.items() if j in s]
            if not members:
                continue
            powers = kesselheim_power_assignment(links, members, alpha, beta, noise)
            result.channel_powers[j] = powers
            if not physical.is_feasible(members, powers):
                all_ok = False
        result.sinr_feasible = all_ok
