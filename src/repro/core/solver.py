"""End-to-end solver facade: LP → rounding → (Algorithm 3) → validation.

:class:`SpectrumAuctionSolver` wires the whole pipeline of the paper
together for a given :class:`~repro.core.auction.AuctionProblem`.  Since
the engine refactor it is a thin facade over a
:class:`~repro.engine.compiled.CompiledAuction`: the LP columns, matrices,
and solution are compiled once per solver (structures shared across
solvers via the engine's keyed cache) and the randomized rounding runs on
the engine's vectorized kernels — results are bit-identical to the
original per-attempt loop (see ``tests/test_engine_equivalence.py``).

* solve LP (1)/(4) — explicitly over valuation supports, or with
  demand-oracle column generation;
* round with Algorithm 1 (unweighted) or Algorithm 2 + Algorithm 3
  (weighted), optionally derandomized;
* for power-control structures, run Kesselheim's power assignment per
  channel and verify the SINR constraints of every channel;
* re-validate feasibility of the final allocation against the conflict
  graph (never trusting the algorithms' own bookkeeping).

For fleets of auctions, use :class:`repro.engine.BatchAuctionEngine`
instead of looping over solvers — it shares compilation and LP solutions
across instances.
"""

from __future__ import annotations

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLPSolution
from repro.core.column_generation import solve_with_column_generation
from repro.core.result import SolverResult
from repro.engine.compiled import CompiledAuction, compile_auction

__all__ = ["SolverResult", "SpectrumAuctionSolver"]


class SpectrumAuctionSolver:
    """Pipeline driver for one auction problem (facade over the engine).

    ``compiled`` lets a caller supply an existing
    :class:`~repro.engine.compiled.CompiledAuction` (e.g. one built on a
    pinned structure compilation) instead of going through the engine's
    keyed cache.
    """

    def __init__(
        self, problem: AuctionProblem, compiled: CompiledAuction | None = None
    ) -> None:
        if compiled is not None and compiled.problem is not problem:
            raise ValueError("compiled instance belongs to a different problem")
        self.problem = problem
        self._compiled = compiled

    @property
    def compiled(self) -> CompiledAuction:
        """The engine-compiled instance (built lazily, then reused)."""
        if self._compiled is None:
            self._compiled = compile_auction(self.problem)
        return self._compiled

    # ------------------------------------------------------------------
    def solve_lp(self, method: str = "auto") -> AuctionLPSolution:
        """Solve the LP relaxation.

        ``method``: "explicit" (enumerate supports), "column_generation"
        (demand oracles only), or "auto" (explicit when supports exist,
        otherwise column generation).  The explicit path is compiled and
        cached — repeat calls return the same solution object.
        """
        if method not in ("auto", "explicit", "column_generation"):
            raise ValueError(f"unknown LP method {method!r}")
        if method == "column_generation":
            return solve_with_column_generation(self.problem).solution
        if method == "auto":
            have_supports = all(
                v.support() is not None for v in self.problem.valuations
            )
            if not have_supports and 2**self.problem.k > 2048:
                return solve_with_column_generation(self.problem).solution
        return self.compiled.solve_lp()

    # ------------------------------------------------------------------
    def solve(
        self,
        seed=None,
        lp_method: str = "auto",
        derandomize: bool | str = False,
        rounding_attempts: int = 1,
        verify_power_control: bool = True,
        lp_solution: AuctionLPSolution | None = None,
    ) -> SolverResult:
        """Run the full pipeline.

        ``derandomize`` selects the rounding: ``False`` — randomized
        Algorithm 1/2 (best of ``rounding_attempts`` independent runs);
        ``True`` or ``"conditional"`` — method of conditional expectations;
        ``"pairwise"`` — exhaustive pairwise-independent seed space.

        ``lp_solution`` supplies a precomputed LP solution, skipping the LP
        stage entirely — repeat-rounding loops (E7, mechanism sampling)
        solve the LP once via :meth:`solve_lp` and pass it back in.
        """
        if derandomize not in (False, True, "conditional", "pairwise"):
            raise ValueError(f"unknown derandomize mode {derandomize!r}")
        if lp_method not in ("auto", "explicit", "column_generation"):
            raise ValueError(f"unknown LP method {lp_method!r}")
        if lp_solution is None and lp_method != "explicit":
            lp_solution = self.solve_lp(lp_method)
        return self.compiled.solve(
            seed=seed,
            derandomize=derandomize,
            rounding_attempts=rounding_attempts,
            verify_power_control=verify_power_control,
            lp_solution=lp_solution,
        )
