"""Algorithm 3: turning partly-feasible allocations into feasible ones.

Input: an allocation satisfying Condition (5) — every vertex's symmetric
weight to *earlier* shared-channel vertices is below 1/2.  The algorithm
peels off feasible candidate allocations:

* each round initializes a candidate with the bundles of all still-pending
  vertices, then scans pending vertices by *decreasing* π: a vertex whose
  current shared-channel weight (both directions) is below 1 is finalized
  into this candidate; otherwise its bundle is cleared and it stays pending
  for the next round;
* Lemma 8's counting argument shows each round finalizes more than half of
  the pending vertices, so there are at most ⌈log₂ n⌉ candidates, and the
  best one carries at least a 1/⌈log₂ n⌉ fraction of the input value.

The implementation validates Condition (5) up front (the halving argument
— and hence termination — depends on it) and re-checks each candidate's
feasibility before returning.

Both the check and the rounds run on arrays: the winners' w̄ submatrix is
masked once to shared-channel pairs and ordered by π, after which
Condition (5) is one triangular sum and each Algorithm 3 round maintains
per-vertex totals incrementally (clearing a vertex subtracts its w̄ row)
instead of re-scanning the allocation dict per vertex.  As with the other
vectorized kernels, the totals are NumPy sums rather than the seed's
sequential Python accumulation — only an instance whose shared-channel
weight lands within one ulp of the 1/2 or 1 threshold could resolve
differently, and no stock workload sits on such a knife edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.auction import Allocation, AuctionProblem

__all__ = ["FullResolutionResult", "check_condition5", "make_fully_feasible"]


def _wbar_lookup(problem: AuctionProblem, allocation: Allocation):
    """``(index, wbar_sub)`` over the allocation's winners.

    Both Algorithm 3 and the Condition (5) check only read w̄ between
    allocated vertices, so a |winners|² submatrix suffices — CSR-backed
    metro-scale graphs never densify their n×n matrix here (entries are
    identical either way, so the sums below are bit-equal).
    """
    verts = sorted(v for v, s in allocation.items() if s)
    index = {v: i for i, v in enumerate(verts)}
    idx = np.asarray(verts, dtype=np.intp)
    graph = problem.graph
    if graph.is_sparse:
        sub = graph.wbar_csr[idx][:, idx].toarray() if idx.size else np.zeros((0, 0))
    else:
        sub = graph.wbar_matrix[np.ix_(idx, idx)]
    return index, sub


def _ordered_share_weights(problem: AuctionProblem, allocation: Allocation):
    """Winners in π order plus their share-masked w̄ matrix.

    Returns ``(verts, m)`` where ``verts`` lists the allocated vertices by
    increasing π and ``m[i, j]`` is w̄(verts[i], verts[j]) when the two
    bundles share a channel (zero otherwise, zero diagonal) — the only
    quantity Algorithm 3 and Condition (5) ever sum.
    """
    index, wbar = _wbar_lookup(problem, allocation)
    pos = problem.ordering.pos
    verts = sorted(index, key=lambda v: pos[v])
    if not verts:
        return verts, np.zeros((0, 0))
    order = np.fromiter((index[v] for v in verts), dtype=np.intp, count=len(verts))
    k = problem.k
    chan = np.zeros((len(verts), k), dtype=bool)
    for i, v in enumerate(verts):
        chan[i, list(allocation[v])] = True
    share = (chan.astype(float) @ chan.T) > 0
    m = np.where(share, wbar[np.ix_(order, order)], 0.0)
    np.fill_diagonal(m, 0.0)
    return verts, m


@dataclass
class FullResolutionResult:
    """Output of Algorithm 3."""

    allocation: Allocation
    candidates: list[Allocation]
    candidate_values: list[float]
    rounds: int
    input_value: float

    @property
    def best_value(self) -> float:
        return max(self.candidate_values, default=0.0)


def _condition5_holds(m: np.ndarray) -> bool:
    """Condition (5) on a prepared share-weight matrix (π-ordered)."""
    if not m.size:
        return True
    totals = np.triu(m, 1).sum(axis=0)  # rows i < j in π order
    return bool(not np.any(totals >= 0.5))


def check_condition5(problem: AuctionProblem, allocation: Allocation) -> bool:
    """Condition (5): Σ over earlier shared-channel vertices of w̄ < 1/2."""
    _, m = _ordered_share_weights(problem, allocation)
    return _condition5_holds(m)


def make_fully_feasible(
    problem: AuctionProblem,
    allocation: Allocation,
    validate_input: bool = True,
) -> FullResolutionResult:
    """Run Algorithm 3 on a partly-feasible allocation."""
    if not problem.is_weighted:
        raise ValueError("Algorithm 3 applies to weighted conflict graphs")
    verts, m = _ordered_share_weights(problem, allocation)
    if validate_input and not _condition5_holds(m):
        raise ValueError("input allocation violates Condition (5)")
    values = {v: problem.valuations[v].value(allocation[v]) for v in verts}
    max_rounds = max(1, math.ceil(math.log2(max(2, problem.n)))) + 1

    candidates: list[Allocation] = []
    candidate_values: list[float] = []
    rounds = 0
    active = np.ones(len(verts), dtype=bool)  # pending, in π order
    while active.any():
        rounds += 1
        if rounds > max_rounds:  # pragma: no cover - guarded by Condition (5)
            raise RuntimeError(
                "Algorithm 3 exceeded its ⌈log n⌉ round bound; "
                "input was not partly feasible"
            )
        # totals[j] = Σ over still-current vertices of m[·, j]; clearing a
        # vertex subtracts its row, finalizing leaves totals unchanged —
        # exactly the scan-by-decreasing-π semantics of the dict version
        totals = m[active].sum(axis=0)
        finalized: list[int] = []
        for j in np.flatnonzero(active)[::-1]:
            if totals[j] < 1.0:
                finalized.append(int(j))
            else:
                totals -= m[j]
        current: Allocation = {
            verts[j]: allocation[verts[j]] for j in sorted(finalized)
        }
        candidates.append(current)
        candidate_values.append(sum(values[v] for v in current))
        active[finalized] = False

    best_idx = max(
        range(len(candidates)), key=lambda i: candidate_values[i], default=-1
    )
    best = candidates[best_idx] if best_idx >= 0 else {}
    return FullResolutionResult(
        allocation=best,
        candidates=candidates,
        candidate_values=candidate_values,
        rounds=rounds,
        input_value=sum(values.values()),
    )
