"""Algorithm 3: turning partly-feasible allocations into feasible ones.

Input: an allocation satisfying Condition (5) — every vertex's symmetric
weight to *earlier* shared-channel vertices is below 1/2.  The algorithm
peels off feasible candidate allocations:

* each round initializes a candidate with the bundles of all still-pending
  vertices, then scans pending vertices by *decreasing* π: a vertex whose
  current shared-channel weight (both directions) is below 1 is finalized
  into this candidate; otherwise its bundle is cleared and it stays pending
  for the next round;
* Lemma 8's counting argument shows each round finalizes more than half of
  the pending vertices, so there are at most ⌈log₂ n⌉ candidates, and the
  best one carries at least a 1/⌈log₂ n⌉ fraction of the input value.

The implementation validates Condition (5) up front (the halving argument
— and hence termination — depends on it) and re-checks each candidate's
feasibility before returning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.auction import Allocation, AuctionProblem

__all__ = ["FullResolutionResult", "check_condition5", "make_fully_feasible"]


def _wbar_lookup(problem: AuctionProblem, allocation: Allocation):
    """``(index, wbar_sub)`` over the allocation's winners.

    Both Algorithm 3 and the Condition (5) check only read w̄ between
    allocated vertices, so a |winners|² submatrix suffices — CSR-backed
    metro-scale graphs never densify their n×n matrix here (entries are
    identical either way, so the sums below are bit-equal).
    """
    verts = sorted(v for v, s in allocation.items() if s)
    index = {v: i for i, v in enumerate(verts)}
    idx = np.asarray(verts, dtype=np.intp)
    graph = problem.graph
    if graph.is_sparse:
        sub = graph.wbar_csr[idx][:, idx].toarray() if idx.size else np.zeros((0, 0))
    else:
        sub = graph.wbar_matrix[np.ix_(idx, idx)]
    return index, sub


@dataclass
class FullResolutionResult:
    """Output of Algorithm 3."""

    allocation: Allocation
    candidates: list[Allocation]
    candidate_values: list[float]
    rounds: int
    input_value: float

    @property
    def best_value(self) -> float:
        return max(self.candidate_values, default=0.0)


def check_condition5(problem: AuctionProblem, allocation: Allocation) -> bool:
    """Condition (5): Σ over earlier shared-channel vertices of w̄ < 1/2."""
    index, wbar = _wbar_lookup(problem, allocation)
    pos = problem.ordering.pos
    items = sorted(
        ((v, s) for v, s in allocation.items() if s), key=lambda vs: pos[vs[0]]
    )
    for i, (v, sv) in enumerate(items):
        total = sum(wbar[index[u], index[v]] for u, su in items[:i] if su & sv)
        if total >= 0.5:
            return False
    return True


def make_fully_feasible(
    problem: AuctionProblem,
    allocation: Allocation,
    validate_input: bool = True,
) -> FullResolutionResult:
    """Run Algorithm 3 on a partly-feasible allocation."""
    if not problem.is_weighted:
        raise ValueError("Algorithm 3 applies to weighted conflict graphs")
    if validate_input and not check_condition5(problem, allocation):
        raise ValueError("input allocation violates Condition (5)")

    index, wbar = _wbar_lookup(problem, allocation)
    pos = problem.ordering.pos
    pending = {v for v, s in allocation.items() if s}
    values = {v: problem.valuations[v].value(allocation[v]) for v in pending}
    max_rounds = max(1, math.ceil(math.log2(max(2, problem.n)))) + 1

    candidates: list[Allocation] = []
    candidate_values: list[float] = []
    rounds = 0
    while pending:
        rounds += 1
        if rounds > max_rounds:  # pragma: no cover - guarded by Condition (5)
            raise RuntimeError(
                "Algorithm 3 exceeded its ⌈log n⌉ round bound; "
                "input was not partly feasible"
            )
        current: Allocation = {v: allocation[v] for v in pending}
        for v in sorted(pending, key=lambda u: pos[u], reverse=True):
            bundle = current.get(v)
            if not bundle:  # pragma: no cover - cleared entries are removed
                continue
            total = sum(
                wbar[index[u], index[v]]
                for u, su in current.items()
                if u != v and su and su & bundle
            )
            if total < 1.0:
                pending.discard(v)  # finalized into this candidate
            else:
                del current[v]  # cleared; retried next round
        candidates.append(current)
        candidate_values.append(sum(values[v] for v in current))

    best_idx = max(
        range(len(candidates)), key=lambda i: candidate_values[i], default=-1
    )
    best = candidates[best_idx] if best_idx >= 0 else {}
    return FullResolutionResult(
        allocation=best,
        candidates=candidates,
        candidate_values=candidate_values,
        rounds=rounds,
        input_value=sum(values.values()),
    )
