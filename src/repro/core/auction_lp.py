"""The paper's LP relaxations — LP (1) (unweighted) and LP (4) (weighted).

Variables are indexed by *columns* ``(v, T)``: vertex ``v`` receiving
bundle ``T``.  Rows:

* one packing row per (vertex v, channel j):
    Σ_{u ∈ Γ_π(v)} Σ_{T ∋ j} κ(u, v) · x_{u,T} ≤ ρ
  with κ = 1 on backward edges (LP 1b) or κ = w̄(u, v) over all earlier
  vertices (LP 4b);
* one row per vertex: Σ_T x_{v,T} ≤ 1 (LP 1c/4c).

The builder enumerates columns from each valuation's finite support (or all
bundles when k is small); bidders available only through demand oracles are
handled by :mod:`repro.core.column_generation`, which grows the column set
of this same object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.auction import AuctionProblem
from repro.core.lp import LPSolution, solve_packing_lp
from repro.valuations.base import enumerate_bundles

__all__ = [
    "Column",
    "AuctionLP",
    "AuctionLPSolution",
    "allocation_to_lp_vector",
    "iter_default_columns",
]


def iter_default_columns(problem: AuctionProblem, enumeration_limit: int = 2048):
    """Yield ``(vertex, bundle, value)`` for the default column set.

    Single source of truth for column enumeration — both
    :meth:`AuctionLP.default_columns` and the engine's compiled arrays
    consume this, so they cannot drift.  Columns come from valuation
    supports (full enumeration for small ``k``); bidders with neither
    raise ``ValueError`` — use column generation for those.
    """
    for v, valuation in enumerate(problem.valuations):
        items = valuation.support_items()
        if items is None:
            if 2**problem.k > enumeration_limit:
                raise ValueError(
                    f"bidder {v} has no finite support and k={problem.k} is "
                    "too large to enumerate; use solve_with_column_generation"
                )
            items = [
                (b, valuation.value(b)) for b in enumerate_bundles(problem.k) if b
            ]
        for bundle, value in items:
            if bundle and value > 0:
                yield v, frozenset(bundle), float(value)


@dataclass(frozen=True)
class Column:
    """One LP variable: vertex ``v`` gets bundle ``T`` at value b_v(T)."""

    vertex: int
    bundle: frozenset[int]
    value: float


@dataclass
class AuctionLPSolution:
    """Fractional LP solution plus the duals the paper's Section 2.2 uses."""

    columns: list[Column]
    x: np.ndarray
    value: float
    y: np.ndarray  # shape (n, k): duals of the packing rows (v, j)
    z: np.ndarray  # shape (n,):  duals of the one-bundle-per-vertex rows
    iterations: int = 1

    def support(self, tolerance: float = 1e-9) -> list[tuple[Column, float]]:
        """Columns with positive mass."""
        return [
            (col, float(xv))
            for col, xv in zip(self.columns, self.x)
            if xv > tolerance
        ]

    def per_vertex(self, tolerance: float = 1e-9) -> dict[int, list[tuple[frozenset[int], float, float]]]:
        """Group the support by vertex: v → [(bundle, x, value), ...]."""
        out: dict[int, list[tuple[frozenset[int], float, float]]] = {}
        for col, xv in self.support(tolerance):
            out.setdefault(col.vertex, []).append((col.bundle, xv, col.value))
        return out


class AuctionLP:
    """LP (1)/(4) over an explicit, growable column set."""

    def __init__(self, problem: AuctionProblem, columns: list[Column] | None = None) -> None:
        self.problem = problem
        self.columns: list[Column] = []
        self._column_keys: set[tuple[int, frozenset[int]]] = set()
        if columns is None:
            columns = self.default_columns(problem)
        for col in columns:
            self.add_column(col)

    # ------------------------------------------------------------------
    # column management
    # ------------------------------------------------------------------
    @staticmethod
    def default_columns(problem: AuctionProblem, enumeration_limit: int = 2048) -> list[Column]:
        """Columns from valuation supports; full enumeration for small k.

        Raises ``ValueError`` when a bidder has no finite support and k is
        too large to enumerate — use column generation for those.
        """
        return [
            Column(v, bundle, value)
            for v, bundle, value in iter_default_columns(problem, enumeration_limit)
        ]

    def has_column(self, vertex: int, bundle: frozenset[int]) -> bool:
        return (vertex, frozenset(bundle)) in self._column_keys

    def add_column(self, col: Column) -> bool:
        """Add a column if absent; returns True when actually added."""
        key = (col.vertex, frozenset(col.bundle))
        if not col.bundle:
            raise ValueError("the empty bundle is never an LP column")
        if key in self._column_keys:
            return False
        if not 0 <= col.vertex < self.problem.n:
            raise ValueError(f"vertex {col.vertex} out of range")
        self._column_keys.add(key)
        self.columns.append(col)
        return True

    # ------------------------------------------------------------------
    # matrix assembly
    # ------------------------------------------------------------------
    def _interference_coefficients(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """Vertices v with π(v) > π(u) affected by u, and the coefficient
        κ(u, v) each contributes to row (v, j)."""
        problem = self.problem
        ordering = problem.ordering
        later = ~ordering.earlier_mask(u)
        later[u] = False
        if problem.is_weighted:
            wbar = problem.graph.wbar_matrix[u]
            affected = np.flatnonzero(later & (wbar > 0))
            return affected, wbar[affected]
        adj = problem.graph.adjacency[u]
        affected = np.flatnonzero(later & adj)
        return affected, np.ones(affected.size)

    def build(self) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
        """Assemble (A, b, c) for the current column set."""
        n, k = self.problem.n, self.problem.k
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for ci, col in enumerate(self.columns):
            affected, coeff = self._interference_coefficients(col.vertex)
            for j in col.bundle:
                for v, w in zip(affected.tolist(), coeff.tolist()):
                    rows.append(v * k + j)
                    cols.append(ci)
                    data.append(w)
            rows.append(n * k + col.vertex)
            cols.append(ci)
            data.append(1.0)
        a = sp.coo_matrix(
            (data, (rows, cols)), shape=(n * k + n, len(self.columns))
        ).tocsr()
        b = np.concatenate([np.full(n * k, float(self.problem.rho)), np.ones(n)])
        c = np.array([col.value for col in self.columns])
        return a, b, c

    def solve(self) -> AuctionLPSolution:
        """Solve the LP over the current columns."""
        if not self.columns:
            n, k = self.problem.n, self.problem.k
            return AuctionLPSolution(
                columns=[], x=np.zeros(0), value=0.0, y=np.zeros((n, k)), z=np.zeros(n)
            )
        a, b, c = self.build()
        sol: LPSolution = solve_packing_lp(c, a, b)
        n, k = self.problem.n, self.problem.k
        y = sol.duals[: n * k].reshape(n, k)
        z = sol.duals[n * k :]
        return AuctionLPSolution(
            columns=list(self.columns), x=sol.x, value=sol.value, y=y, z=z
        )


def allocation_to_lp_vector(
    lp: AuctionLP, allocation: dict[int, frozenset[int]]
) -> np.ndarray:
    """Lemma 1's embedding: the 0/1 LP vector of a feasible allocation
    (columns must already exist for every allocated bundle)."""
    x = np.zeros(len(lp.columns))
    index = {(c.vertex, c.bundle): i for i, c in enumerate(lp.columns)}
    for v, bundle in allocation.items():
        if not bundle:
            continue
        key = (v, frozenset(bundle))
        if key not in index:
            raise KeyError(f"no LP column for vertex {v}, bundle {sorted(bundle)}")
        x[index[key]] = 1.0
    return x
