"""Solver result record, shared by the facade and the batch engine.

Lives in its own leaf module so :mod:`repro.engine` can produce
:class:`SolverResult`s while :mod:`repro.core.solver` (which imports the
engine) re-exports it unchanged for the public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.auction import Allocation

__all__ = ["SolverResult"]


@dataclass
class SolverResult:
    """Everything a caller needs to audit one solver run."""

    allocation: Allocation
    welfare: float
    lp_value: float
    feasible: bool
    guarantee: float
    rounds_algorithm3: int = 0
    lp_iterations: int = 1
    channel_powers: dict[int, np.ndarray] = field(default_factory=dict)
    sinr_feasible: bool | None = None
    details: dict = field(default_factory=dict)

    @property
    def lp_ratio(self) -> float:
        """LP value over achieved welfare (empirical approximation factor)."""
        return self.lp_value / self.welfare if self.welfare > 0 else float("inf")

    def meets_guarantee(self) -> bool:
        """Theorem 3 / Lemmas 7–8 hold *in expectation*; a single run meeting
        the bound is the typical case, checked by the experiment harness
        across repetitions."""
        if self.lp_value <= 0:
            return True
        return self.welfare >= self.lp_value / self.guarantee - 1e-9
