"""Baseline algorithms the paper compares against or builds upon.

* :func:`edge_lp_value` — the "intuitive" edge-based LP of Section 2.1
  (x_u + x_v ≤ 1 per edge).  Its integrality gap is n/2 on cliques, the
  motivating failure that the inductive LP avoids (experiment E10).
* :func:`local_ratio_independent_set` — the ρ-approximation of Akcoglu et
  al. [1] / Ye–Borodin [32] for a single channel: a stack-based local-ratio
  scan along the inductive ordering.  The paper cites it as prior work that
  does not extend to multiple channels or truthfulness.
* :func:`greedy_channel_allocation` — a natural marginal-value greedy over
  channels; no worst-case guarantee, used as an empirical baseline (E11).
"""

from __future__ import annotations

import numpy as np

from repro.core.auction import Allocation, AuctionProblem
from repro.core.lp import solve_packing_lp
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering

__all__ = [
    "edge_lp_value",
    "round_edge_lp",
    "local_ratio_independent_set",
    "greedy_channel_allocation",
]


def edge_lp_value(graph: ConflictGraph, profits: np.ndarray) -> tuple[np.ndarray, float]:
    """Solve the edge-based LP: max Σ b_v x_v s.t. x_u + x_v ≤ 1, x ∈ [0,1]."""
    import scipy.sparse as sp

    p = np.asarray(profits, dtype=float)
    edges = list(graph.edges())
    rows, cols, data = [], [], []
    for r, (u, v) in enumerate(edges):
        rows += [r, r]
        cols += [u, v]
        data += [1.0, 1.0]
    a = sp.coo_matrix((data, (rows, cols)), shape=(len(edges), graph.n)).tocsr()
    sol = solve_packing_lp(p, a, np.ones(len(edges)), upper_bounds=np.ones(graph.n))
    return sol.x, sol.value


def round_edge_lp(graph: ConflictGraph, profits: np.ndarray) -> tuple[list[int], float]:
    """Greedy rounding of the edge LP: scan by decreasing fractional mass."""
    x, _ = edge_lp_value(graph, profits)
    p = np.asarray(profits, dtype=float)
    order = np.argsort(-(x * p), kind="stable")
    adjacency = graph.adjacency
    blocked = np.zeros(graph.n, dtype=bool)
    chosen: list[int] = []
    total = 0.0
    for v in order:
        v = int(v)
        if x[v] <= 1e-12 or p[v] <= 0 or blocked[v]:
            continue
        chosen.append(v)
        total += p[v]
        blocked |= adjacency[v]
    return sorted(chosen), float(total)


def local_ratio_independent_set(
    graph: ConflictGraph,
    ordering: VertexOrdering,
    profits: np.ndarray,
) -> tuple[list[int], float]:
    """Stack-based local-ratio MWIS — a ρ-approximation (Akcoglu et al.).

    Phase 1 scans vertices by *decreasing* π: a vertex with positive
    residual profit is pushed and its residual is subtracted from itself
    and its backward neighbors (exactly the set whose independent subsets
    the inductive independence number bounds).  Phase 2 pops the stack and
    keeps every vertex compatible with the current selection.
    """
    p = np.asarray(profits, dtype=float).copy()
    adjacency = graph.adjacency
    pos = ordering.pos
    stack: list[int] = []
    for v in sorted(range(graph.n), key=lambda u: pos[u], reverse=True):
        if p[v] <= 1e-12:
            continue
        delta = p[v]
        stack.append(v)
        back = np.flatnonzero(adjacency[v] & (pos < pos[v]))
        p[v] = 0.0
        p[back] -= delta
    chosen: list[int] = []
    blocked = np.zeros(graph.n, dtype=bool)
    for v in reversed(stack):
        if not blocked[v]:
            chosen.append(v)
            blocked |= adjacency[v]
    total = float(np.asarray(profits, dtype=float)[chosen].sum())
    return sorted(chosen), total


def greedy_channel_allocation(problem: AuctionProblem) -> Allocation:
    """Channel-by-channel greedy on marginal values.

    For each channel in turn, scan vertices by decreasing marginal value of
    adding the channel to their current bundle and grant it when the
    channel's holder set stays independent (unweighted or weighted notion).
    """
    allocation: Allocation = {v: frozenset() for v in range(problem.n)}
    graph = problem.graph
    for j in range(problem.k):
        holders: list[int] = []
        gains = []
        for v in range(problem.n):
            current = allocation[v]
            gain = problem.valuations[v].value(current | {j}) - problem.valuations[v].value(current)
            gains.append(gain)
        for v in np.argsort(-np.asarray(gains), kind="stable"):
            v = int(v)
            if gains[v] <= 1e-12:
                break
            if graph.is_independent(holders + [v]):
                holders.append(v)
                allocation[v] = allocation[v] | {j}
    return {v: s for v, s in allocation.items() if s}
