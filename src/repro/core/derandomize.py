"""Deterministic rounding via the method of conditional expectations.

Section 5 notes the rounding algorithms "can be derandomized using the
technique of pairwise independence" — the Lavi–Swamy pricing oracle needs a
*deterministic* algorithm with the integrality-gap guarantee.  We implement
the equivalent conditional-expectations derandomization on the proofs' own
pessimistic estimator.

For one bundle-size class with rounding probabilities ``q_{v,T} = x_{v,T}/scale``:

    F(q) = Σ_{(v,T)} b_{v,T} q_{v,T} (1 − pen · Σ_{u ∈ Γ_π(v)} Σ_{T'∩T≠∅} κ(u,v) q_{u,T'})

with (κ, pen) = (1, 1) unweighted and (w̄(u,v), 2) weighted.  F is
multilinear across vertices (different vertices round independently; no
same-vertex cross terms appear because Γ_π(v) excludes v), so fixing one
vertex's choice to the argmax of the conditional expectation never
decreases F.  The realized F lower-bounds the post-conflict-resolution
welfare: a vertex removed by Algorithm 1 has penalty sum ≥ 1, and one
removed by Algorithm 2 has w̄-sum ≥ 1/2 ⇒ pen·sum ≥ 1.  Since
E[F] ≥ (1/2)·Σ b x / scale (the Lemma 4 computation), the deterministic
output meets the same 8√kρ / 16√kρ bounds as the randomized rounding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.auction import Allocation, AuctionProblem
from repro.core.auction_lp import AuctionLPSolution
from repro.core.rounding import (
    RoundingReport,
    default_scale,
    resolve_unweighted,
    resolve_weighted_partial,
)

__all__ = ["DerandomizedResult", "derandomize_rounding"]


@dataclass
class DerandomizedResult:
    """Tentative allocations per class, their estimator values, and the
    resolved allocation chosen (best class by true welfare)."""

    allocation: Allocation
    estimator_values: list[float]
    tentative: list[Allocation]
    report: RoundingReport


class _Estimator:
    """F(q) = b·q − qᵀ M q over one class's columns."""

    def __init__(
        self,
        problem: AuctionProblem,
        entries: list[tuple[int, frozenset[int], float, float]],
        scale: float,
    ) -> None:
        self.values = np.array([e[2] for e in entries])
        self.q = np.array([e[3] / scale for e in entries])
        self.vertex_cols: dict[int, list[int]] = {}
        for i, (v, _b, _val, _x) in enumerate(entries):
            self.vertex_cols.setdefault(v, []).append(i)

        pen = 2.0 if problem.is_weighted else 1.0
        ordering = problem.ordering
        pos = ordering.pos
        if problem.is_weighted:
            kappa = problem.graph.wbar_matrix
        else:
            kappa = problem.graph.adjacency.astype(float)
        rows, cols, data = [], [], []
        for a, (v, bundle_a, val_a, _xa) in enumerate(entries):
            for b, (u, bundle_b, _vb, _xb) in enumerate(entries):
                if u == v or pos[u] >= pos[v]:
                    continue
                if kappa[u, v] <= 0 or not (bundle_a & bundle_b):
                    continue
                rows.append(a)
                cols.append(b)
                data.append(pen * val_a * kappa[u, v])
        m = len(entries)
        self.penalty = sp.coo_matrix((data, (rows, cols)), shape=(m, m)).tocsr()

    def value(self, q: np.ndarray) -> float:
        return float(self.values @ q - q @ (self.penalty @ q))

    def fix_best_choice(self, vertex: int, q: np.ndarray) -> None:
        """Replace ``vertex``'s marginals with its best deterministic choice
        (one of its bundles, or the empty bundle)."""
        cols = self.vertex_cols.get(vertex, [])
        if not cols:
            return
        best_cols: list[int] = []
        best_val = -math.inf
        for choice in [None, *cols]:
            for c in cols:
                q[c] = 0.0
            if choice is not None:
                q[choice] = 1.0
            val = self.value(q)
            if val > best_val:
                best_val = val
                best_cols = [] if choice is None else [choice]
        for c in cols:
            q[c] = 0.0
        for c in best_cols:
            q[c] = 1.0


def derandomize_rounding(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    scale: float | None = None,
    split: bool = True,
    resolve: str = "survivors",
) -> DerandomizedResult:
    """Deterministic Algorithm 1/2 with the conditional-expectation rule."""
    eff_scale = default_scale(problem) if scale is None else float(scale)
    threshold = math.sqrt(problem.k)
    classes: list[list[tuple[int, frozenset[int], float, float]]] = (
        [[], []] if split else [[]]
    )
    for col, x in solution.support():
        entry = (col.vertex, col.bundle, col.value, x)
        if split:
            classes[0 if len(col.bundle) <= threshold else 1].append(entry)
        else:
            classes[0].append(entry)

    resolver = (
        resolve_weighted_partial if problem.is_weighted else resolve_unweighted
    )
    report = RoundingReport(scale=eff_scale, split=split)
    tentatives: list[Allocation] = []
    estimator_values: list[float] = []
    best_alloc: Allocation = {}
    best_value = -1.0
    for cls, entries in enumerate(classes):
        estimator = _Estimator(problem, entries, eff_scale)
        q = estimator.q.copy()
        for v in sorted(estimator.vertex_cols):
            estimator.fix_best_choice(v, q)
        tentative: Allocation = {}
        for i, (v, bundle, _val, _x) in enumerate(entries):
            if q[i] > 0.5:
                tentative[v] = bundle
        estimator_values.append(estimator.value(q))
        tentatives.append(tentative)
        allocation, removed = resolver(problem, tentative, resolve)
        value = problem.welfare(allocation)
        report.class_values.append(value)
        report.tentative_sizes.append(len(tentative))
        report.removed_counts.append(removed)
        if value > best_value:
            best_alloc, best_value = allocation, value
            report.chosen_class = cls
    return DerandomizedResult(
        allocation=best_alloc,
        estimator_values=estimator_values,
        tentative=tentatives,
        report=report,
    )
