"""Deterministic rounding via the method of conditional expectations.

Section 5 notes the rounding algorithms "can be derandomized using the
technique of pairwise independence" — the Lavi–Swamy pricing oracle needs a
*deterministic* algorithm with the integrality-gap guarantee.  We implement
the equivalent conditional-expectations derandomization on the proofs' own
pessimistic estimator.

For one bundle-size class with rounding probabilities ``q_{v,T} = x_{v,T}/scale``:

    F(q) = Σ_{(v,T)} b_{v,T} q_{v,T} (1 − pen · Σ_{u ∈ Γ_π(v)} Σ_{T'∩T≠∅} κ(u,v) q_{u,T'})

with (κ, pen) = (1, 1) unweighted and (w̄(u,v), 2) weighted.  F is
multilinear across vertices (different vertices round independently; no
same-vertex cross terms appear because Γ_π(v) excludes v), so fixing one
vertex's choice to the argmax of the conditional expectation never
decreases F.  The realized F lower-bounds the post-conflict-resolution
welfare: a vertex removed by Algorithm 1 has penalty sum ≥ 1, and one
removed by Algorithm 2 has w̄-sum ≥ 1/2 ⇒ pen·sum ≥ 1.  Since
E[F] ≥ (1/2)·Σ b x / scale (the Lemma 4 computation), the deterministic
output meets the same 8√kρ / 16√kρ bounds as the randomized rounding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.auction import Allocation, AuctionProblem
from repro.core.auction_lp import AuctionLPSolution
from repro.core.rounding import (
    RoundingReport,
    default_scale,
    resolve_unweighted,
    resolve_weighted_partial,
)

__all__ = ["DerandomizedResult", "derandomize_rounding"]


@dataclass
class DerandomizedResult:
    """Tentative allocations per class, their estimator values, and the
    resolved allocation chosen (best class by true welfare)."""

    allocation: Allocation
    estimator_values: list[float]
    tentative: list[Allocation]
    report: RoundingReport


def _earlier_kappa(problem: AuctionProblem) -> sp.csr_matrix:
    """Sparse ``B[v, u] = κ(u, v) · [π(u) < π(v)]`` over the conflict graph.

    Built from the CSR backend when the graph is sparse (no n×n densify);
    entries are identical either way, so the penalty matrix below is
    bit-equal across backends.
    """
    pos = problem.ordering.pos
    graph = problem.graph
    if graph.is_sparse:
        src = graph.wbar_csr if problem.is_weighted else graph.csr
        coo = src.tocoo()
        mask = pos[coo.col] < pos[coo.row]
        data = (
            coo.data[mask].astype(float)
            if problem.is_weighted
            else np.ones(int(mask.sum()))
        )
        b = sp.csr_matrix(
            (data, (coo.row[mask], coo.col[mask])), shape=(graph.n, graph.n)
        )
    else:
        kappa = (
            problem.graph.wbar_matrix
            if problem.is_weighted
            else problem.graph.adjacency.astype(float)
        )
        earlier = pos[None, :] < pos[:, None]  # earlier[v, u]: π(u) < π(v)
        b = sp.csr_matrix(np.where(earlier & (kappa > 0), kappa, 0.0))
    b.sort_indices()
    return b


class _Estimator:
    """F(q) = b·q − qᵀ M q over one class's columns.

    ``penalty[a, b] = pen · val_a · κ(u_b, v_a)`` for entries whose vertices
    are graph-adjacent with π(u_b) < π(v_a) and whose bundles intersect —
    the same matrix the seed implementation assembled with an O(m²) Python
    double loop, built here from sparse incidence products in O(nnz).
    Different vertices round independently and Γ_π(v) excludes v, so the
    matrix never couples two entries of one vertex — which is what makes
    the O(degree) incremental update in :meth:`fix_best_choice` exact.
    """

    def __init__(
        self,
        problem: AuctionProblem,
        entries: list[tuple[int, frozenset[int], float, float]],
        scale: float,
    ) -> None:
        m = len(entries)
        self.values = np.array([e[2] for e in entries])
        self.q = np.array([e[3] / scale for e in entries])
        verts = np.fromiter((e[0] for e in entries), dtype=np.intp, count=m)
        self.vertex_cols: dict[int, list[int]] = {}
        for i, v in enumerate(verts):
            self.vertex_cols.setdefault(int(v), []).append(i)

        pen = 2.0 if problem.is_weighted else 1.0
        k = problem.k
        chan = np.zeros((m, k), dtype=bool)
        for i, (_v, bundle, _val, _x) in enumerate(entries):
            chan[i, list(bundle)] = True
        if m:
            # entry-level vertex adjacency via incidence products, then
            # filter pairs to intersecting bundles and scale rows by
            # pen·val_a — same entries (and canonical CSR order) as the
            # seed's double loop
            incidence = sp.csr_matrix(
                (np.ones(m), (np.arange(m), verts)), shape=(m, problem.n)
            )
            pairs = (incidence @ _earlier_kappa(problem) @ incidence.T).tocoo()
            keep = (chan[pairs.row] & chan[pairs.col]).any(axis=1)
            rows, cols = pairs.row[keep], pairs.col[keep]
            data = pen * self.values[rows] * pairs.data[keep]
        else:
            rows = cols = np.empty(0, dtype=np.intp)
            data = np.empty(0)
        self.penalty = sp.coo_matrix((data, (rows, cols)), shape=(m, m)).tocsr()
        self.penalty.sort_indices()
        self._penalty_t = self.penalty.T.tocsr()
        self._penalty_t.sort_indices()

    def value(self, q: np.ndarray) -> float:
        return float(self.values @ q - q @ (self.penalty @ q))

    def _gain(self, c: int, q: np.ndarray) -> float:
        """ΔF of setting ``q[c] = 1`` from a state where the entry (and its
        vertex siblings) are zeroed: ``values[c] − P[c,:]·q − qᵀ·P[:,c]``."""
        p, pt = self.penalty, self._penalty_t
        s, e = p.indptr[c], p.indptr[c + 1]
        row_term = p.data[s:e] @ q[p.indices[s:e]] if e > s else 0.0
        s, e = pt.indptr[c], pt.indptr[c + 1]
        col_term = pt.data[s:e] @ q[pt.indices[s:e]] if e > s else 0.0
        return float(self.values[c] - row_term - col_term)

    def fix_best_choice(self, vertex: int, q: np.ndarray) -> None:  # repro: mutates[q] -- fixes the marginals in place
        """Replace ``vertex``'s marginals with its best deterministic choice
        (one of its bundles, or the empty bundle).

        F is multilinear with no same-vertex cross terms, so each choice's
        conditional expectation is the zeroed-vertex baseline plus that
        entry's gain — comparing gains (the empty bundle's is 0) selects
        the same argmax as the seed's full F re-evaluations in O(degree)
        per choice instead of O(m + nnz).

        One float caveat (mirroring the vectorized-rounding kernels): when
        a choice's gain is *exactly* zero — a mathematical tie with the
        empty bundle — the seed's full re-evaluations could break the tie
        either way depending on dot-product rounding, while the gain
        comparison deterministically keeps the empty bundle (the strict-
        improvement rule applied to the exact difference).  Both outcomes
        are estimator-neutral and carry the same guarantee.
        """
        cols = self.vertex_cols.get(vertex, [])
        if not cols:
            return
        for c in cols:
            q[c] = 0.0
        best_col = -1
        best_gain = 0.0  # the empty bundle, considered first
        for c in cols:
            gain = self._gain(c, q)
            if gain > best_gain:
                best_gain = gain
                best_col = c
        if best_col >= 0:
            q[best_col] = 1.0


def derandomize_rounding(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    scale: float | None = None,
    split: bool = True,
    resolve: str = "survivors",
) -> DerandomizedResult:
    """Deterministic Algorithm 1/2 with the conditional-expectation rule."""
    eff_scale = default_scale(problem) if scale is None else float(scale)
    threshold = math.sqrt(problem.k)
    classes: list[list[tuple[int, frozenset[int], float, float]]] = (
        [[], []] if split else [[]]
    )
    for col, x in solution.support():
        entry = (col.vertex, col.bundle, col.value, x)
        if split:
            classes[0 if len(col.bundle) <= threshold else 1].append(entry)
        else:
            classes[0].append(entry)

    resolver = (
        resolve_weighted_partial if problem.is_weighted else resolve_unweighted
    )
    report = RoundingReport(scale=eff_scale, split=split)
    tentatives: list[Allocation] = []
    estimator_values: list[float] = []
    best_alloc: Allocation = {}
    best_value = -1.0
    for cls, entries in enumerate(classes):
        estimator = _Estimator(problem, entries, eff_scale)
        q = estimator.q.copy()
        for v in sorted(estimator.vertex_cols):
            estimator.fix_best_choice(v, q)
        tentative: Allocation = {}
        for i, (v, bundle, _val, _x) in enumerate(entries):
            if q[i] > 0.5:
                tentative[v] = bundle
        estimator_values.append(estimator.value(q))
        tentatives.append(tentative)
        allocation, removed = resolver(problem, tentative, resolve)
        value = problem.welfare(allocation)
        report.class_values.append(value)
        report.tentative_sizes.append(len(tentative))
        report.removed_counts.append(removed)
        if value > best_value:
            best_alloc, best_value = allocation, value
            report.chosen_class = cls
    return DerandomizedResult(
        allocation=best_alloc,
        estimator_values=estimator_values,
        tentative=tentatives,
        report=report,
    )
