"""Thin LP layer over scipy's HiGHS with consistent dual extraction.

Everything here is phrased as a *maximization* packing LP

    max c·x   s.t.   A x ≤ b,   x ≥ 0,

which covers LP (1), LP (4), the dual-decomposition master of Lavi–Swamy,
and the edge-based baseline LP.  SciPy solves minimizations and reports
marginals with minimization signs; :func:`solve_packing_lp` normalizes so
that the returned duals ``y ≥ 0`` satisfy complementary slackness and
strong duality ``c·x* = b·y*`` for feasible bounded problems (verified in
tests against hand-solved programs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

__all__ = ["LPSolution", "solve_packing_lp"]


@dataclass
class LPSolution:
    """Primal/dual solution of a packing LP."""

    x: np.ndarray
    value: float
    duals: np.ndarray
    status: int
    message: str

    @property
    def optimal(self) -> bool:
        return self.status == 0


def solve_packing_lp(
    c: np.ndarray,
    a_ub: sp.spmatrix | np.ndarray,
    b_ub: np.ndarray,
    upper_bounds: np.ndarray | None = None,
) -> LPSolution:
    """Solve ``max c·x s.t. a_ub x ≤ b_ub, 0 ≤ x ≤ upper_bounds``.

    ``upper_bounds=None`` leaves variables unbounded above (the packing
    rows are expected to bound them).  Raises ``RuntimeError`` when HiGHS
    does not return an optimal solution — callers always expect feasible
    bounded programs.
    """
    c = np.asarray(c, dtype=float)
    b_ub = np.asarray(b_ub, dtype=float)
    a = sp.csr_matrix(a_ub)
    if a.shape != (b_ub.shape[0], c.shape[0]):
        raise ValueError(
            f"A has shape {a.shape}, expected ({b_ub.shape[0]}, {c.shape[0]})"
        )
    bounds = (
        (0, None)
        if upper_bounds is None
        else [(0.0, float(u)) for u in np.asarray(upper_bounds, dtype=float)]
    )
    res = linprog(
        -c,
        A_ub=a,
        b_ub=b_ub,
        bounds=bounds,
        method="highs",
    )
    if res.status != 0:
        raise RuntimeError(f"LP solve failed (status {res.status}): {res.message}")
    # For min −c·x with A x ≤ b, HiGHS marginals are ≤ 0; negating yields
    # the usual y ≥ 0 of the maximization dual (min b·y, Aᵀy ≥ c).
    duals = -np.asarray(res.ineqlin.marginals, dtype=float)
    duals[duals < 0] = 0.0  # clip numerical noise
    return LPSolution(
        x=np.asarray(res.x, dtype=float),
        value=float(-res.fun),
        duals=duals,
        status=int(res.status),
        message=str(res.message),
    )
