"""Derandomization via pairwise independence (the paper's Section 5 remark).

The proofs of Theorem 3 and Lemma 7 only use the rounding stage's
randomness through (a) the marginals E[X_{v,T}] = x_{v,T}/scale and
(b) expectations of *pairwise* products E[X_{v,T}·X_{u,T'}] for u ≠ v.
Both survive if the per-vertex uniform draws are merely pairwise
independent, so the standard small sample space

    u_v = ((a + b·v) mod q) / q,      (a, b) ∈ Z_q²,   q prime ≥ n

of size q² supports the whole analysis.  Enumerating all q² seeds and
keeping the best outcome is therefore a deterministic algorithm whose
output meets the expectation bound (the average over the sample space does,
hence so does the maximum).

Practical notes, all surfaced in the API:

* the bundle-selection thresholds are quantized to multiples of 1/q; the
  marginals are preserved up to 1/q per bundle, so the realized bound is
  b*/(8√kρ) − (total value)/q — callers pick q to taste (`q="auto"` targets
  a 1% distortion);
* enumerating q² seeds costs q² conflict resolutions; `max_seeds` caps the
  work by scanning a deterministic stride of the seed space (the guarantee
  then degrades gracefully to "best of the scanned subset").

This module complements :mod:`repro.core.derandomize` (method of
conditional expectations): both are deterministic, the conditional-
expectation route is usually stronger per unit work, and ablation A5
compares them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.auction import Allocation, AuctionProblem
from repro.core.auction_lp import AuctionLPSolution
from repro.core.rounding import (
    default_scale,
    resolve_unweighted,
    resolve_weighted_partial,
)

__all__ = ["PairwiseRoundingResult", "smallest_prime_at_least", "pairwise_derandomize"]


def smallest_prime_at_least(n: int) -> int:
    """Smallest prime ≥ n (trial division; n is small here)."""
    candidate = max(2, int(n))
    while True:
        if candidate == 2 or (
            candidate % 2 and all(
                candidate % d for d in range(3, int(math.isqrt(candidate)) + 1, 2)
            )
        ):
            return candidate
        candidate += 1


@dataclass
class PairwiseRoundingResult:
    allocation: Allocation
    welfare: float
    q: int
    seeds_scanned: int
    best_seed: tuple[int, int]


def _build_thresholds(
    per_vertex: dict[int, list[tuple[frozenset[int], float, float]]],
    scale: float,
    q: int,
) -> tuple[list[int], list[list[tuple[int, frozenset[int]]]]]:
    """Quantized cumulative thresholds per vertex.

    For vertex v with bundles (T_i, x_i), bundle T_i is selected when the
    vertex's draw lands in [c_{i-1}, c_i) with c_i = round(q·Σ_{j≤i} x_j/scale).
    Draws are integers in [0, q), so comparisons are exact.
    """
    vertices: list[int] = []
    tables: list[list[tuple[int, frozenset[int]]]] = []
    for v, entries in per_vertex.items():
        acc = 0.0
        table: list[tuple[int, frozenset[int]]] = []
        for bundle, x, _value in entries:
            acc += x / scale
            table.append((int(round(acc * q)), bundle))
        vertices.append(v)
        tables.append(table)
    return vertices, tables


def pairwise_derandomize(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    scale: float | None = None,
    split: bool = True,
    q: int | str = "auto",
    max_seeds: int = 40_000,
) -> PairwiseRoundingResult:
    """Deterministic rounding by exhausting a pairwise-independent space."""
    eff_scale = default_scale(problem) if scale is None else float(scale)
    if q == "auto":
        # 1% marginal distortion and at least n points.
        q_val = smallest_prime_at_least(max(problem.n, 101))
    else:
        q_val = smallest_prime_at_least(int(q))
    resolver = (
        resolve_weighted_partial if problem.is_weighted else resolve_unweighted
    )

    threshold = math.sqrt(problem.k)
    per_vertex_all = solution.per_vertex()
    classes: list[dict[int, list[tuple[frozenset[int], float, float]]]] = []
    if split:
        small: dict[int, list] = {}
        large: dict[int, list] = {}
        for v, entries in per_vertex_all.items():
            for e in entries:
                (small if len(e[0]) <= threshold else large).setdefault(v, []).append(e)
        classes = [small, large]
    else:
        classes = [per_vertex_all]

    # Deterministic stride over the seed space when it exceeds max_seeds.
    total_space = q_val * q_val
    stride = max(1, total_space // max_seeds)

    best_alloc: Allocation = {}
    best_welfare = -1.0
    best_seed = (0, 0)
    scanned = 0
    for cls_entries in classes:
        vertices, tables = _build_thresholds(cls_entries, eff_scale, q_val)
        if not vertices:
            continue
        v_arr = np.asarray(vertices, dtype=np.int64)
        for flat in range(0, total_space, stride):
            a, b = divmod(flat, q_val)
            scanned += 1
            draws = (a + b * v_arr) % q_val
            tentative: Allocation = {}
            for idx, draw in enumerate(draws.tolist()):
                for cutoff, bundle in tables[idx]:
                    if draw < cutoff:
                        tentative[vertices[idx]] = bundle
                        break
            allocation, _ = resolver(problem, tentative, "survivors")
            welfare = problem.welfare(allocation)
            if welfare > best_welfare:
                best_alloc, best_welfare = allocation, welfare
                best_seed = (a, b)
    return PairwiseRoundingResult(
        allocation=best_alloc,
        welfare=max(best_welfare, 0.0),
        q=q_val,
        seeds_scanned=scanned,
        best_seed=best_seed,
    )
