"""Online arrival baseline (related work, Fanghänel et al. [9]).

The paper's Section 1.2 cites online capacity maximization as a sibling
problem: bidders arrive one at a time and must be granted or rejected
irrevocably.  This module implements the natural online greedy on our
substrate as an *extension baseline* — experiment E16 measures its
competitive ratio against the offline exact optimum, which contextualizes
how much the offline LP machinery buys.

The online algorithm: on arrival, a bidder reveals its valuation; the
auctioneer queries the bidder's demand oracle at zero prices restricted to
bundles that remain feasible alongside all previously granted bundles
(checked channel-by-channel against the conflict graph), and grants the
most valuable feasible bundle from the bidder's support (possibly none).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.auction import Allocation, AuctionProblem
from repro.util.rng import ensure_rng
from repro.valuations.base import enumerate_bundles

__all__ = ["OnlineResult", "online_greedy"]


@dataclass
class OnlineResult:
    allocation: Allocation
    welfare: float
    arrival_order: list[int]
    granted: int
    rejected: int


def _feasible_with(problem: AuctionProblem, allocation: Allocation, v: int, bundle: frozenset[int]) -> bool:
    graph = problem.graph
    for j in bundle:
        holders = [u for u, s in allocation.items() if j in s] + [v]
        if not graph.is_independent(holders):
            return False
    return True


def online_greedy(
    problem: AuctionProblem,
    arrival_order=None,
    seed=None,
) -> OnlineResult:
    """Grant each arriving bidder its most valuable still-feasible bundle."""
    rng = ensure_rng(seed)
    if arrival_order is None:
        order = rng.permutation(problem.n).tolist()
    else:
        order = list(arrival_order)
        if sorted(order) != list(range(problem.n)):
            raise ValueError("arrival_order must be a permutation of bidders")
    allocation: Allocation = {}
    granted = 0
    for v in order:
        valuation = problem.valuations[v]
        support = valuation.support()
        if support is None:
            support = [b for b in enumerate_bundles(problem.k) if b]
        best_bundle, best_value = None, 0.0
        for bundle in support:
            value = valuation.value(bundle)
            if value > best_value and _feasible_with(problem, allocation, v, bundle):
                best_bundle, best_value = bundle, value
        if best_bundle is not None:
            allocation[v] = frozenset(best_bundle)
            granted += 1
    return OnlineResult(
        allocation=allocation,
        welfare=problem.welfare(allocation),
        arrival_order=order,
        granted=granted,
        rejected=problem.n - granted,
    )
