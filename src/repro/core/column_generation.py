"""Demand-oracle LP solving (Section 2.2) via column generation.

The paper separates the *dual* of LP (1)/(4) with demand oracles inside the
ellipsoid method.  The practical equivalent — same oracle, same optimum —
is column generation on the primal:

1. solve the LP restricted to the current columns;
2. read the duals ``y_{u,j}`` (packing rows) and ``z_v`` (vertex rows);
3. form the *bidder-specific channel prices* of the paper,

       p_{v,j} = Σ_{u : v ∈ Γ_π(u)} κ(v, u) · y_{u,j},

   i.e. each later vertex ``u`` passes its row duals back to ``v`` scaled
   by the interference coefficient κ (1 on backward edges, or w̄(v, u));
4. query each bidder's demand oracle at its prices: a bundle with utility
   above ``z_v`` is a violated dual constraint — add it as a column;
5. stop when no oracle finds a violated constraint: the duals are feasible
   for the full exponential dual, so the restricted optimum is the true
   LP optimum (weak duality certificate, checked in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP, AuctionLPSolution, Column

__all__ = ["ColumnGenerationResult", "bidder_prices", "solve_with_column_generation"]


@dataclass
class ColumnGenerationResult:
    """Final LP solution plus column-generation diagnostics."""

    solution: AuctionLPSolution
    iterations: int
    columns_generated: int
    converged: bool
    oracle_calls: int


def bidder_prices(problem: AuctionProblem, y: np.ndarray) -> np.ndarray:
    """Per-bidder channel prices ``p[v, j]`` from packing duals ``y``.

    Vectorized over the interference coefficients: ``p = Kᵀ·…`` where
    ``K[v, u] = κ(v, u)`` for π(u) > π(v) and 0 otherwise.
    """
    ordering = problem.ordering
    pos = ordering.pos
    later = pos[:, None] < pos[None, :]  # later[v, u]: π(v) < π(u)
    if problem.is_weighted:
        kappa = problem.graph.wbar_matrix * later
    else:
        kappa = problem.graph.adjacency * later
    return kappa.astype(float) @ y


def solve_with_column_generation(
    problem: AuctionProblem,
    initial_columns: list[Column] | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-7,
) -> ColumnGenerationResult:
    """Solve LP (1)/(4) using only demand-oracle access to valuations."""
    lp = AuctionLP(problem, columns=[])
    oracle_calls = 0

    if initial_columns is None:
        # Seed with each bidder's favorite bundle at zero prices.
        zero = np.zeros(problem.k)
        for v, valuation in enumerate(problem.valuations):
            bundle, util = valuation.demand(zero)
            oracle_calls += 1
            if bundle and util > 0:
                lp.add_column(Column(v, bundle, valuation.value(bundle)))
    else:
        for col in initial_columns:
            lp.add_column(col)

    generated = 0
    solution = lp.solve()
    for iteration in range(1, max_iterations + 1):
        prices = bidder_prices(problem, solution.y)
        added = 0
        for v, valuation in enumerate(problem.valuations):
            bundle, util = valuation.demand(prices[v])
            oracle_calls += 1
            if not bundle:
                continue
            slack = util - solution.z[v]
            if slack > tolerance:
                value = valuation.value(bundle)
                if value > 0 and lp.add_column(Column(v, bundle, float(value))):
                    added += 1
        if added == 0:
            return ColumnGenerationResult(
                solution=solution,
                iterations=iteration,
                columns_generated=generated,
                converged=True,
                oracle_calls=oracle_calls,
            )
        generated += added
        solution = lp.solve()
        solution.iterations = iteration + 1
    return ColumnGenerationResult(
        solution=solution,
        iterations=max_iterations,
        columns_generated=generated,
        converged=False,
        oracle_calls=oracle_calls,
    )
