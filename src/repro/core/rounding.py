"""Randomized LP rounding — Algorithm 1 (unweighted) and Algorithm 2 (weighted).

Both algorithms share the same skeleton:

1. **decompose** the LP solution by bundle size: x⁽¹⁾ keeps bundles with
   |T| ≤ √k, x⁽²⁾ the rest (line 1 of both algorithms);
2. **rounding stage** — every vertex independently picks bundle T with
   probability ``x_{v,T} / scale`` (scale = 2√kρ unweighted, 4√kρ weighted)
   and otherwise the empty bundle;
3. **conflict resolution** — vertices are scanned in increasing π and lose
   their bundle when their backward conflicts are too heavy: any shared
   channel with a backward neighbor (Algorithm 1), or shared-channel
   symmetric weight ≥ 1/2 (Algorithm 2, Condition (5));
4. the better of the two candidate allocations is returned.

Algorithm 1's output is immediately feasible; Algorithm 2's output is only
*partly feasible* and is finished by Algorithm 3
(:mod:`repro.core.conflict_resolution`).

Two paper-faithful knobs are exposed for the ablation benches: ``split``
(disable the √k decomposition, A1) and ``resolve`` (resolve conflicts
against tentative bundles instead of surviving ones, A2 — the proof of
Lemma 4 upper-bounds removals with tentative bundles, so the "survivors"
default only keeps more).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.auction import Allocation, AuctionProblem
from repro.core.auction_lp import AuctionLPSolution
from repro.util.rng import ensure_rng

__all__ = [
    "RoundingReport",
    "default_scale",
    "sample_tentative",
    "resolve_unweighted",
    "resolve_weighted_partial",
    "round_unweighted",
    "round_weighted",
]


@dataclass
class RoundingReport:
    """What happened inside one rounding run (for tests and experiments)."""

    scale: float
    split: bool
    class_values: list[float] = field(default_factory=list)
    chosen_class: int = -1
    tentative_sizes: list[int] = field(default_factory=list)
    removed_counts: list[int] = field(default_factory=list)


def default_scale(problem: AuctionProblem) -> float:
    """2√kρ for unweighted graphs, 4√kρ for weighted (Algorithms 1/2)."""
    base = 2.0 * math.sqrt(problem.k) * max(problem.rho, 1.0)
    return 2.0 * base if problem.is_weighted else base


def _split_classes(
    solution: AuctionLPSolution, k: int, split: bool
) -> list[dict[int, list[tuple[frozenset[int], float, float]]]]:
    """Decompose the LP support into the |T| ≤ √k and |T| > √k classes."""
    per_vertex = solution.per_vertex()
    if not split:
        return [per_vertex]
    threshold = math.sqrt(k)
    small: dict[int, list] = {}
    large: dict[int, list] = {}
    for v, entries in per_vertex.items():
        for bundle, x, value in entries:
            target = small if len(bundle) <= threshold else large
            target.setdefault(v, []).append((bundle, x, value))
    return [small, large]


def sample_tentative(
    per_vertex: dict[int, list[tuple[frozenset[int], float, float]]],
    scale: float,
    rng: np.random.Generator,
) -> Allocation:
    """Rounding stage: pick each vertex's bundle independently with
    probability x/scale (empty otherwise)."""
    if scale < 1.0:
        raise ValueError("scale must be at least 1 for valid probabilities")
    tentative: Allocation = {}
    for v, entries in per_vertex.items():
        u = rng.random()
        acc = 0.0
        for bundle, x, _value in entries:
            acc += x / scale
            if u < acc:
                tentative[v] = bundle
                break
    return tentative


def resolve_unweighted(
    problem: AuctionProblem,
    tentative: Allocation,
    resolve: str = "survivors",
) -> tuple[Allocation, int]:
    """Algorithm 1's conflict resolution: scan in increasing π; a vertex
    loses its bundle when a backward neighbor shares a channel.

    ``resolve="survivors"`` checks against bundles still alive (keeps more,
    still covered by the proof); ``"tentative"`` checks against the raw
    rounded bundles (the literal pessimistic reading).  Returns the feasible
    allocation and the number of removed vertices.
    """
    if resolve not in ("survivors", "tentative"):
        raise ValueError(f"unknown resolve mode {resolve!r}")
    adjacency = problem.graph.adjacency
    pos = problem.ordering.pos
    order = sorted(tentative, key=lambda v: pos[v])
    final: Allocation = {}
    removed = 0
    reference = tentative if resolve == "tentative" else final
    for v in order:
        bundle = tentative[v]
        conflict = False
        for u in order:
            if pos[u] >= pos[v]:
                break
            if not adjacency[u, v]:
                continue
            other = reference.get(u)
            if other and other & bundle:
                conflict = True
                break
        if conflict:
            removed += 1
        else:
            final[v] = bundle
    return final, removed


def resolve_weighted_partial(
    problem: AuctionProblem,
    tentative: Allocation,
    resolve: str = "survivors",
) -> tuple[Allocation, int]:
    """Algorithm 2's partial resolution: a vertex is dropped when the
    symmetric weight to earlier shared-channel vertices reaches 1/2.

    With the default "survivors" reference the output satisfies Condition
    (5) by construction; the "tentative" variant (the proof's pessimistic
    estimate) is kept for the ablation bench and *also* satisfies (5),
    since surviving earlier bundles are a subset of tentative ones.
    """
    if resolve not in ("survivors", "tentative"):
        raise ValueError(f"unknown resolve mode {resolve!r}")
    wbar = problem.graph.wbar_matrix
    pos = problem.ordering.pos
    order = sorted(tentative, key=lambda v: pos[v])
    final: Allocation = {}
    removed = 0
    reference = tentative if resolve == "tentative" else final
    for v in order:
        bundle = tentative[v]
        total = 0.0
        for u in order:
            if pos[u] >= pos[v]:
                break
            other = reference.get(u)
            if other and other & bundle:
                total += wbar[u, v]
        if total >= 0.5:
            removed += 1
        else:
            final[v] = bundle
    return final, removed


def _run(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    rng,
    scale: float | None,
    split: bool,
    resolve: str,
    resolver,
) -> tuple[Allocation, RoundingReport]:
    rng = ensure_rng(rng)
    eff_scale = default_scale(problem) if scale is None else float(scale)
    report = RoundingReport(scale=eff_scale, split=split)
    best: Allocation = {}
    best_value = -1.0
    for cls, per_vertex in enumerate(_split_classes(solution, problem.k, split)):
        tentative = sample_tentative(per_vertex, eff_scale, rng)
        allocation, removed = resolver(problem, tentative, resolve)
        value = problem.welfare(allocation)
        report.class_values.append(value)
        report.tentative_sizes.append(len(tentative))
        report.removed_counts.append(removed)
        if value > best_value:
            best, best_value = allocation, value
            report.chosen_class = cls
    return best, report


def round_unweighted(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    rng=None,
    scale: float | None = None,
    split: bool = True,
    resolve: str = "survivors",
) -> tuple[Allocation, RoundingReport]:
    """Algorithm 1.  Returns a feasible allocation and a report."""
    if problem.is_weighted:
        raise ValueError("round_unweighted requires an unweighted conflict graph")
    return _run(problem, solution, rng, scale, split, resolve, resolve_unweighted)


def round_weighted(
    problem: AuctionProblem,
    solution: AuctionLPSolution,
    rng=None,
    scale: float | None = None,
    split: bool = True,
    resolve: str = "survivors",
) -> tuple[Allocation, RoundingReport]:
    """Algorithm 2.  Returns a *partly feasible* allocation (Condition (5));
    finish with :func:`repro.core.conflict_resolution.make_fully_feasible`."""
    if not problem.is_weighted:
        raise ValueError("round_weighted requires a weighted conflict graph")
    return _run(problem, solution, rng, scale, split, resolve, resolve_weighted_partial)
