"""Typed failure modes of the auction service.

The fault-tolerance contract (DESIGN.md → "Fault tolerance & chaos") is
that a request submitted to the service resolves in exactly one of three
ways: a result, a *typed* error from this hierarchy (plus
:class:`~repro.service.pool.WorkerCrashError`), or a synchronous typed
rejection at submit time.  Untyped exceptions escaping a future are a
bug, and the chaos runner (:mod:`repro.service.chaos`) asserts exactly
that invariant.

* :class:`ShedError` — admission control rejected the request because the
  bounded queue was full; raised synchronously by ``submit`` so the
  caller can back off (nothing was accepted, nothing is in flight).
* :class:`DeadlineExceeded` — the request was accepted but its deadline
  budget expired before the service could (usefully) start solving it;
  set on the request's future.
* :class:`InjectedFaultError` — a :class:`~repro.service.faults.FaultPlan`
  fired a backend-error fault at a solve site; stands in for a native
  solver failure in chaos runs and is typed so injected failures are
  distinguishable from real bugs.
"""

from __future__ import annotations

__all__ = ["ServiceFaultError", "ShedError", "DeadlineExceeded", "InjectedFaultError"]


class ServiceFaultError(RuntimeError):
    """Base of the service's typed failure modes."""


class ShedError(ServiceFaultError):
    """Admission control rejected the request (bounded queue full)."""


class DeadlineExceeded(ServiceFaultError):
    """The request's deadline budget expired before it could be served."""


class InjectedFaultError(ServiceFaultError):
    """A fault plan injected a backend error at a solve site."""
