"""The long-lived auction service: queue, coalesce, route, solve, account.

:class:`AuctionService` turns the batch engine into a request-driven
system.  The moving parts, in request order:

* **Scene registry** (:mod:`repro.service.scenes`) — conflict structures
  are registered once under a content-hash id; requests reference scenes
  by id, so the per-request payload is just valuations + a seed.
* **Compilation caches** — an LRU of :class:`CompiledStructure`\\ s keyed
  by structure identity (one entry per scene) and an LRU of
  :class:`CompiledAuction`\\ s keyed by ``(scene, k, profile_key)`` for
  requests that declare a reusable valuation profile.  A repeated profile
  therefore pays for its LP exactly once; both caches expose
  hit/miss/eviction counters through the metrics snapshot.  Capacity 0
  disables a cache — the benchmark's baseline configuration.
* **Coalescing queue** — submitted requests land on one queue; the
  dispatcher batches whatever arrives within ``coalesce_window`` seconds
  of the first pending request (up to ``max_batch``), groups the batch by
  scene, and hands each group to the engine's stage-batched
  :meth:`~repro.engine.batch.BatchAuctionEngine.solve_compiled` — one
  compiled-structure pass, one LP stage, one rounding stage per group.
  Each request carries its own seed, so its result is independent of
  which batch it was coalesced into (pinned by the service tests).
* **Shard-affinity routing** — groups are routed to a worker shard by
  scene id hash.  The warm-start basis of the persistent HiGHS backend is
  thread-local, so pinning a scene to one shard thread is what makes
  warm-started re-solves actually hit their basis.
* **Metrics** (:mod:`repro.service.metrics`) — throughput, p50/p95/p99
  latency, batch sizes, cache hit rates, warm/cold LP solve counts.

``executor="serial"`` keeps the dispatcher thread but runs every group
inline in it — deterministic ordering, no shard threads — and is the
configuration the determinism tests pin.  :meth:`solve_batch` /
:meth:`run_trace` bypass the queue entirely for synchronous, simulated
replays.

``executor="thread"`` shards are cheap but share one GIL, which caps
distinct-heavy throughput at ~1x no matter the shard count.
``executor="process"`` swaps them for a
:class:`~repro.service.pool.ProcessShardPool` of long-lived worker
processes — each owning its own HiGHS backend, warm bases, and
compilation caches — with scene-affinity routing (plus spill to the
least-loaded worker), pickle-once scene shipping, and crash recovery.
Per-request seeds make pool results bit-identical to the serial path, so
the choice of executor is purely a throughput decision.

**Fault tolerance** (DESIGN.md → "Fault tolerance & chaos"): the queued
path enforces *admission control* (``max_queue`` bounds the backlog;
overflow raises :class:`~repro.service.errors.ShedError` synchronously)
and *per-request deadlines* (``AuctionRequest.deadline`` is a budget in
seconds from submit; a batch never waits past the point where its
earliest member could still be served, an expired request fails typed
with :class:`~repro.service.errors.DeadlineExceeded`, and a request
whose remaining budget cannot fit an LP solve degrades to the paper's
greedy baseline allocation, flagged ``details["degraded"]``).  A
:class:`~repro.service.faults.FaultPlan` injects slow-solve latency and
backend errors at the ``"service.solve"`` site (and crash/spawn faults
in the pool workers); production configurations carry no plan.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.core.auction import AuctionProblem
from repro.engine.batch import BatchAuctionEngine
from repro.engine.compiled import CompiledAuction, compile_structure
from repro.engine.highs import warm_start_stats
from repro.service.errors import DeadlineExceeded, InjectedFaultError, ShedError
from repro.service.metrics import ServiceMetrics
from repro.service.scenes import SceneRegistry
from repro.service.wire import AuctionRequest, AuctionResponse
from repro.util.lru import LRUCache
from repro.util.rng import ensure_rng

if TYPE_CHECKING:
    import pathlib

    from repro.mechanism.truthful import MechanismOutcome
    from repro.service.faults import FaultPlan
    from repro.service.pool import ProcessShardPool
    from repro.service.scenes import AnyStructure
    from repro.service.traffic import TrafficTrace

# AuctionRequest is defined in the wire module (the request *is* the
# wire schema) and re-exported here for the pre-gateway import path
__all__ = ["AuctionRequest", "AuctionService"]

_EXECUTORS = ("serial", "thread", "process")


_REQUEST_MODES = ("allocate", "truthful")


@dataclass
class _Pending:
    request: AuctionRequest
    future: Future[AuctionResponse]
    submitted_at: float
    expires_at: float | None = None


class AuctionService:
    """Long-lived auction server over :class:`BatchAuctionEngine`."""

    def __init__(
        self,
        *,
        registry: SceneRegistry | None = None,
        executor: str = "thread",
        num_shards: int = 2,
        coalesce_window: float = 0.005,
        max_batch: int = 32,
        structure_cache_size: int = 32,
        problem_cache_size: int = 256,
        mechanism_cache_size: int = 64,
        mechanism_pricing: str = "approx",
        rounding_attempts: int = 1,
        lp_warm_start: bool = False,
        adaptive_coalescing: bool = True,
        mp_start_method: str = "auto",
        worker_retries: int = 1,
        max_queue: int | None = None,
        fault_plan: FaultPlan | None = None,
        degrade_headroom: float = 1.0,
        solve_time_hint: float | None = None,
        pool_config: dict[str, Any] | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        """``mechanism_cache_size`` bounds the LRU of prepared truthful
        outcomes (decomposition + payments) keyed by
        ``(scene_id, k, profile_key)``; 0 disables it — every truthful
        request then recomputes its decomposition, the benchmark's
        baseline.  ``mechanism_pricing`` forwards the decomposition's
        pricing mode.  ``adaptive_coalescing`` lets the service skip the
        batching window when it cannot pay off — caches disabled, or a
        distinct-heavy request stream (see :meth:`_bypass_window`).

        With ``executor="process"``, ``num_shards`` is the worker-process
        count, ``mp_start_method`` picks how workers are started
        (``"auto"`` → forkserver where available, else spawn; see
        :mod:`repro.util.mp`), and ``worker_retries`` bounds how often a
        batch whose worker crashed is retried on the respawned worker
        before its futures fail.  The cache sizes and pricing/rounding
        options configure each *worker's* caches — the parent-side caches
        stay idle, since compilation happens where the solving does.
        ``pool_config`` forwards extra keyword arguments to
        :class:`~repro.service.pool.ProcessShardPool` (respawn backoff and
        circuit-breaker tuning).

        ``max_queue`` bounds the dispatcher backlog (``None`` =
        unbounded); :meth:`submit` raises
        :class:`~repro.service.errors.ShedError` synchronously when the
        bound is hit.  ``degrade_headroom`` scales the solve-time
        estimate used by deadline triage: a request is degraded to the
        greedy baseline when its remaining budget is below
        ``degrade_headroom`` times the estimated solve time (0 disables
        degradation — expired requests still fail typed).
        ``solve_time_hint`` seeds the EWMA solve-time estimate before the
        first observation.  ``fault_plan`` arms a
        :class:`~repro.service.faults.FaultPlan` for chaos runs."""
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if coalesce_window < 0 or max_batch < 1:
            raise ValueError("coalesce_window must be >= 0 and max_batch >= 1")
        if mechanism_pricing not in ("approx", "warm", "reference"):
            raise ValueError(f"unknown mechanism pricing {mechanism_pricing!r}")
        if worker_retries < 0:
            raise ValueError("worker_retries must be non-negative")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be positive (or None for unbounded)")
        if degrade_headroom < 0:
            raise ValueError("degrade_headroom must be non-negative")
        if solve_time_hint is not None and solve_time_hint <= 0:
            raise ValueError("solve_time_hint must be positive")
        self.registry = registry or SceneRegistry()
        self.executor = executor
        self.num_shards = num_shards if executor in ("thread", "process") else 1
        self.mp_start_method = mp_start_method
        self.worker_retries = worker_retries
        self.max_queue = max_queue
        self.fault_plan = fault_plan
        self.degrade_headroom = degrade_headroom
        self.pool_config = dict(pool_config or {})
        self.coalesce_window = coalesce_window
        self.max_batch = max_batch
        self.adaptive_coalescing = adaptive_coalescing
        self.mechanism_pricing = mechanism_pricing
        self.metrics = metrics or ServiceMetrics()
        self.structure_cache = LRUCache(structure_cache_size, name="structures")
        self.problem_cache = LRUCache(problem_cache_size, name="problems")
        self.mechanism_cache = LRUCache(mechanism_cache_size, name="mechanisms")
        # rolling profile_key presence of recent requests, for the
        # distinct-heavy coalescing bypass (windowed counter, newest wins)
        self._recent_profiled: list[bool] = []  #: guarded-by: _state_lock
        # the engine is used purely through solve_compiled, stage-batching
        # each coalesced group in whichever shard thread it lands on
        self.engine = BatchAuctionEngine(
            executor="serial",
            rounding_attempts=rounding_attempts,
            lp_warm_start=lp_warm_start,
            structure_cache=self.structure_cache,
        )
        self._queue: queue.SimpleQueue[_Pending] = queue.SimpleQueue()
        # SimpleQueue.qsize is unreliable; _queued tracks depth explicitly.
        # _idle shares _state_lock, so either name satisfies the guard.
        self._queued = 0  #: guarded-by: _state_lock, _idle
        self._inflight = 0  #: guarded-by: _state_lock, _idle
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._warm_totals = {"warm": 0, "cold": 0}  #: guarded-by: _state_lock, _idle
        # EWMA of observed per-request solve time, feeding deadline triage
        self._solve_ewma: float | None = solve_time_hint  #: guarded-by: _state_lock
        self._closed = False  #: guarded-by: _state_lock, _idle
        self._dispatcher: threading.Thread | None = None
        self._shards: list[ThreadPoolExecutor] = []
        self._pool: ProcessShardPool | None = None  # created lazily on first submit

    # ------------------------------------------------------------------
    # scenes
    # ------------------------------------------------------------------
    def register_scene(self, structure: AnyStructure) -> str:
        """Register (or re-register) a conflict structure; returns scene id."""
        return self.registry.register(structure)

    def _shard_of(self, scene_id: str) -> int:
        return int(scene_id, 16) % self.num_shards

    # ------------------------------------------------------------------
    # compilation (through the service-owned caches)
    # ------------------------------------------------------------------
    def _compiled_for(self, request: AuctionRequest) -> CompiledAuction:
        structure = self.registry.get(request.scene_id)
        compiled_structure = compile_structure(structure, cache=self.structure_cache)

        def build() -> CompiledAuction:
            problem = AuctionProblem(structure, request.k, list(request.valuations))
            return CompiledAuction(problem, structure=compiled_structure)

        if request.profile_key is None:
            return build()
        key = (request.scene_id, request.k, request.profile_key)
        return self.problem_cache.get_or_create(key, build)

    def _mechanism_outcome(self, request: AuctionRequest) -> MechanismOutcome:
        """The prepared truthful outcome for a request (cached by profile).

        Prepared with a fixed internal seed so the cached entry does not
        depend on which request of a shared profile arrived first (the
        seed only feeds the decomposition's rare randomized-escape path);
        per-request randomness enters at sampling time only.
        """
        from repro.mechanism.truthful import TruthfulMechanism

        structure = self.registry.get(request.scene_id)
        compiled_structure = compile_structure(structure, cache=self.structure_cache)

        def build() -> MechanismOutcome:
            mechanism = TruthfulMechanism(
                structure,
                request.k,
                pricing=self.mechanism_pricing,
                compiled_structure=compiled_structure,
            )
            return mechanism.prepare(list(request.valuations), seed=0)

        if request.profile_key is None:
            return build()
        key = (request.scene_id, request.k, request.profile_key)
        return self.mechanism_cache.get_or_create(key, build)

    # ------------------------------------------------------------------
    # synchronous path (used by simulated replay and the dispatcher)
    # ------------------------------------------------------------------
    def _solve_scene_group(self, requests: list[AuctionRequest]) -> list[Any]:
        """Solve one scene's coalesced requests (mixed modes), in order.

        Allocate requests go through the engine's stage-batched path as
        one group; truthful requests sample their (cached) decomposition
        with their own seeds — either way a request's result is
        independent of the batch it landed in.
        """
        bad = [r.mode for r in requests if r.mode not in _REQUEST_MODES]
        if bad:
            raise ValueError(
                f"mode must be one of {_REQUEST_MODES}, got {bad[0]!r}"
            )
        self._inject_solve_faults(requests)
        results: list[Any] = [None] * len(requests)
        alloc = [(i, r) for i, r in enumerate(requests) if r.mode == "allocate"]
        if alloc:
            group = [(r, self._compiled_for(r)) for _, r in alloc]
            for (i, _), result in zip(alloc, self._solve_group(group)):
                results[i] = result
        for i, request in enumerate(requests):
            if request.mode == "truthful":
                outcome = self._mechanism_outcome(request)
                rng = ensure_rng(request.seed)
                results[i] = replace(
                    outcome,
                    sampled_allocation=outcome.decomposition.sample(rng),
                )
        return results

    def _note_requests(self, requests: list[AuctionRequest]) -> None:
        """Feed the distinct-heavy detector (windowed, newest last)."""
        with self._state_lock:
            self._recent_profiled.extend(
                r.profile_key is not None for r in requests
            )
            del self._recent_profiled[:-64]

    def _bypass_window(self, head: AuctionRequest | None = None) -> bool:
        """Should the coalescing window be skipped for this batch?

        Coalescing pays off when batched requests share cached state
        (profiles, scenes); it only adds latency and stage-batching
        overhead when the caches are disabled or the request stream is
        distinct-heavy.  Both conditions are cheap to detect — the recent
        requests' ``profile_key`` presence plus the batch head's own — so
        the service adapts per batch instead of making the operator tune
        the window per trace.
        """
        if not self.adaptive_coalescing:
            return False
        # a disabled cache means batching the head's mode cannot pay off;
        # without a head, bypass only when no mode could benefit
        if head is None:
            caches_off = (
                self.problem_cache.capacity == 0
                and self.mechanism_cache.capacity == 0
            )
        elif head.mode == "truthful":
            caches_off = self.mechanism_cache.capacity == 0
        else:
            caches_off = self.problem_cache.capacity == 0
        if caches_off:
            return True
        with self._state_lock:
            recent = list(self._recent_profiled[-32:])
        if head is not None:
            recent.append(head.profile_key is not None)
        return bool(recent) and sum(recent) / len(recent) < 0.25

    def _inject_solve_faults(self, requests: list[AuctionRequest]) -> None:
        """Evaluate the ``"service.solve"`` fault site for one scene group.

        Keyed by each request's seed, so the decision is independent of
        how requests were coalesced.  Injected slow-downs accumulate
        (each fired request browns out the shared solve); an injected
        backend error fails the whole group typed, exactly like a native
        solver failure would.
        """
        plan = self.fault_plan
        if plan is None:
            return
        delay = 0.0
        errored = False
        for request in requests:
            for spec in plan.actions("service.solve", key=request.seed):
                if spec.kind == "slow":
                    delay += spec.delay
                else:
                    errored = True
        if delay > 0:
            time.sleep(delay)
        if errored:
            raise InjectedFaultError("injected backend error at site service.solve")

    def _solve_group(
        self, group: list[tuple[AuctionRequest, CompiledAuction]]
    ) -> list[AuctionResponse]:
        before = warm_start_stats()
        t0 = time.perf_counter()
        results = self.engine.solve_compiled(
            [(compiled, req.seed) for req, compiled in group]
        )
        elapsed = time.perf_counter() - t0
        after = warm_start_stats()
        with self._state_lock:
            self._warm_totals["warm"] += after["warm"] - before["warm"]
            self._warm_totals["cold"] += after["cold"] - before["cold"]
        per_request = elapsed / len(group) if group else 0.0
        if group:
            self._observe_solve_time(per_request)
        # the engine's bare SolverResults gain the wire envelope here, so
        # every path out of the service (queue, batch, pool, gateway)
        # hands back the canonical AuctionResponse
        return [
            AuctionResponse.from_result(
                result,
                scene_id=req.scene_id,
                seed=req.seed,
                timing={"solve_seconds": per_request},
            )
            for (req, _), result in zip(group, results)
        ]

    def solve_batch(self, requests: list[AuctionRequest]) -> list[AuctionResponse]:
        """Solve one coalesced batch synchronously, grouped by scene.

        This is the queueless entry point: results come back in request
        order — :class:`~repro.service.wire.AuctionResponse` for allocate
        requests (the canonical wire-schema result),
        :class:`~repro.mechanism.truthful.MechanismOutcome` for truthful
        ones — and every request's latency is recorded from batch start
        (the queue-based path records from its actual submit instead).
        """
        bad = [r.mode for r in requests if r.mode not in _REQUEST_MODES]
        if bad:  # reject before any metrics or work, mirroring submit()
            raise ValueError(
                f"mode must be one of {_REQUEST_MODES}, got {bad[0]!r}"
            )
        start = self.metrics.record_submit()
        for _ in requests[1:]:
            self.metrics.record_submit(start)
        self.metrics.record_batch(len(requests))
        self._note_requests(requests)
        groups: dict[str, list[int]] = {}
        for i, request in enumerate(requests):
            groups.setdefault(request.scene_id, []).append(i)
        results: list[AuctionResponse | None] = [None] * len(requests)
        for indices in groups.values():
            solved = self._solve_scene_group([requests[i] for i in indices])
            for i, result in zip(indices, solved):
                results[i] = result
                self.metrics.record_done(time.perf_counter() - start)
        return results  # type: ignore[return-value]

    def run_trace(self, trace: TrafficTrace, realtime: bool = False) -> list[AuctionResponse]:
        """Replay a :class:`~repro.service.traffic.TrafficTrace`.

        ``realtime=False`` (default) simulates the open-loop arrival
        process without sleeping: requests whose arrival stamps fall
        within ``coalesce_window`` of the first pending one are coalesced
        — deterministically, since only the recorded stamps matter — and
        each batch is solved inline.  ``realtime=True`` sleeps to each
        arrival stamp and submits through the queue, exercising the
        dispatcher and shard pool under genuine open-loop load.
        """
        requests = list(trace)
        if realtime:
            t0 = time.perf_counter()
            futures: list[Future[AuctionResponse]] = []
            for item in requests:
                delay = item.arrival - (time.perf_counter() - t0)
                if delay > 0:
                    time.sleep(delay)
                futures.append(self.submit(item.request))
            return [f.result() for f in futures]
        results: list[AuctionResponse] = []
        i = 0
        while i < len(requests):
            head = requests[i].request
            window = 0.0 if self._bypass_window(head) else self.coalesce_window
            cutoff = requests[i].arrival + window
            j = i + 1
            while (
                j < len(requests)
                and j - i < self.max_batch
                and requests[j].arrival <= cutoff
            ):
                j += 1
            results.extend(self.solve_batch([item.request for item in requests[i:j]]))
            i = j
        return results

    # ------------------------------------------------------------------
    # queued path (dispatcher + shard pool)
    # ------------------------------------------------------------------
    def _worker_config(self) -> dict[str, Any]:
        """The service options each pool worker's private service mirrors."""
        return {
            "structure_cache_size": self.structure_cache.capacity,
            "problem_cache_size": self.problem_cache.capacity,
            "mechanism_cache_size": self.mechanism_cache.capacity,
            "mechanism_pricing": self.mechanism_pricing,
            "rounding_attempts": self.engine.solve_kwargs["rounding_attempts"],
            "lp_warm_start": self.engine.solve_kwargs["lp_warm_start"],
            "fault_plan": self.fault_plan,
        }

    def _start_locked(self) -> None:
        """Start dispatcher + shard pool (caller holds ``_state_lock``)."""
        if self._dispatcher is None:
            if self.executor == "thread":
                self._shards = [
                    ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix=f"auction-shard-{i}"
                    )
                    for i in range(self.num_shards)
                ]
            elif self.executor == "process":
                from repro.service.pool import ProcessShardPool

                self._pool = ProcessShardPool(
                    self.registry,
                    self.num_shards,
                    worker_config=self._worker_config(),
                    start_method=self.mp_start_method,
                    max_retries=self.worker_retries,
                    **self.pool_config,
                ).start()
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="auction-dispatcher", daemon=True
            )
            self._dispatcher.start()

    def submit(self, request: AuctionRequest) -> Future:
        """Enqueue one request; returns a future resolving to its result.

        Raises :class:`~repro.service.errors.ShedError` synchronously when
        admission control rejects the request (``max_queue`` backlog full)
        — nothing was accepted and nothing is in flight.
        """
        if request.scene_id not in self.registry:
            raise KeyError(f"unknown scene {request.scene_id!r}; register it first")
        if request.mode not in _REQUEST_MODES:
            raise ValueError(
                f"mode must be one of {_REQUEST_MODES}, got {request.mode!r}"
            )
        if request.deadline is not None and request.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {request.deadline}")
        future: Future = Future()
        # closed-check and accounting under one lock hold: once _queued is
        # incremented a concurrent close() cannot observe an empty queue, so
        # the dispatcher stays alive until this request is picked up
        with self._state_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self.max_queue is not None and self._queued >= self.max_queue:
                shed = True
            else:
                shed = False
                self._start_locked()
                self._queued += 1
                self._inflight += 1
        if shed:
            self.metrics.record_shed()
            raise ShedError(
                f"queue full ({self.max_queue} pending); request shed"
            )
        submitted_at = self.metrics.record_submit()
        expires_at = (
            None if request.deadline is None else submitted_at + request.deadline
        )
        pending = _Pending(request, future, submitted_at, expires_at)
        self._queue.put(pending)
        return future

    def _dispatch_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.02)
            except queue.Empty:  # repro: allow[silent-except] -- idle poll; loops back to the queue
                with self._state_lock:
                    if self._closed and self._queued == 0:
                        return
                continue
            batch = [first]
            window = (
                0.0 if self._bypass_window(first.request) else self.coalesce_window
            )
            # a batch never waits past the point where its earliest-deadline
            # member could still be served: each deadlined member pulls the
            # cutoff up to its expiry minus a solve-estimate margin
            cutoff = time.perf_counter() + window
            cutoff = min(cutoff, self._dispatch_by(first))
            while len(batch) < self.max_batch:
                remaining = cutoff - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    member = self._queue.get(timeout=remaining)
                except queue.Empty:  # repro: allow[silent-except] -- window elapsed; batch dispatches as-is
                    break
                batch.append(member)
                cutoff = min(cutoff, self._dispatch_by(member))
            with self._state_lock:
                self._queued -= len(batch)
            batch = self._triage(batch)
            if not batch:
                continue
            self.metrics.record_batch(len(batch))
            self._note_requests([p.request for p in batch])
            groups: dict[str, list[_Pending]] = {}
            for pending in batch:
                groups.setdefault(pending.request.scene_id, []).append(pending)
            for scene_id, pendings in groups.items():
                if self.executor == "thread":
                    self._shards[self._shard_of(scene_id)].submit(
                        self._run_pendings, pendings
                    )
                elif self.executor == "process":
                    self._submit_remote(scene_id, pendings)
                else:
                    self._run_pendings(pendings)

    # ------------------------------------------------------------------
    # deadlines: triage + graceful degradation
    # ------------------------------------------------------------------
    def _solve_estimate(self) -> float | None:
        """Current EWMA estimate of one request's solve time (or None)."""
        with self._state_lock:
            return self._solve_ewma

    def _observe_solve_time(self, per_request: float) -> None:
        """Fold one observed per-request solve latency into the EWMA."""
        with self._state_lock:
            if self._solve_ewma is None:
                self._solve_ewma = per_request
            else:
                self._solve_ewma += 0.2 * (per_request - self._solve_ewma)

    def _dispatch_by(self, pending: _Pending) -> float:
        """Latest useful dispatch time for one pending request.

        Expiry minus a solve-estimate margin, so a request dispatched at
        the cutoff still has budget to be solved (or at least degraded);
        requests without deadlines never tighten the batch window.
        """
        if pending.expires_at is None:
            return float("inf")
        estimate = self._solve_estimate() or 0.0
        return pending.expires_at - 1.5 * self.degrade_headroom * estimate

    def _triage(self, batch: list[_Pending]) -> list[_Pending]:
        """Deadline triage at dispatch time; returns the members that
        proceed to the full pipeline.

        Expired members fail typed with :class:`DeadlineExceeded`
        (recorded as timeouts); allocate members whose remaining budget
        cannot fit an estimated LP solve are served by the greedy
        baseline inline (degradation is parent-side only — remote
        workers never see them, so ``perf_counter`` stamps are never
        compared across processes).
        """
        now = time.perf_counter()
        estimate = self._solve_estimate()
        keep: list[_Pending] = []
        degraded: list[_Pending] = []
        for p in batch:
            if p.expires_at is None:
                keep.append(p)
                continue
            remaining = p.expires_at - now
            if remaining <= 0:
                self.metrics.record_done(now - p.submitted_at, timed_out=True)
                p.future.set_exception(
                    DeadlineExceeded(
                        f"deadline {p.request.deadline}s expired before dispatch"
                    )
                )
                self._mark_finished(1)
            elif (
                self.degrade_headroom > 0
                and estimate is not None
                and remaining < self.degrade_headroom * estimate
                and p.request.mode == "allocate"
            ):
                degraded.append(p)
            else:
                keep.append(p)
        if degraded:
            self._serve_degraded(degraded)
        return keep

    def _serve_degraded(self, pendings: list[_Pending]) -> None:
        """Serve low-budget requests with the greedy baseline, inline."""
        for p in pendings:
            try:
                result = self._greedy_result(p.request)
            except BaseException as exc:  # noqa: BLE001 - forwarded to the future
                self.metrics.record_done(
                    time.perf_counter() - p.submitted_at, failed=True
                )
                p.future.set_exception(exc)
            else:
                self.metrics.record_done(
                    time.perf_counter() - p.submitted_at, degraded=True
                )
                p.future.set_result(result)
            self._mark_finished(1)

    def _greedy_result(self, request: AuctionRequest) -> AuctionResponse:
        """The paper's greedy baseline as a flagged, LP-free result.

        ``lp_value=0`` states honestly that no LP bound was computed
        (``meets_guarantee`` is vacuously true, ``guarantee`` is inf);
        ``details`` carries the degradation flag the chaos runner and
        clients key on.
        """
        from repro.core.baselines import greedy_channel_allocation

        structure = self.registry.get(request.scene_id)
        problem = AuctionProblem(structure, request.k, list(request.valuations))
        t0 = time.perf_counter()
        allocation = greedy_channel_allocation(problem)
        return AuctionResponse(
            allocation=allocation,
            welfare=problem.welfare(allocation),
            lp_value=0.0,
            feasible=True,
            guarantee=float("inf"),
            lp_iterations=0,
            details={"degraded": True, "fallback": "greedy"},
            scene_id=request.scene_id,
            seed=request.seed,
            timing={"solve_seconds": time.perf_counter() - t0},
        )

    def _submit_remote(self, scene_id: str, pendings: list[_Pending]) -> None:
        """Hand one scene group to the process pool; futures resolve later.

        The pool owns routing (scene affinity + spill) and crash retries;
        this callback only translates its group future back into the
        per-request futures and accounting, running on the pool's feeder
        thread for whichever worker solved the batch.
        """
        pool = self._pool
        assert pool is not None  # created with the dispatcher for executor="process"
        dispatched_at = time.perf_counter()
        group_future = pool.submit(scene_id, [p.request for p in pendings])

        def finish(
            f: Future[list[AuctionResponse]], pendings: list[_Pending] = pendings
        ) -> None:
            exc = f.exception()
            now = time.perf_counter()
            if exc is not None:
                for p in pendings:
                    self.metrics.record_done(now - p.submitted_at, failed=True)
                    p.future.set_exception(exc)
            else:
                # remote roundtrip (solve + IPC) feeds the triage EWMA —
                # what a parent-side deadline actually has to budget for
                self._observe_solve_time((now - dispatched_at) / len(pendings))
                for p, result in zip(pendings, f.result()):
                    self.metrics.record_done(time.perf_counter() - p.submitted_at)
                    p.future.set_result(result)
            self._mark_finished(len(pendings))

        group_future.add_done_callback(finish)

    def _run_pendings(self, pendings: list[_Pending]) -> None:
        try:
            results = self._solve_scene_group([p.request for p in pendings])
        except BaseException as exc:  # noqa: BLE001 - forwarded to the futures
            now = time.perf_counter()
            for p in pendings:
                self.metrics.record_done(now - p.submitted_at, failed=True)
                p.future.set_exception(exc)
            self._mark_finished(len(pendings))
            return
        for p, result in zip(pendings, results):
            self.metrics.record_done(time.perf_counter() - p.submitted_at)
            p.future.set_result(result)
        self._mark_finished(len(pendings))

    def _mark_finished(self, count: int) -> None:
        with self._idle:
            self._inflight -= count
            if self._inflight == 0:
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has resolved.

        Returns ``False`` on timeout (requests still in flight).
        """
        with self._idle:
            return self._idle.wait_for(lambda: self._inflight == 0, timeout=timeout)

    def close(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: stop intake, finish every accepted request,
        then stop the workers.

        Accepted requests are never dropped: even when the ``timeout``-
        bounded drain wait expires (return value ``False``), close still
        completes the remaining backlog before returning — ``timeout``
        bounds the *reporting*, not the shutdown.  Submitting after close
        raises.  Idempotent.
        """
        with self._state_lock:
            if self._closed:
                return True
            self._closed = True
            dispatcher = self._dispatcher
        drained = self.drain(timeout=timeout)
        if dispatcher is not None:
            dispatcher.join()
        for shard in self._shards:
            shard.shutdown(wait=True)
        self._shards = []
        if self._pool is not None:
            self._pool.close()  # kept for post-close stats snapshots
        return drained

    def __enter__(self) -> "AuctionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        """Can the service accept and serve requests right now?

        Serial/thread executors are healthy while open; the process
        executor additionally requires at least one routable worker
        (circuit breakers open on every worker means submits would only
        queue and fail).
        """
        with self._state_lock:
            if self._closed:
                return False
            pool = self._pool
        return True if pool is None else pool.healthy()

    def cache_stats(self) -> dict[str, Any]:
        with self._state_lock:
            warm = dict(self._warm_totals)
        return {
            "structures": self.structure_cache.stats(),
            "problems": self.problem_cache.stats(),
            "mechanisms": self.mechanism_cache.stats(),
            "lp_warm_solves": warm,
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """Metrics + cache accounting + static configuration, one dict.

        With the process executor the parent-side caches are idle by
        design; the per-worker cache and warm-solve accounting (plus IPC
        overhead counters) lives under ``"pool"``.
        """
        snapshot = self.metrics.snapshot(caches=self.cache_stats())
        if self._pool is not None:
            snapshot["pool"] = self._pool.stats()
        snapshot["config"] = {
            "executor": self.executor,
            "num_shards": self.num_shards,
            "coalesce_window": self.coalesce_window,
            "max_batch": self.max_batch,
            "structure_cache_capacity": self.structure_cache.capacity,
            "problem_cache_capacity": self.problem_cache.capacity,
            "mechanism_cache_capacity": self.mechanism_cache.capacity,
            "mechanism_pricing": self.mechanism_pricing,
            "adaptive_coalescing": self.adaptive_coalescing,
            "lp_warm_start": self.engine.solve_kwargs["lp_warm_start"],
            "mp_start_method": self.mp_start_method,
            "worker_retries": self.worker_retries,
            "max_queue": self.max_queue,
            "degrade_headroom": self.degrade_headroom,
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.to_dict()
            ),
            "scenes": len(self.registry),
        }
        return snapshot

    def write_metrics(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist :meth:`metrics_snapshot` as JSON; returns the path."""
        import json
        import pathlib

        path = pathlib.Path(path)
        path.write_text(json.dumps(self.metrics_snapshot(), indent=2) + "\n")
        return path
