"""Declarative serving scenarios: scene family × traffic mix × fault plan.

A :class:`Scenario` names everything one chaos or stress run needs —
which metro scenes to register, what open-loop traffic to drive, how the
service is configured, and which :class:`~repro.service.faults.FaultPlan`
(if any) is armed — as plain data that serializes to JSON.  The
:func:`scenario_library` ships the named configurations the ROADMAP's
"scenario library + stress/chaos harness" item calls for; the chaos
runner (:mod:`repro.service.chaos`) sweeps them and asserts the serving
invariants, and ``benchmarks/bench_chaos.py`` pins two of them as the
``BENCH_chaos.json`` acceptance workloads.

Everything is deterministic from the embedded seeds: scenes from
``scene_seed``, traffic from ``traffic_seed``, fault decisions from the
plan's own seed.  A scenario is therefore a complete, replayable
description of a run — the JSON form is what a bug report attaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

from repro.service.faults import FaultPlan, FaultSpec
from repro.service.scenes import SceneRegistry
from repro.service.service import AuctionService
from repro.service.traffic import TrafficTrace, burst_trace, poisson_trace

__all__ = ["Scenario", "scenario_library"]

_SCENE_FAMILIES = ("metro_disk", "metro_protocol")
_TRAFFIC_KINDS = ("poisson", "burst")


@dataclass(frozen=True)
class Scenario:
    """One named, fully-seeded serving scenario.

    ``num_requests`` is the trace length (the "n" of the chaos
    acceptance scenarios); ``scene_size`` is the per-scene bidder count.
    ``service`` holds :class:`AuctionService` keyword overrides
    (executor, queue bound, retries, …), ``client`` holds gateway-client
    overrides for ``transport="gateway"`` runs (a ``"retry"`` entry is
    :class:`~repro.service.client.RetryPolicy` keywords — how the
    network scenarios arm bounded retries), and ``fault_plan`` the armed
    faults — ``None`` runs fault-free, which is also how the chaos
    runner builds the replay reference.
    """

    name: str
    description: str
    scene_family: str = "metro_disk"
    scene_size: int = 24
    num_scenes: int = 2
    scene_seed: int = 501
    k: int = 3
    num_requests: int = 100
    traffic: str = "poisson"
    rate: float = 400.0
    burst_size: int = 32
    gap: float = 0.05
    repeat_fraction: float = 0.8
    unique_profiles: int = 8
    mode: str = "allocate"
    deadline: float | None = None
    traffic_seed: int = 7
    service: dict[str, Any] = field(default_factory=dict)
    client: dict[str, Any] = field(default_factory=dict)
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.scene_family not in _SCENE_FAMILIES:
            raise ValueError(
                f"scene_family must be one of {_SCENE_FAMILIES}, "
                f"got {self.scene_family!r}"
            )
        if self.traffic not in _TRAFFIC_KINDS:
            raise ValueError(
                f"traffic must be one of {_TRAFFIC_KINDS}, got {self.traffic!r}"
            )
        if self.scene_size < 1 or self.num_scenes < 1 or self.num_requests < 0:
            raise ValueError("scene_size/num_scenes/num_requests out of range")

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def build_registry(self) -> tuple[SceneRegistry, list[str]]:
        """Fresh registry holding this scenario's scenes, plus their ids."""
        from repro.experiments.workloads import (
            metro_disk_scene,
            metro_protocol_scene,
        )

        builder = {
            "metro_disk": metro_disk_scene,
            "metro_protocol": metro_protocol_scene,
        }[self.scene_family]
        registry = SceneRegistry()
        scene_ids = [
            registry.register(builder(self.scene_size, seed=self.scene_seed + i))
            for i in range(self.num_scenes)
        ]
        return registry, scene_ids

    def build_trace(
        self, registry: SceneRegistry, scene_ids: list[str]
    ) -> TrafficTrace:
        """The scenario's open-loop trace (exactly ``num_requests`` long)."""
        if self.traffic == "poisson":
            trace = poisson_trace(
                registry,
                scene_ids,
                k=self.k,
                rate=self.rate,
                num_requests=self.num_requests,
                seed=self.traffic_seed,
                repeat_fraction=self.repeat_fraction,
                unique_profiles=self.unique_profiles,
                mode=self.mode,
                deadline=self.deadline,
            )
        else:
            bursts = -(-self.num_requests // self.burst_size)  # ceil
            trace = burst_trace(
                registry,
                scene_ids,
                k=self.k,
                burst_size=self.burst_size,
                bursts=max(bursts, 1),
                gap=self.gap,
                seed=self.traffic_seed,
                repeat_fraction=self.repeat_fraction,
                unique_profiles=self.unique_profiles,
                mode=self.mode,
                deadline=self.deadline,
            )
        return TrafficTrace(
            requests=trace.requests[: self.num_requests], meta=trace.meta
        )

    def build_service(
        self, registry: SceneRegistry, **overrides: Any
    ) -> AuctionService:
        """The scenario's service; ``overrides`` win over the scenario's
        own ``service`` dict (the chaos runner swaps ``fault_plan`` this
        way to build the fault-free replay reference)."""
        kwargs: dict[str, Any] = {"fault_plan": self.fault_plan}
        kwargs.update(self.service)
        kwargs.update(overrides)
        return AuctionService(registry=registry, **kwargs)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = value.to_dict() if f.name == "fault_plan" and value else value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        data = dict(data)
        plan = data.get("fault_plan")
        if plan is not None and not isinstance(plan, FaultPlan):
            data["fault_plan"] = FaultPlan.from_dict(plan)
        return cls(**data)


def scenario_library() -> dict[str, Scenario]:
    """The named scenarios, freshly built (fault plans armed per call)."""
    scenarios = (
        Scenario(
            name="dense_metro",
            description=(
                "sustained repeat-heavy Poisson load over two dense metro "
                "scenes — the nominal serving regime, no faults"
            ),
            scene_size=32,
            num_requests=200,
            service={"executor": "serial", "coalesce_window": 0.002},
        ),
        Scenario(
            name="flash_crowd_burst",
            description=(
                "simultaneous-arrival bursts against a bounded queue: "
                "admission control sheds typed, accepted requests complete"
            ),
            traffic="burst",
            burst_size=32,
            gap=0.05,
            num_requests=192,
            service={
                "executor": "serial",
                "coalesce_window": 0.002,
                "max_queue": 64,
            },
        ),
        Scenario(
            name="distinct_adversarial",
            description=(
                "distinct-heavy (cache-hostile) traffic: every request a "
                "fresh profile, the GIL-ceiling workload of PR 6"
            ),
            repeat_fraction=0.0,
            unique_profiles=0,
            num_requests=120,
            rate=200.0,
            service={"executor": "serial", "coalesce_window": 0.0},
        ),
        Scenario(
            name="crash_storm",
            description=(
                "seeded crash+slow-solve plan on the process pool: worker "
                "incarnations 0-1 crash on half the batches, respawn + "
                "retry absorb every loss bit-identically"
            ),
            num_requests=300,
            rate=600.0,
            service={
                "executor": "process",
                "num_shards": 2,
                "worker_retries": 3,
                "pool_config": {"respawn_backoff": 0.01},
            },
            fault_plan=FaultPlan(
                [
                    FaultSpec(
                        site="pool.worker.batch",
                        kind="crash",
                        probability=0.5,
                        generations=(0, 1),
                    ),
                    FaultSpec(
                        site="service.solve",
                        kind="slow",
                        probability=0.05,
                        delay=0.002,
                    ),
                ],
                seed=11,
            ),
        ),
        Scenario(
            name="flaky_network",
            description=(
                "network-layer chaos on the HTTP edge: connection resets, "
                "dropped and truncated responses, injected path latency — "
                "retrying clients replay lost responses from the "
                "idempotency journal, so every accepted request resolves "
                "bit-identically and nothing solves twice"
            ),
            num_requests=300,
            rate=600.0,
            service={"executor": "serial", "coalesce_window": 0.002},
            client={"retry": {"max_attempts": 4, "backoff_base": 0.01}},
            fault_plan=FaultPlan(
                [
                    FaultSpec(
                        site="gateway.response", kind="drop", probability=0.03
                    ),
                    FaultSpec(
                        site="gateway.response", kind="truncate", probability=0.03
                    ),
                    FaultSpec(
                        site="client.connect", kind="reset", probability=0.04
                    ),
                    FaultSpec(
                        site="client.connect",
                        kind="latency",
                        probability=0.05,
                        delay=0.002,
                    ),
                ],
                seed=17,
            ),
        ),
        Scenario(
            name="gateway_partition",
            description=(
                "a partitioned edge refusing whole connections before "
                "admission: ~30% of attempts are refused; bounded retries "
                "with backoff land every request on a later attempt"
            ),
            num_requests=300,
            rate=600.0,
            service={"executor": "serial", "coalesce_window": 0.002},
            client={"retry": {"max_attempts": 8, "backoff_base": 0.005}},
            fault_plan=FaultPlan(
                [
                    FaultSpec(
                        site="gateway.accept", kind="refuse", probability=0.3
                    )
                ],
                seed=19,
            ),
        ),
        Scenario(
            name="slow_worker_brownout",
            description=(
                "injected per-batch latency in the pool workers: the "
                "parent sees a browning-out shard, nothing fails"
            ),
            num_requests=300,
            rate=600.0,
            service={
                "executor": "process",
                "num_shards": 2,
                "worker_retries": 1,
            },
            fault_plan=FaultPlan(
                [
                    FaultSpec(
                        site="pool.worker.batch",
                        kind="slow",
                        probability=0.3,
                        delay=0.005,
                    )
                ],
                seed=13,
            ),
        ),
    )
    return {scenario.name: scenario for scenario in scenarios}
