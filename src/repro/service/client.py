"""Clients for the auction gateway (wire schema over HTTP/1.1).

:class:`GatewayClient` is the asyncio client: a keep-alive connection
pool over :func:`asyncio.open_connection`, one coroutine per in-flight
request, decoding success payloads to
:class:`~repro.service.wire.AuctionResponse` and error payloads back to
the *typed exception* the in-process API would have raised
(:func:`~repro.service.wire.error_from_wire`) — so ``try/except
ShedError`` works identically whether the service is local or across
the network.

:class:`SyncGatewayClient` wraps it for synchronous callers by running
an event loop on a daemon thread; its ``submit`` mirrors
:meth:`AuctionService.submit`'s future-based contract
(``submit(request) -> concurrent.futures.Future``), which is what lets
the chaos harness and the open-loop benchmark drive a gateway exactly
like an in-process service.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import Future
from typing import TYPE_CHECKING, Any

from repro.io import _structure_to_dict
from repro.service.wire import (
    AuctionResponse,
    error_from_wire,
    request_to_wire,
)

if TYPE_CHECKING:
    from repro.conflicts.base import AnyStructure
    from repro.service.wire import AuctionRequest

__all__ = ["GatewayClient", "SyncGatewayClient"]

_Connection = tuple[asyncio.StreamReader, asyncio.StreamWriter]


class GatewayClient:
    """Asyncio client for one gateway endpoint, pooling keep-alive
    connections up to ``max_connections`` (back-pressure beyond that is a
    semaphore wait, not a connect storm)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, max_connections: int = 128
    ) -> None:
        self.host = host
        self.port = port
        self._idle: list[_Connection] = []
        self._gate = asyncio.Semaphore(max_connections)
        self._closed = False

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    async def _exchange(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """One HTTP exchange on a pooled connection; returns (status, payload)."""
        if self._closed:
            raise RuntimeError("client is closed")
        payload = b"" if body is None else json.dumps(body).encode()
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1") + payload
        async with self._gate:
            reader, writer = await self._checkout()
            try:
                writer.write(request)
                await writer.drain()
                status, response = await self._read_response(reader)
            except BaseException:
                writer.close()  # a half-used connection cannot be pooled
                raise
            self._checkin((reader, writer))
        return status, response

    async def _checkout(self) -> _Connection:
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        return await asyncio.open_connection(self.host, self.port)

    def _checkin(self, conn: _Connection) -> None:
        if self._closed or conn[1].is_closing():
            conn[1].close()
        else:
            self._idle.append(conn)

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        payload = json.loads(body) if body else {}
        if not isinstance(payload, dict):
            raise ValueError(f"gateway returned a non-object body: {payload!r}")
        return status, payload

    @staticmethod
    def _raise_if_error(payload: dict[str, Any]) -> dict[str, Any]:
        if payload.get("status") == "error":
            raise error_from_wire(payload)
        return payload

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    async def health(self) -> bool:
        status, _payload = await self._exchange("GET", "/v1/health")
        return status == 200

    async def metrics(self) -> dict[str, Any]:
        _status, payload = await self._exchange("GET", "/v1/metrics")
        return self._raise_if_error(payload)

    async def register_scene(self, structure: AnyStructure) -> str:
        """Register a conflict structure; returns its fingerprint scene id."""
        _status, payload = await self._exchange(
            "POST", "/v1/scenes", {"structure": _structure_to_dict(structure)}
        )
        return str(self._raise_if_error(payload)["scene_id"])

    async def solve(self, request: AuctionRequest) -> AuctionResponse:
        """Solve one request; raises the typed error on failure.

        A ``request.deadline`` travels as the ``X-Auction-Deadline``
        header — exercising the same path a non-Python client would use —
        and is enforced server-side by the service's EWMA triage.
        """
        headers = (
            {"X-Auction-Deadline": repr(request.deadline)}
            if request.deadline is not None
            else None
        )
        _status, payload = await self._exchange(
            "POST", "/v1/solve", request_to_wire(request), headers
        )
        return AuctionResponse.from_wire(self._raise_if_error(payload))

    async def solve_batch(
        self, requests: list[AuctionRequest]
    ) -> list[AuctionResponse | Exception]:
        """Solve a batch in one exchange; per-item failures come back as
        the typed exception *instances* in request order (mirroring how
        the in-process API fails futures individually)."""
        _status, payload = await self._exchange(
            "POST",
            "/v1/solve-batch",
            {"requests": [request_to_wire(r) for r in requests]},
        )
        envelopes = self._raise_if_error(payload)["responses"]
        return [
            error_from_wire(item)
            if item.get("status") == "error"
            else AuctionResponse.from_wire(item)
            for item in envelopes
        ]

    async def close(self) -> None:
        self._closed = True
        while self._idle:
            _reader, writer = self._idle.pop()
            writer.close()

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


class SyncGatewayClient:
    """Synchronous facade: :class:`GatewayClient` on a daemon loop thread.

    ``submit(request)`` returns a :class:`concurrent.futures.Future`
    resolving to an :class:`~repro.service.wire.AuctionResponse` or
    failing with the typed error — the same contract as
    :meth:`AuctionService.submit`, so open-loop drivers and the chaos
    harness can target a gateway without changing shape.  (One
    difference is inherent to the network boundary: admission-control
    sheds arrive asynchronously as a failed future, not as a synchronous
    ``ShedError`` from ``submit``.)
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, max_connections: int = 128
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-client-loop", daemon=True
        )
        self._thread.start()

        async def make_client() -> GatewayClient:
            return GatewayClient(host, port, max_connections)

        self._client: GatewayClient = asyncio.run_coroutine_threadsafe(
            make_client(), self._loop
        ).result(timeout=30)

    def submit(self, request: AuctionRequest) -> Future[AuctionResponse]:
        """Start one solve; returns a future (typed error on failure)."""
        return asyncio.run_coroutine_threadsafe(
            self._client.solve(request), self._loop
        )

    def solve(self, request: AuctionRequest) -> AuctionResponse:
        return self.submit(request).result()

    def solve_batch(
        self, requests: list[AuctionRequest]
    ) -> list[AuctionResponse | Exception]:
        return asyncio.run_coroutine_threadsafe(
            self._client.solve_batch(requests), self._loop
        ).result()

    def register_scene(self, structure: AnyStructure) -> str:
        return asyncio.run_coroutine_threadsafe(
            self._client.register_scene(structure), self._loop
        ).result(timeout=30)

    def metrics(self) -> dict[str, Any]:
        return asyncio.run_coroutine_threadsafe(
            self._client.metrics(), self._loop
        ).result(timeout=30)

    def health(self) -> bool:
        return asyncio.run_coroutine_threadsafe(
            self._client.health(), self._loop
        ).result(timeout=30)

    def close(self) -> None:
        loop, thread = self._loop, self._thread
        if not loop.is_closed():
            asyncio.run_coroutine_threadsafe(self._client.close(), loop).result(
                timeout=30
            )
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
            loop.close()

    def __enter__(self) -> "SyncGatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
