"""Clients for the auction gateway (wire schema over HTTP/1.1).

:class:`GatewayClient` is the asyncio client: a keep-alive connection
pool over :func:`asyncio.open_connection`, one coroutine per in-flight
request, decoding success payloads to
:class:`~repro.service.wire.AuctionResponse` and error payloads back to
the *typed exception* the in-process API would have raised
(:func:`~repro.service.wire.error_from_wire`) — so ``try/except
ShedError`` works identically whether the service is local or across
the network.

**Resilience** (DESIGN.md → "Resilient edge"):

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic seeded jitter* (drawn from the request's idempotency
  key, so two replays of a trace sleep identically).  Retryable
  failures are transport errors (``OSError``/``EOFError``: resets,
  refused connections, truncated responses) and the retryable 5xx set
  ``{500, 502, 503}``; 400/404 are the caller's bug and 504 means the
  deadline is spent either way — retrying any of them cannot help.
  The default policy makes **zero** retries (``max_attempts=1``):
  resilience is opt-in per client, never ambient.
* **Hedging** — with ``hedge=True``, a solve that outlives the client's
  observed p99 launches a second attempt and the first response wins
  (loser cancelled).  Both attempts carry the same idempotency key, so
  the gateway coalesces them onto one solve — hedging trades a little
  duplicate *traffic* for tail latency, never duplicate *work*.
* Every attempt is stamped ``X-Auction-Attempt`` (1-based) so the
  gateway's keyed fault draws are per-attempt, and carries the
  request's idempotency key so a retried request replays from the
  gateway journal instead of re-solving.
* :class:`ReplicaSet` — the same solve API over N gateway endpoints,
  with probe-driven eviction after ``failure_threshold`` consecutive
  failures and half-open re-admission after ``cooldown`` (mirroring the
  worker pool's circuit-breaker semantics).  Failover happens on
  *transport* errors only: a typed wire error came from a live replica
  and resending it elsewhere would just duplicate load.

:class:`SyncGatewayClient` / :class:`SyncReplicaClient` wrap the async
clients for synchronous callers by running an event loop on a daemon
thread; ``submit`` mirrors :meth:`AuctionService.submit`'s future-based
contract (``submit(request) -> concurrent.futures.Future``), which is
what lets the chaos harness and the open-loop benchmark drive a gateway
exactly like an in-process service.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.io import _structure_to_dict
from repro.service.wire import (
    AuctionResponse,
    default_idempotency_key,
    error_from_wire,
    request_to_wire,
)

if TYPE_CHECKING:
    from repro.conflicts.base import AnyStructure
    from repro.service.faults import FaultPlan
    from repro.service.wire import AuctionRequest

__all__ = [
    "GatewayClient",
    "ReplicaSet",
    "RetryPolicy",
    "SyncGatewayClient",
    "SyncReplicaClient",
]

_Connection = tuple[asyncio.StreamReader, asyncio.StreamWriter]

# failures of the transport itself, as opposed to typed wire errors:
# always retryable, and the only failures a ReplicaSet fails over on.
# (TimeoutError ⊂ OSError, ConnectionError ⊂ OSError,
# IncompleteReadError ⊂ EOFError.)
_TRANSPORT_ERRORS = (OSError, EOFError)

_TOKEN_MASK = (1 << 63) - 1


def _jitter_token(key: str) -> int:
    """A stable 63-bit integer from an idempotency key (jitter seed)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _TOKEN_MASK


class _WireError(Exception):
    """Internal carrier pairing a typed wire error with its HTTP status.

    The retry loop decides retryability on the *status* and unwraps
    ``error`` for the caller — the typed exception crosses the retry
    layer unchanged.
    """

    def __init__(self, status: int, error: Exception) -> None:
        super().__init__(f"HTTP {status}: {error}")
        self.status = status
        self.error = error


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries, backs off, and hedges one solve.

    ``max_attempts`` counts the first try (``1`` means no retries — the
    default, so resilience is always opt-in).  Backoff before retry
    *i* is ``min(cap, base · factor^(i-1))`` scaled down by up to
    ``jitter`` (a fraction in [0, 1]) using a draw seeded from the
    request's idempotency key — deterministic per request and per retry,
    so chaos replays are bit-stable while concurrent retries still
    de-synchronize.

    ``hedge=True`` races a second attempt against a first one that has
    outlived the client's observed p99 latency (never sooner than
    ``hedge_min_delay``, and only once ``hedge_after_samples`` solves
    have been observed — before that there is no p99 to speak of).
    """

    max_attempts: int = 1
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_cap: float = 0.5
    jitter: float = 0.5
    retryable_statuses: frozenset[int] = frozenset({500, 502, 503})
    hedge: bool = False
    hedge_min_delay: float = 0.05
    hedge_after_samples: int = 32

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.hedge_after_samples < 1:
            raise ValueError("hedge_after_samples must be >= 1")
        object.__setattr__(
            self, "retryable_statuses", frozenset(self.retryable_statuses)
        )

    def delay_before(self, retry_index: int, token: int) -> float:
        """Seconds to sleep before retry ``retry_index`` (1-based)."""
        base = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (retry_index - 1),
        )
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        seq = np.random.SeedSequence([token & _TOKEN_MASK, retry_index])
        fraction = float(np.random.default_rng(seq).random())
        return base * (1.0 - self.jitter * fraction)


class GatewayClient:
    """Asyncio client for one gateway endpoint, pooling keep-alive
    connections up to ``max_connections`` (back-pressure beyond that is a
    semaphore wait, not a connect storm).

    ``retry`` arms a :class:`RetryPolicy` for ``solve`` (default: none);
    ``fault_plan`` arms ``client.connect`` injection sites for chaos
    runs.  ``stats()`` surfaces attempt/retry/hedge counters.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_connections: int = 128,
        *,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self._idle: list[_Connection] = []
        self._gate = asyncio.Semaphore(max_connections)
        self._closed = False
        self._latency_window: deque[float] = deque(maxlen=512)
        self._stats: dict[str, int] = {
            "attempts": 0,
            "retries": 0,
            "hedges_launched": 0,
            "hedges_won": 0,
            "connect_faults": 0,
        }

    def stats(self) -> dict[str, int]:
        """Attempt/retry/hedge/fault counters since construction."""
        return dict(self._stats)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    async def _exchange(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """One HTTP exchange on a pooled connection; returns (status, payload)."""
        if self._closed:
            raise RuntimeError("client is closed")
        payload = b"" if body is None else json.dumps(body).encode()
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1") + payload
        async with self._gate:
            reader, writer = await self._checkout()
            try:
                writer.write(request)
                await writer.drain()
                status, response = await self._read_response(reader)
            except BaseException:
                writer.close()  # a half-used connection cannot be pooled
                raise
            self._checkin((reader, writer))
        return status, response

    async def _checkout(self) -> _Connection:
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        return await asyncio.open_connection(self.host, self.port)

    def _checkin(self, conn: _Connection) -> None:
        if self._closed or conn[1].is_closing():
            conn[1].close()
        else:
            self._idle.append(conn)

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        payload = json.loads(body) if body else {}
        if not isinstance(payload, dict):
            raise ValueError(f"gateway returned a non-object body: {payload!r}")
        return status, payload

    @staticmethod
    def _raise_if_error(payload: dict[str, Any]) -> dict[str, Any]:
        if payload.get("status") == "error":
            raise error_from_wire(payload)
        return payload

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    async def health(self) -> bool:
        status, _payload = await self._exchange("GET", "/v1/health")
        return status == 200

    async def metrics(self) -> dict[str, Any]:
        _status, payload = await self._exchange("GET", "/v1/metrics")
        return self._raise_if_error(payload)

    async def register_scene(self, structure: AnyStructure) -> str:
        """Register a conflict structure; returns its fingerprint scene id."""
        _status, payload = await self._exchange(
            "POST", "/v1/scenes", {"structure": _structure_to_dict(structure)}
        )
        return str(self._raise_if_error(payload)["scene_id"])

    async def solve(self, request: AuctionRequest) -> AuctionResponse:
        """Solve one request under the retry policy; typed error on failure.

        Every attempt resends the same idempotency key (derived from
        the request when the envelope carries none), so a retry after a
        lost response replays from the gateway journal instead of
        re-solving.  A ``request.deadline`` travels as the
        ``X-Auction-Deadline`` header and is enforced server-side by
        the service's EWMA triage.
        """
        policy = self.retry
        key = request.idempotency_key or default_idempotency_key(request)
        token = _jitter_token(key)
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._stats["retries"] += 1
                await asyncio.sleep(policy.delay_before(attempt - 1, token))
            try:
                return await self._attempt_or_hedged(request, key, attempt, policy)
            except _WireError as exc:
                if (
                    attempt >= policy.max_attempts
                    or exc.status not in policy.retryable_statuses
                ):
                    raise exc.error from None
            except _TRANSPORT_ERRORS:
                if attempt >= policy.max_attempts:
                    raise
        raise RuntimeError("unreachable: retry loop neither returned nor raised")

    async def _attempt_or_hedged(
        self, request: AuctionRequest, key: str, attempt: int, policy: RetryPolicy
    ) -> AuctionResponse:
        if policy.hedge:
            delay = self._hedge_delay(policy)
            if delay is not None:
                return await self._hedged(request, key, attempt, policy, delay)
        return await self._solve_attempt(request, key, attempt)

    def _hedge_delay(self, policy: RetryPolicy) -> float | None:
        """The p99-based hedge trigger, or ``None`` while under-sampled."""
        if len(self._latency_window) < policy.hedge_after_samples:
            return None
        ordered = sorted(self._latency_window)
        p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
        return max(policy.hedge_min_delay, p99)

    async def _hedged(
        self,
        request: AuctionRequest,
        key: str,
        attempt: int,
        policy: RetryPolicy,
        delay: float,
    ) -> AuctionResponse:
        """Race a second attempt against a primary slower than ``delay``.

        The hedge's attempt ordinal is offset by ``max_attempts`` so its
        fault draws and backoff jitter never collide with a plain
        retry's.  Same idempotency key on both: the gateway coalesces
        them onto one solve.
        """
        primary = asyncio.ensure_future(self._solve_attempt(request, key, attempt))
        try:
            return await asyncio.wait_for(asyncio.shield(primary), delay)
        except TimeoutError:  # repro: allow[silent-except] -- not a failure: the primary is slow, launch the hedge
            pass
        self._stats["hedges_launched"] += 1
        hedge = asyncio.ensure_future(
            self._solve_attempt(request, key, policy.max_attempts + attempt)
        )
        pending: set[asyncio.Task[AuctionResponse]] = {primary, hedge}
        failure: BaseException | None = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    if task.exception() is None:
                        if task is hedge:
                            self._stats["hedges_won"] += 1
                        return task.result()
                    failure = task.exception()
            assert failure is not None
            raise failure
        finally:
            for task in (primary, hedge):
                if not task.done():
                    task.cancel()
            losers, _ = await asyncio.wait({primary, hedge})
            for task in losers:
                if not task.cancelled():
                    task.exception()  # observed: a loser must not warn at GC

    async def _solve_attempt(
        self, request: AuctionRequest, key: str, attempt: int
    ) -> AuctionResponse:
        """One wire exchange, stamped with its attempt ordinal."""
        self._stats["attempts"] += 1
        await self._inject_connect_faults(request, attempt)
        headers = {"X-Auction-Attempt": str(attempt)}
        if request.deadline is not None:
            headers["X-Auction-Deadline"] = repr(request.deadline)
        wire = request_to_wire(request)
        wire["idempotency_key"] = key
        started = time.perf_counter()
        status, payload = await self._exchange("POST", "/v1/solve", wire, headers)
        self._latency_window.append(time.perf_counter() - started)
        if payload.get("status") == "error":
            raise _WireError(status, error_from_wire(payload))
        return AuctionResponse.from_wire(payload)

    async def _inject_connect_faults(
        self, request: AuctionRequest, attempt: int
    ) -> None:
        """Evaluate ``client.connect`` fault sites for this attempt."""
        plan = self.fault_plan
        if plan is None:
            return
        fault_key = (int(request.seed or 0), attempt)
        for spec in plan.actions("client.connect", key=fault_key):
            self._stats["connect_faults"] += 1
            if spec.kind == "latency":
                await asyncio.sleep(spec.delay)
            else:  # "reset"
                raise ConnectionResetError(
                    f"injected client.connect reset (attempt {attempt})"
                )

    async def solve_batch(
        self, requests: list[AuctionRequest]
    ) -> list[AuctionResponse | Exception]:
        """Solve a batch in one exchange; per-item failures come back as
        the typed exception *instances* in request order (mirroring how
        the in-process API fails futures individually)."""
        _status, payload = await self._exchange(
            "POST",
            "/v1/solve-batch",
            {"requests": [request_to_wire(r) for r in requests]},
        )
        envelopes = self._raise_if_error(payload)["responses"]
        return [
            error_from_wire(item)
            if item.get("status") == "error"
            else AuctionResponse.from_wire(item)
            for item in envelopes
        ]

    async def close(self) -> None:
        self._closed = True
        while self._idle:
            _reader, writer = self._idle.pop()
            writer.close()

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


class _Replica:
    """One endpoint's client plus its health-tracking state."""

    def __init__(self, client: GatewayClient, index: int) -> None:
        self.client = client
        self.index = index
        self.live = True
        self.failures = 0
        self.down_since = 0.0
        self.inflight = 0

    @property
    def endpoint(self) -> str:
        return f"{self.client.host}:{self.client.port}"


class ReplicaSet:
    """The solve API over N gateway replicas with failover.

    Requests go to the live replica with the fewest in-flight solves.
    A replica accumulating ``failure_threshold`` consecutive transport
    failures (from traffic or from the background health probe) is
    evicted; after ``cooldown`` seconds the probe loop re-tries it
    half-open and re-admits on success — the same breaker shape the
    worker pool uses for crashed workers.  Failover re-sends only on
    *transport* errors: a typed wire error (shed, deadline, bad
    request) came from a live replica and is returned as-is.

    ``request_timeout`` bounds every exchange: a replica that dies with
    pooled keep-alive connections open would otherwise hang a request
    forever instead of failing it over.
    """

    def __init__(
        self,
        endpoints: list[tuple[str, int]],
        *,
        max_connections: int = 128,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        probe_interval: float = 0.1,
        probe_timeout: float = 1.0,
        failure_threshold: int = 3,
        cooldown: float = 0.5,
        request_timeout: float = 60.0,
    ) -> None:
        if not endpoints:
            raise ValueError("ReplicaSet needs at least one endpoint")
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.request_timeout = request_timeout
        self._replicas = [
            _Replica(
                GatewayClient(
                    host,
                    port,
                    max_connections,
                    retry=retry,
                    fault_plan=fault_plan,
                ),
                index,
            )
            for index, (host, port) in enumerate(endpoints)
        ]
        self._closed = False
        self._probe_task: asyncio.Task[None] | None = None
        self._stats: dict[str, int] = {
            "failovers": 0,
            "evictions": 0,
            "readmissions": 0,
            "probe_failures": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ReplicaSet":
        """Arm the background health-probe loop."""
        if self._probe_task is None:
            self._probe_task = asyncio.ensure_future(self._probe_loop())
        return self

    async def close(self) -> None:
        self._closed = True
        task = self._probe_task
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:  # repro: allow[silent-except] -- our own cancellation completing
                pass
            self._probe_task = None
        for replica in self._replicas:
            await replica.client.close()

    async def __aenter__(self) -> "ReplicaSet":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # health probing
    # ------------------------------------------------------------------
    async def _probe_loop(self) -> None:
        # bounded by _closed (flipped in close()), not an unbounded spin
        while not self._closed:
            await asyncio.sleep(self.probe_interval)
            for replica in self._replicas:
                if self._closed:
                    return
                if not replica.live and not self._cooled_down(replica):
                    continue  # evicted and still cooling: no half-open yet
                if await self._probe(replica):
                    self._mark_healthy(replica)
                else:
                    self._mark_failure(replica)

    def _cooled_down(self, replica: _Replica) -> bool:
        return time.perf_counter() - replica.down_since >= self.cooldown

    async def _probe(self, replica: _Replica) -> bool:
        try:
            return await asyncio.wait_for(
                replica.client.health(), self.probe_timeout
            )
        except _TRANSPORT_ERRORS + (ValueError,):  # repro: allow[silent-except] -- an unreachable replica is the probe's finding, counted below
            self._stats["probe_failures"] += 1
            return False

    def _mark_healthy(self, replica: _Replica) -> None:
        if not replica.live:
            replica.live = True
            self._stats["readmissions"] += 1
        replica.failures = 0

    def _mark_failure(self, replica: _Replica) -> None:
        replica.failures += 1
        if replica.live and replica.failures >= self.failure_threshold:
            replica.live = False
            replica.down_since = time.perf_counter()
            self._stats["evictions"] += 1
        elif not replica.live:
            replica.down_since = time.perf_counter()  # failed half-open: re-cool

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def _pick(self, tried: set[int]) -> _Replica | None:
        """Least-loaded live replica, preferring ones not yet tried."""
        live = [r for r in self._replicas if r.live]
        pool = [r for r in live if r.index not in tried] or live
        if not pool:
            return None
        return min(pool, key=lambda r: (r.inflight, r.index))

    async def solve(self, request: AuctionRequest) -> AuctionResponse:
        """Solve on the healthiest replica, failing over on transport loss."""
        last_error: BaseException | None = None
        tried: set[int] = set()
        for _sweep in range(self.failure_threshold * len(self._replicas)):
            replica = self._pick(tried)
            if replica is None:
                break
            tried.add(replica.index)
            replica.inflight += 1
            try:
                return await asyncio.wait_for(
                    replica.client.solve(request), self.request_timeout
                )
            except _TRANSPORT_ERRORS as exc:  # repro: allow[silent-except] -- failover: counted, next replica tries
                last_error = exc
                self._mark_failure(replica)
                self._stats["failovers"] += 1
            finally:
                replica.inflight -= 1
        if last_error is not None:
            raise last_error
        raise RuntimeError("no live gateway replicas")

    async def register_scene(self, structure: AnyStructure) -> str:
        """Register on every replica (each gateway may back its own
        service); returns the fingerprint scene id, which is content-
        derived and therefore identical across replicas."""
        scene_id: str | None = None
        last_error: BaseException | None = None
        for replica in self._replicas:
            try:
                scene_id = await asyncio.wait_for(
                    replica.client.register_scene(structure), self.request_timeout
                )
            except _TRANSPORT_ERRORS as exc:  # repro: allow[silent-except] -- replica down: marked, registration proceeds on the rest
                last_error = exc
                self._mark_failure(replica)
        if scene_id is None:
            raise last_error if last_error is not None else RuntimeError(
                "no live gateway replicas"
            )
        return scene_id

    async def health(self) -> bool:
        """True when any replica answers its health check."""
        for replica in self._replicas:
            if replica.live and await self._probe(replica):
                return True
        return False

    def stats(self) -> dict[str, Any]:
        """Failover/eviction counters plus per-replica state."""
        snapshot: dict[str, Any] = dict(self._stats)
        snapshot["replicas"] = [
            {
                "endpoint": replica.endpoint,
                "live": replica.live,
                "failures": replica.failures,
                "inflight": replica.inflight,
                "client": replica.client.stats(),
            }
            for replica in self._replicas
        ]
        return snapshot


class SyncGatewayClient:
    """Synchronous facade: :class:`GatewayClient` on a daemon loop thread.

    ``submit(request)`` returns a :class:`concurrent.futures.Future`
    resolving to an :class:`~repro.service.wire.AuctionResponse` or
    failing with the typed error — the same contract as
    :meth:`AuctionService.submit`, so open-loop drivers and the chaos
    harness can target a gateway without changing shape.  (One
    difference is inherent to the network boundary: admission-control
    sheds arrive asynchronously as a failed future, not as a synchronous
    ``ShedError`` from ``submit``.)
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_connections: int = 128,
        *,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-client-loop", daemon=True
        )
        self._thread.start()

        async def make_client() -> GatewayClient:
            return GatewayClient(
                host, port, max_connections, retry=retry, fault_plan=fault_plan
            )

        self._client: GatewayClient = asyncio.run_coroutine_threadsafe(
            make_client(), self._loop
        ).result(timeout=30)

    def submit(self, request: AuctionRequest) -> Future[AuctionResponse]:
        """Start one solve; returns a future (typed error on failure)."""
        return asyncio.run_coroutine_threadsafe(
            self._client.solve(request), self._loop
        )

    def solve(self, request: AuctionRequest) -> AuctionResponse:
        return self.submit(request).result()

    def solve_batch(
        self, requests: list[AuctionRequest]
    ) -> list[AuctionResponse | Exception]:
        return asyncio.run_coroutine_threadsafe(
            self._client.solve_batch(requests), self._loop
        ).result()

    def register_scene(self, structure: AnyStructure) -> str:
        return asyncio.run_coroutine_threadsafe(
            self._client.register_scene(structure), self._loop
        ).result(timeout=30)

    def metrics(self) -> dict[str, Any]:
        return asyncio.run_coroutine_threadsafe(
            self._client.metrics(), self._loop
        ).result(timeout=30)

    def health(self) -> bool:
        return asyncio.run_coroutine_threadsafe(
            self._client.health(), self._loop
        ).result(timeout=30)

    def stats(self) -> dict[str, int]:
        """The client's attempt/retry/hedge counters (loop-thread safe)."""
        return self._client.stats()

    def close(self) -> None:
        loop, thread = self._loop, self._thread
        if not loop.is_closed():
            asyncio.run_coroutine_threadsafe(self._client.close(), loop).result(
                timeout=30
            )
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
            loop.close()

    def __enter__(self) -> "SyncGatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SyncReplicaClient:
    """Synchronous facade: :class:`ReplicaSet` on a daemon loop thread,
    probe loop armed — the multi-replica counterpart of
    :class:`SyncGatewayClient` with the same ``submit`` contract."""

    def __init__(
        self,
        endpoints: list[tuple[str, int]],
        *,
        max_connections: int = 128,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        probe_interval: float = 0.1,
        probe_timeout: float = 1.0,
        failure_threshold: int = 3,
        cooldown: float = 0.5,
        request_timeout: float = 60.0,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="replica-client-loop", daemon=True
        )
        self._thread.start()

        async def make_set() -> ReplicaSet:
            replica_set = ReplicaSet(
                endpoints,
                max_connections=max_connections,
                retry=retry,
                fault_plan=fault_plan,
                probe_interval=probe_interval,
                probe_timeout=probe_timeout,
                failure_threshold=failure_threshold,
                cooldown=cooldown,
                request_timeout=request_timeout,
            )
            await replica_set.start()
            return replica_set

        self._set: ReplicaSet = asyncio.run_coroutine_threadsafe(
            make_set(), self._loop
        ).result(timeout=30)

    def submit(self, request: AuctionRequest) -> Future[AuctionResponse]:
        """Start one solve with failover; returns a future."""
        return asyncio.run_coroutine_threadsafe(self._set.solve(request), self._loop)

    def solve(self, request: AuctionRequest) -> AuctionResponse:
        return self.submit(request).result()

    def register_scene(self, structure: AnyStructure) -> str:
        return asyncio.run_coroutine_threadsafe(
            self._set.register_scene(structure), self._loop
        ).result(timeout=60)

    def health(self) -> bool:
        return asyncio.run_coroutine_threadsafe(
            self._set.health(), self._loop
        ).result(timeout=30)

    def stats(self) -> dict[str, Any]:
        return self._set.stats()

    def close(self) -> None:
        loop, thread = self._loop, self._thread
        if not loop.is_closed():
            asyncio.run_coroutine_threadsafe(self._set.close(), loop).result(
                timeout=30
            )
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
            loop.close()

    def __enter__(self) -> "SyncReplicaClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
