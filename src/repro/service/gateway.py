"""Asyncio HTTP/1.1 gateway: the network-facing edge of the auction service.

:class:`AuctionGateway` serves the versioned wire schema
(:mod:`repro.service.wire`) over plain HTTP/1.1 on the stdlib event loop
— no web framework, no extra dependency — in front of a backing
:class:`~repro.service.AuctionService`.  The event loop only parses,
routes, and encodes; every solve is bridged onto the service's own
dispatcher/shard machinery by wrapping the ``submit`` future with
:func:`asyncio.wrap_future`, so thousands of concurrent connections cost
one coroutine each while the thread or process executor does the actual
work.

Endpoints (all request/response bodies are JSON; see DESIGN.md → "The
serving edge" for the full table):

========  ====================  =============================================
method    path                  semantics
========  ====================  =============================================
POST      ``/v1/scenes``        register a conflict structure (io-layer
                                schema); returns its content-hash
                                ``scene_id`` — the fingerprint clients
                                re-solve by, so shard affinity survives the
                                network boundary
POST      ``/v1/solve``         one wire request → one wire response
POST      ``/v1/solve-batch``   ``{"requests": [...]}`` → per-item success
                                *or* error envelopes, submitted concurrently
                                so the service can coalesce them
GET       ``/v1/metrics``       the service metrics snapshot plus gateway
                                HTTP counters
GET       ``/v1/health``        200 while the service can serve, 503 after
                                close or an all-breakers-open pool
========  ====================  =============================================

Failure semantics are the wire schema's: every typed service failure
maps to a distinct HTTP status with a machine-readable ``error_code``
(shed → 503, deadline-exceeded → 504, worker-crash → 502, injected
fault → 500, malformed request → 400, unknown scene → 404), and the
asyncio client (:mod:`repro.service.client`) reconstructs the exact
exception type — the PR 8 fault-tolerance contract crosses the wire
unchanged.  Deadlines propagate from the ``X-Auction-Deadline`` header
(seconds of budget; overrides the body's ``deadline`` field) into the
request the service triages with its EWMA solve-time estimate.

:class:`GatewayServer` runs the event loop on a background thread for
synchronous callers (benchmarks, tests, the chaos harness's gateway
transport); async applications embed :class:`AuctionGateway` directly.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import TYPE_CHECKING, Any

from repro.io import _structure_from_dict
from repro.service.errors import ShedError
from repro.service.wire import (
    SCHEMA_VERSION,
    error_to_wire,
    http_status_for,
    request_from_wire,
)

if TYPE_CHECKING:
    from repro.service.service import AuctionService
    from repro.service.wire import AuctionRequest

__all__ = ["AuctionGateway", "GatewayServer"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 256 * 1024 * 1024

# the peer vanishing mid-exchange is a per-connection event, not a
# service failure: the connection handler just ends
_PEER_GONE = (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError)

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """A request-shaped failure with a wire error code attached."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code

    def to_wire(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "error",
            "error_code": self.code,
            "message": str(self),
        }


class AuctionGateway:
    """HTTP/1.1 front-end over one :class:`AuctionService` (asyncio)."""

    def __init__(self, service: AuctionService) -> None:
        self.service = service
        # mutated only on the event loop (one thread), read via /v1/metrics
        # on the same loop — no lock needed by construction
        self._counters: dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "responses_ok": 0,
            "responses_error": 0,
        }

    # ------------------------------------------------------------------
    # server lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        return await asyncio.start_server(self._handle_connection, host, port)

    def counters(self) -> dict[str, int]:
        """Gateway-level HTTP accounting (copied; loop-thread safe)."""
        return dict(self._counters)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._counters["connections"] += 1
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                self._counters["requests"] += 1
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload = await self._dispatch(method, path, headers, body)
                if status == 200:
                    self._counters["responses_ok"] += 1
                else:
                    self._counters["responses_error"] += 1
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except _PEER_GONE:  # repro: allow[silent-except] -- peer hung up mid-request; per-connection, nothing to fail
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # repro: allow[silent-except] -- close raced the peer's reset
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between requests: keep-alive ended
            raise
        except asyncio.LimitOverrunError as exc:
            raise _HttpError("bad-request", "header section too large") from exc
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError("bad-request", "header section too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError as exc:
            raise _HttpError("bad-request", f"malformed request line {lines[0]!r}") from exc
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _HttpError("bad-request", f"body of {length} bytes exceeds limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode()
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, Any]]:
        """Route one request; never raises — failures become error envelopes."""
        try:
            if path == "/v1/health" and method == "GET":
                return self._health()
            if path == "/v1/metrics" and method == "GET":
                return 200, self._metrics()
            if path == "/v1/scenes" and method == "POST":
                return self._register_scene(self._json_body(body))
            if path == "/v1/solve" and method == "POST":
                request = self._decode_request(self._json_body(body), headers)
                return await self._solve_one(request)
            if path == "/v1/solve-batch" and method == "POST":
                return await self._solve_batch(self._json_body(body), headers)
            if path.startswith("/v1/"):
                raise _HttpError("not-found", f"no such endpoint {path!r}")
            raise _HttpError("not-found", f"unknown path {path!r} (try /v1/...)")
        except _HttpError as exc:  # repro: allow[silent-except] -- returned to the client as its error envelope
            return http_status_for(exc.code), exc.to_wire()
        except asyncio.CancelledError:
            raise  # server shutdown; not an error envelope
        except BaseException as exc:  # noqa: BLE001  # repro: allow[silent-except] -- encoded into a typed wire error for the client
            wire = error_to_wire(exc)
            return http_status_for(str(wire["error_code"])), wire

    def _json_body(self, body: bytes) -> dict[str, Any]:
        try:
            data = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError("bad-request", f"body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise _HttpError("bad-request", "body must be a JSON object")
        return data

    def _health(self) -> tuple[int, dict[str, Any]]:
        healthy = self.service.healthy()
        payload = {
            "schema_version": SCHEMA_VERSION,
            "status": "ok" if healthy else "error",
            "healthy": healthy,
        }
        if not healthy:
            payload["error_code"] = "service-fault"
            payload["message"] = "service is closed or has no routable workers"
        return (200 if healthy else 503), payload

    def _metrics(self) -> dict[str, Any]:
        snapshot = self.service.metrics_snapshot()
        snapshot["schema_version"] = SCHEMA_VERSION
        snapshot["gateway"] = self.counters()
        return snapshot

    def _register_scene(self, data: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        structure_data = data.get("structure", data)
        if not isinstance(structure_data, dict) or "type" not in structure_data:
            raise _HttpError(
                "bad-request", "expected an io-layer structure object"
            )
        try:
            structure = _structure_from_dict(structure_data)
        except (KeyError, ValueError, TypeError) as exc:
            raise _HttpError("bad-request", f"malformed structure: {exc}") from exc
        scene_id = self.service.register_scene(structure)
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "scene_id": scene_id,
            "n": structure.n,
        }

    def _decode_request(
        self, data: dict[str, Any], headers: dict[str, str]
    ) -> AuctionRequest:
        try:
            request = request_from_wire(data)
        except (KeyError, ValueError, TypeError) as exc:
            raise _HttpError("bad-request", f"malformed request: {exc}") from exc
        if request.mode != "allocate":
            raise _HttpError(
                "bad-request",
                f"mode {request.mode!r} is not servable over the wire "
                "(schema_version 1 serializes allocate results only)",
            )
        deadline_header = headers.get("x-auction-deadline")
        if deadline_header is not None:
            try:
                request.deadline = float(deadline_header)
            except ValueError as exc:
                raise _HttpError(
                    "bad-request",
                    f"X-Auction-Deadline {deadline_header!r} is not a number",
                ) from exc
        if request.deadline is not None and request.deadline <= 0:
            raise _HttpError(
                "bad-request", f"deadline must be positive, got {request.deadline}"
            )
        return request

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    async def _solve_one(self, request: AuctionRequest) -> tuple[int, dict[str, Any]]:
        """Submit one request and await its (wrapped) service future."""
        try:
            future = self.service.submit(request)
        except KeyError as exc:
            raise _HttpError(
                "unknown-scene",
                f"scene {request.scene_id!r} is not registered; "
                "POST it to /v1/scenes first",
            ) from exc
        except (ValueError, RuntimeError) as exc:
            # invalid mode/deadline, or submit-after-close — nothing accepted
            if isinstance(exc, ShedError):
                raise  # typed shed keeps its 503, it is not a bad request
            raise _HttpError("bad-request", str(exc)) from exc
        result = await asyncio.wrap_future(future)
        return 200, result.to_wire()

    async def _solve_batch(
        self, data: dict[str, Any], headers: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        """Submit a batch concurrently; one envelope per item, in order.

        Items are submitted back to back *before* any is awaited, so the
        service's coalescing window sees them as one arrival wave — the
        wire-level equivalent of :meth:`AuctionService.solve_batch` —
        and per-item failures stay per-item (HTTP 200 with mixed
        envelopes), matching how the in-process API fails futures
        individually.
        """
        items = data.get("requests")
        if not isinstance(items, list):
            raise _HttpError("bad-request", 'expected {"requests": [...]}')
        requests = [self._decode_request(item, headers) for item in items]

        async def run(request: AuctionRequest) -> dict[str, Any]:
            try:
                _status, payload = await self._solve_one(request)
            except _HttpError as exc:  # repro: allow[silent-except] -- per-item error envelope in the batch response
                return exc.to_wire()
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001  # repro: allow[silent-except] -- per-item typed wire error in the batch response
                return error_to_wire(exc)
            return payload

        responses = await asyncio.gather(*(run(request) for request in requests))
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "responses": list(responses),
        }


class GatewayServer:
    """Synchronous wrapper: the gateway's event loop on a daemon thread.

    ``with GatewayServer(service) as server:`` binds an ephemeral
    localhost port (``server.port``), serves until ``close()``, and never
    outlives the interpreter (daemon thread).  The backing service is
    *not* closed by this wrapper — the caller owns its lifecycle, so one
    service can be driven through the gateway and in-process at once
    (which is exactly how the replay-parity benchmark works).
    """

    def __init__(
        self,
        service: AuctionService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.gateway = AuctionGateway(service)
        self.host = host
        self._requested_port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self.port: int = 0

    def start(self) -> "GatewayServer":
        """Start the loop thread and bind the listening socket."""
        if self._thread is not None:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-loop", daemon=True
        )
        self._thread.start()
        started = asyncio.run_coroutine_threadsafe(
            self.gateway.start(self.host, self._requested_port), self._loop
        )
        self._server = started.result(timeout=30)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop accepting, close the listener, and join the loop thread."""
        loop, server, thread = self._loop, self._server, self._thread
        if loop is None or thread is None:
            return
        if server is not None:

            async def shutdown() -> None:
                server.close()
                await server.wait_closed()

            asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()
        self._loop = self._thread = self._server = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
