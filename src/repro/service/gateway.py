"""Asyncio HTTP/1.1 gateway: the network-facing edge of the auction service.

:class:`AuctionGateway` serves the versioned wire schema
(:mod:`repro.service.wire`) over plain HTTP/1.1 on the stdlib event loop
— no web framework, no extra dependency — in front of a backing
:class:`~repro.service.AuctionService`.  The event loop only parses,
routes, and encodes; every solve is bridged onto the service's own
dispatcher/shard machinery by wrapping the ``submit`` future with
:func:`asyncio.wrap_future`, so thousands of concurrent connections cost
one coroutine each while the thread or process executor does the actual
work.

Endpoints (all request/response bodies are JSON; see DESIGN.md → "The
serving edge" for the full table):

========  ====================  =============================================
method    path                  semantics
========  ====================  =============================================
POST      ``/v1/scenes``        register a conflict structure (io-layer
                                schema); returns its content-hash
                                ``scene_id`` — the fingerprint clients
                                re-solve by, so shard affinity survives the
                                network boundary
POST      ``/v1/solve``         one wire request → one wire response
POST      ``/v1/solve-batch``   ``{"requests": [...]}`` → per-item success
                                *or* error envelopes, submitted concurrently
                                so the service can coalesce them
GET       ``/v1/metrics``       the service metrics snapshot plus gateway
                                HTTP counters
GET       ``/v1/health``        200 while the service can serve, 503 after
                                close or an all-breakers-open pool
========  ====================  =============================================

Failure semantics are the wire schema's: every typed service failure
maps to a distinct HTTP status with a machine-readable ``error_code``
(shed → 503, deadline-exceeded → 504, worker-crash → 502, injected
fault → 500, malformed request → 400, unknown scene → 404, oversized
body → 413, oversized header section → 431), and the asyncio client
(:mod:`repro.service.client`) reconstructs the exact exception type —
the PR 8 fault-tolerance contract crosses the wire unchanged.
Deadlines propagate from the ``X-Auction-Deadline`` header (seconds of
budget; overrides the body's ``deadline`` field) into the request the
service triages with its EWMA solve-time estimate.

**Idempotent replay.**  Every solve is journaled in a bounded LRU
(:class:`_ResultJournal`) under the request's idempotency key
(:func:`~repro.service.wire.default_idempotency_key` when the envelope
carries none).  A retried request — the client resending after a lost
response, identified by the ``X-Auction-Attempt`` header it stamps —
hits the journal and receives the original response payload
byte-identically, without a second solve; concurrent duplicates (a
hedged request racing its primary) coalesce onto the in-flight solve.
Errors are never journaled: a retry of a failed request genuinely
re-attempts it.  The ``duplicate_solves`` counter pins the contract —
it only moves when a key solves twice (possible only after journal
eviction), and the chaos runner's ``no_duplicate_solves`` invariant
asserts it stays zero.

**Network fault sites.**  When the backing service carries a
:class:`~repro.service.faults.FaultPlan`, the gateway evaluates
``gateway.accept`` (refuse the request: close with no response) before
admission and ``gateway.response`` (drop: close before any byte;
truncate: cut mid-body) after the solve was journaled — so the retry
that follows is served from the journal.  Draws are keyed
``(request seed, attempt)``: deterministic per attempt, fresh across
attempts.

:class:`GatewayServer` runs the event loop on a background thread for
synchronous callers (benchmarks, tests, the chaos harness's gateway
transport); async applications embed :class:`AuctionGateway` directly.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.io import _structure_from_dict
from repro.service.errors import ShedError
from repro.service.wire import (
    SCHEMA_VERSION,
    default_idempotency_key,
    error_to_wire,
    http_status_for,
    request_from_wire,
)

if TYPE_CHECKING:
    from repro.service.faults import FaultPlan
    from repro.service.service import AuctionService
    from repro.service.wire import AuctionRequest

__all__ = ["AuctionGateway", "GatewayServer"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 256 * 1024 * 1024

# the peer vanishing mid-exchange is a per-connection event, not a
# service failure: the connection handler just ends
_PEER_GONE = (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError)

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """A request-shaped failure with a wire error code attached."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code

    def to_wire(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "error",
            "error_code": self.code,
            "message": str(self),
        }


class _ConnectionDrop(Exception):
    """Control flow for injected network faults: abandon the connection.

    Raised out of the solve path when a ``gateway.accept`` or
    ``gateway.response`` fault fires; ``_handle_connection`` translates
    it into the wire-level symptom (no response, or ``payload``
    serialized and cut mid-body for ``kind="truncate"``) and closes the
    socket.  Never escapes the gateway.
    """

    def __init__(
        self, kind: str, payload: dict[str, Any] | None = None
    ) -> None:
        super().__init__(f"injected gateway {kind}")
        self.kind = kind
        self.payload = payload


class _ResultJournal:
    """Bounded LRU of completed solve payloads, keyed by idempotency key.

    Lives on the gateway's event loop — single-threaded by construction,
    so plain dicts need no lock.  Three structures:

    * ``_done`` — key → wire payload of a completed solve, LRU-evicted at
      ``capacity`` (each entry is one JSON-native response dict; sizing
      is therefore ``capacity × typical response size``);
    * ``_inflight`` — key → future of a solve currently running, so a
      concurrent duplicate (hedge, aggressive retry) *coalesces* instead
      of double-submitting; the future resolves to an ``("ok", payload)``
      / ``("error", exc)`` outcome tuple so an unobserved error never
      trips asyncio's exception-never-retrieved warning;
    * ``_seen`` — every key ever completed, for the ``duplicate_solves``
      accounting: a completed solve whose key was seen before means the
      journal failed to deduplicate (only possible after eviction).
      One 32-char string per unique request; the payload memory the
      journal holds is bounded by ``capacity``.

    ``capacity=0`` disables journaling (every lookup misses) — the
    configuration knob for measuring what the journal buys.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._done: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._inflight: dict[str, asyncio.Future[tuple[str, Any]]] = {}
        self._seen: set[str] = set()
        self.stats: dict[str, int] = {
            "journal_hits": 0,
            "journal_coalesced": 0,
            "journal_misses": 0,
            "journal_evictions": 0,
            "duplicate_solves": 0,
        }

    def lookup(self, key: str) -> dict[str, Any] | None:
        """The journaled payload for ``key``, refreshed in the LRU."""
        payload = self._done.get(key)
        if payload is not None:
            self._done.move_to_end(key)
            self.stats["journal_hits"] += 1
            return payload
        return None

    def inflight(self, key: str) -> asyncio.Future[tuple[str, Any]] | None:
        return self._inflight.get(key)

    def begin(self, key: str) -> asyncio.Future[tuple[str, Any]]:
        """Claim ``key``: this caller owns the solve, others coalesce."""
        self.stats["journal_misses"] += 1
        if key in self._seen:
            self.stats["duplicate_solves"] += 1
        future: asyncio.Future[tuple[str, Any]] = (
            asyncio.get_running_loop().create_future()
        )
        if self.capacity > 0:
            self._inflight[key] = future
        return future

    def complete(
        self, key: str, future: asyncio.Future[tuple[str, Any]], payload: dict[str, Any]
    ) -> None:
        self._inflight.pop(key, None)
        self._seen.add(key)
        if self.capacity > 0:
            self._done[key] = payload
            self._done.move_to_end(key)
            while len(self._done) > self.capacity:
                self._done.popitem(last=False)
                self.stats["journal_evictions"] += 1
        if not future.done():
            future.set_result(("ok", payload))

    def fail(
        self, key: str, future: asyncio.Future[tuple[str, Any]], exc: BaseException
    ) -> None:
        """Release ``key`` without journaling: retries re-attempt errors."""
        self._inflight.pop(key, None)
        if not future.done():
            future.set_result(("error", exc))


class AuctionGateway:
    """HTTP/1.1 front-end over one :class:`AuctionService` (asyncio).

    ``journal_capacity`` bounds the idempotency journal (0 disables it);
    ``max_header_bytes``/``max_body_bytes`` are the request size caps,
    rejected with typed 431/413 wire errors rather than a bare close.
    """

    def __init__(
        self,
        service: AuctionService,
        *,
        journal_capacity: int = 1024,
        max_header_bytes: int = _MAX_HEADER_BYTES,
        max_body_bytes: int = _MAX_BODY_BYTES,
    ) -> None:
        self.service = service
        self.max_header_bytes = int(max_header_bytes)
        self.max_body_bytes = int(max_body_bytes)
        self._journal = _ResultJournal(journal_capacity)
        # mutated only on the event loop (one thread), read via /v1/metrics
        # on the same loop — no lock needed by construction
        self._counters: dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "responses_ok": 0,
            "responses_error": 0,
            "refused_connections": 0,
            "dropped_responses": 0,
        }
        self._open_writers: set[asyncio.StreamWriter] = set()

    @property
    def _fault_plan(self) -> FaultPlan | None:
        plan: FaultPlan | None = getattr(self.service, "fault_plan", None)
        return plan

    # ------------------------------------------------------------------
    # server lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        # the stream limit must exceed the header cap, or readuntil would
        # overrun before the cap's typed 431 gets a chance to fire
        return await asyncio.start_server(
            self._handle_connection, host, port, limit=self.max_header_bytes + 64 * 1024
        )

    def counters(self) -> dict[str, int]:
        """Gateway HTTP + journal accounting (copied; loop-thread safe)."""
        merged = dict(self._counters)
        merged.update(self._journal.stats)
        return merged

    def abort_connections(self) -> None:
        """Slam every open connection (simulated process death).

        Must run on the gateway's event loop.  Unlike a graceful drain,
        clients see their in-flight exchanges die with a reset/EOF — the
        failure a :class:`~repro.service.client.ReplicaSet` fails over
        on.
        """
        for writer in list(self._open_writers):
            writer.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._counters["connections"] += 1
        self._open_writers.add(writer)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _HttpError as exc:  # repro: allow[silent-except] -- answered as a typed wire error, then closed
                    # oversized/malformed framing: answer typed, then close
                    # (unread body bytes may follow, so keep-alive is off)
                    self._counters["requests"] += 1
                    self._counters["responses_error"] += 1
                    await self._write_response(
                        writer, http_status_for(exc.code), exc.to_wire(), False
                    )
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                self._counters["requests"] += 1
                keep_alive = headers.get("connection", "keep-alive") != "close"
                try:
                    status, payload = await self._dispatch(
                        method, path, headers, body
                    )
                except _ConnectionDrop as drop:  # repro: allow[silent-except] -- injected fault: counted in _abandon, socket closed
                    await self._abandon(writer, drop)
                    break
                if status == 200:
                    self._counters["responses_ok"] += 1
                else:
                    self._counters["responses_error"] += 1
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except _PEER_GONE:  # repro: allow[silent-except] -- peer hung up mid-request; per-connection, nothing to fail
            pass
        finally:
            self._open_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # repro: allow[silent-except] -- close raced the peer's reset
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between requests: keep-alive ended
            raise
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(
                "header-too-large",
                f"header section exceeds {self.max_header_bytes} bytes",
            ) from exc
        if len(head) > self.max_header_bytes:
            raise _HttpError(
                "header-too-large",
                f"header section of {len(head)} bytes exceeds "
                f"{self.max_header_bytes}",
            )
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError as exc:
            raise _HttpError("bad-request", f"malformed request line {lines[0]!r}") from exc
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.max_body_bytes:
            raise _HttpError(
                "payload-too-large",
                f"body of {length} bytes exceeds {self.max_body_bytes}",
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        if writer.is_closing():
            # aborted mid-solve (abort_connections): surface as the
            # peer-gone path, never a write on a dead transport
            raise ConnectionResetError("connection aborted")
        body = json.dumps(payload).encode()
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _abandon(self, writer: asyncio.StreamWriter, drop: _ConnectionDrop) -> None:
        """Realize an injected network fault on the wire.

        ``refuse``/``drop`` close without a byte; ``truncate`` writes a
        head promising the full body and half the body, then closes —
        the client's ``readexactly`` fails mid-response.  Either way the
        solve (if any) is already journaled, so the retry is a hit.
        """
        counter = (
            "refused_connections" if drop.kind == "refuse" else "dropped_responses"
        )
        self._counters[counter] += 1
        if drop.kind == "truncate" and drop.payload is not None:
            body = json.dumps(drop.payload).encode()
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: keep-alive\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + body[: max(1, len(body) // 2)])
            try:
                await writer.drain()
            except _PEER_GONE:  # repro: allow[silent-except] -- the drop raced the peer's own close
                pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, Any]]:
        """Route one request; never raises — failures become error envelopes."""
        try:
            if path == "/v1/health" and method == "GET":
                return self._health()
            if path == "/v1/metrics" and method == "GET":
                return 200, self._metrics()
            if path == "/v1/scenes" and method == "POST":
                return self._register_scene(self._json_body(body))
            if path == "/v1/solve" and method == "POST":
                request = self._decode_request(self._json_body(body), headers)
                return await self._solve_one(request, self._attempt_from(headers))
            if path == "/v1/solve-batch" and method == "POST":
                return await self._solve_batch(self._json_body(body), headers)
            if path.startswith("/v1/"):
                raise _HttpError("not-found", f"no such endpoint {path!r}")
            raise _HttpError("not-found", f"unknown path {path!r} (try /v1/...)")
        except _ConnectionDrop:
            raise  # injected network fault; the connection handler realizes it
        except _HttpError as exc:  # repro: allow[silent-except] -- returned to the client as its error envelope
            return http_status_for(exc.code), exc.to_wire()
        except asyncio.CancelledError:
            raise  # server shutdown; not an error envelope
        except BaseException as exc:  # noqa: BLE001  # repro: allow[silent-except] -- encoded into a typed wire error for the client
            wire = error_to_wire(exc)
            return http_status_for(str(wire["error_code"])), wire

    def _json_body(self, body: bytes) -> dict[str, Any]:
        try:
            data = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError("bad-request", f"body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise _HttpError("bad-request", "body must be a JSON object")
        return data

    def _health(self) -> tuple[int, dict[str, Any]]:
        healthy = self.service.healthy()
        payload = {
            "schema_version": SCHEMA_VERSION,
            "status": "ok" if healthy else "error",
            "healthy": healthy,
        }
        if not healthy:
            payload["error_code"] = "service-fault"
            payload["message"] = "service is closed or has no routable workers"
        return (200 if healthy else 503), payload

    def _metrics(self) -> dict[str, Any]:
        snapshot = self.service.metrics_snapshot()
        snapshot["schema_version"] = SCHEMA_VERSION
        snapshot["gateway"] = self.counters()
        return snapshot

    def _register_scene(self, data: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        structure_data = data.get("structure", data)
        if not isinstance(structure_data, dict) or "type" not in structure_data:
            raise _HttpError(
                "bad-request", "expected an io-layer structure object"
            )
        try:
            structure = _structure_from_dict(structure_data)
        except (KeyError, ValueError, TypeError) as exc:
            raise _HttpError("bad-request", f"malformed structure: {exc}") from exc
        scene_id = self.service.register_scene(structure)
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "scene_id": scene_id,
            "n": structure.n,
        }

    def _decode_request(
        self, data: dict[str, Any], headers: dict[str, str]
    ) -> AuctionRequest:
        try:
            request = request_from_wire(data)
        except (KeyError, ValueError, TypeError) as exc:
            raise _HttpError("bad-request", f"malformed request: {exc}") from exc
        if request.mode != "allocate":
            raise _HttpError(
                "bad-request",
                f"mode {request.mode!r} is not servable over the wire "
                "(schema_version 1 serializes allocate results only)",
            )
        deadline_header = headers.get("x-auction-deadline")
        if deadline_header is not None:
            try:
                request.deadline = float(deadline_header)
            except ValueError as exc:
                raise _HttpError(
                    "bad-request",
                    f"X-Auction-Deadline {deadline_header!r} is not a number",
                ) from exc
        if request.deadline is not None and request.deadline <= 0:
            raise _HttpError(
                "bad-request", f"deadline must be positive, got {request.deadline}"
            )
        return request

    def _attempt_from(self, headers: dict[str, str]) -> int:
        """The client's attempt ordinal (1-based; 1 when absent).

        Stamped by the retrying client as ``X-Auction-Attempt`` so the
        keyed network-fault draws are per-attempt — a fault that fired
        on attempt 1 draws fresh on attempt 2.
        """
        raw = headers.get("x-auction-attempt")
        if raw is None:
            return 1
        try:
            attempt = int(raw)
        except ValueError as exc:
            raise _HttpError(
                "bad-request", f"X-Auction-Attempt {raw!r} is not an integer"
            ) from exc
        if attempt < 1:
            raise _HttpError(
                "bad-request", f"X-Auction-Attempt must be >= 1, got {attempt}"
            )
        return attempt

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    async def _solve_one(
        self, request: AuctionRequest, attempt: int = 1
    ) -> tuple[int, dict[str, Any]]:
        """Serve one request: journal lookup, coalesce, or submit + await.

        Order matters for the resilience contract: the ``gateway.accept``
        fault fires *before* admission (a refused request was never
        accepted), the journal is consulted before the service sees the
        request (a retry must not re-solve), and the
        ``gateway.response`` fault fires *after* the payload is
        journaled (the retry that follows is a hit).
        """
        plan = self._fault_plan
        fault_key = (int(request.seed or 0), attempt)
        if plan is not None and plan.fires("gateway.accept", key=fault_key):
            raise _ConnectionDrop("refuse")
        key = request.idempotency_key or default_idempotency_key(request)
        payload = self._journal.lookup(key)
        if payload is None:
            waiter = self._journal.inflight(key)
            if waiter is not None:
                # coalesce onto the running solve; shield so this
                # connection dying cannot cancel the owner's future
                self._journal.stats["journal_coalesced"] += 1
                outcome, value = await asyncio.shield(waiter)
                if outcome == "error":
                    raise value
                payload = value
            else:
                payload = await self._solve_fresh(request, key)
        if plan is not None:
            spec = plan.fires("gateway.response", key=fault_key)
            if spec is not None:
                raise _ConnectionDrop(
                    spec.kind, payload if spec.kind == "truncate" else None
                )
        return 200, payload

    async def _solve_fresh(
        self, request: AuctionRequest, key: str
    ) -> dict[str, Any]:
        """Own the solve for ``key``: submit, await, journal the payload."""
        claim = self._journal.begin(key)
        try:
            try:
                future = self.service.submit(request)
            except KeyError as exc:
                raise _HttpError(
                    "unknown-scene",
                    f"scene {request.scene_id!r} is not registered; "
                    "POST it to /v1/scenes first",
                ) from exc
            except (ValueError, RuntimeError) as exc:
                # invalid mode/deadline, or submit-after-close — nothing accepted
                if isinstance(exc, ShedError):
                    raise  # typed shed keeps its 503, it is not a bad request
                raise _HttpError("bad-request", str(exc)) from exc
            result = await asyncio.wrap_future(future)
            payload: dict[str, Any] = result.to_wire()
        except BaseException as exc:  # noqa: BLE001
            # errors are released, never journaled: coalesced waiters see
            # the same failure, and a later retry genuinely re-attempts
            self._journal.fail(key, claim, exc)
            raise
        self._journal.complete(key, claim, payload)
        return payload

    async def _solve_batch(
        self, data: dict[str, Any], headers: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        """Submit a batch concurrently; one envelope per item, in order.

        Items are submitted back to back *before* any is awaited, so the
        service's coalescing window sees them as one arrival wave — the
        wire-level equivalent of :meth:`AuctionService.solve_batch` —
        and per-item failures stay per-item (HTTP 200 with mixed
        envelopes), matching how the in-process API fails futures
        individually.
        """
        items = data.get("requests")
        if not isinstance(items, list):
            raise _HttpError("bad-request", 'expected {"requests": [...]}')
        requests = [self._decode_request(item, headers) for item in items]
        attempt = self._attempt_from(headers)

        async def run(request: AuctionRequest) -> dict[str, Any]:
            try:
                _status, payload = await self._solve_one(request, attempt)
            except _ConnectionDrop:
                raise  # injected network fault abandons the whole connection
            except _HttpError as exc:  # repro: allow[silent-except] -- per-item error envelope in the batch response
                return exc.to_wire()
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001  # repro: allow[silent-except] -- per-item typed wire error in the batch response
                return error_to_wire(exc)
            return payload

        responses = await asyncio.gather(*(run(request) for request in requests))
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "responses": list(responses),
        }


class GatewayServer:
    """Synchronous wrapper: the gateway's event loop on a daemon thread.

    ``with GatewayServer(service) as server:`` binds an ephemeral
    localhost port (``server.port``), serves until ``close()``, and never
    outlives the interpreter (daemon thread).  The backing service is
    *not* closed by this wrapper — the caller owns its lifecycle, so one
    service can be driven through the gateway and in-process at once
    (which is exactly how the replay-parity benchmark works).
    """

    def __init__(
        self,
        service: AuctionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        journal_capacity: int = 1024,
        max_header_bytes: int = _MAX_HEADER_BYTES,
        max_body_bytes: int = _MAX_BODY_BYTES,
    ) -> None:
        self.gateway = AuctionGateway(
            service,
            journal_capacity=journal_capacity,
            max_header_bytes=max_header_bytes,
            max_body_bytes=max_body_bytes,
        )
        self.host = host
        self._requested_port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self.port: int = 0

    def start(self) -> "GatewayServer":
        """Start the loop thread and bind the listening socket."""
        if self._thread is not None:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-loop", daemon=True
        )
        self._thread.start()
        started = asyncio.run_coroutine_threadsafe(
            self.gateway.start(self.host, self._requested_port), self._loop
        )
        self._server = started.result(timeout=30)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def kill(self) -> None:
        """Simulate this replica's process dying mid-trace.

        ``close()`` is a graceful drain: the listener stops but live
        keep-alive connections finish their exchanges.  ``kill()`` also
        slams every open connection, so clients see resets/EOF on their
        in-flight requests — the signal that drives
        :class:`~repro.service.client.ReplicaSet` eviction.
        """
        loop, server = self._loop, self._server
        if loop is not None and server is not None:

            def slam() -> None:
                server.close()
                self.gateway.abort_connections()

            loop.call_soon_threadsafe(slam)
        self.close()

    def close(self) -> None:
        """Stop accepting, close the listener, and join the loop thread."""
        loop, server, thread = self._loop, self._server, self._thread
        if loop is None or thread is None:
            return
        if server is not None:

            async def shutdown() -> None:
                server.close()
                await server.wait_closed()

            asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()
        self._loop = self._thread = self._server = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
