"""Auction service layer: serve allocation requests over the batch engine.

The modules (see DESIGN.md → "The auction service", "Fault tolerance &
chaos", and "The serving edge"):

* :mod:`repro.service.scenes` — content-hash scene registry, so
  structurally identical interference scenes share one canonical object
  and therefore one compilation;
* :mod:`repro.service.service` — :class:`AuctionService`: coalescing
  request queue, per-service LRU compilation caches, shard-affinity
  routing, graceful drain, admission control + per-request deadlines
  with greedy-baseline degradation;
* :mod:`repro.service.pool` — :class:`ProcessShardPool`: long-lived
  worker processes (own HiGHS backend, warm bases, caches) behind the
  ``executor="process"`` service configuration — the GIL-free shard tier
  for distinct-heavy traffic — with capped-backoff respawn and
  per-worker circuit breakers;
* :mod:`repro.service.wire` — the versioned wire schema
  (``schema_version`` :data:`SCHEMA_VERSION`): :class:`AuctionRequest` /
  :class:`AuctionResponse` with exact JSON round trips, and every typed
  error mapped to a stable ``error_code`` + HTTP status
  (:data:`WIRE_ERROR_CODES`);
* :mod:`repro.service.gateway` — :class:`AuctionGateway`, the
  stdlib-asyncio HTTP/1.1 front-end serving the wire schema over
  localhost sockets (plus :class:`GatewayServer`, its sync wrapper);
* :mod:`repro.service.client` — :class:`GatewayClient` (asyncio,
  pooled keep-alive connections, typed-error reconstruction,
  :class:`RetryPolicy` retries + hedging), :class:`ReplicaSet`
  (multi-replica failover with probe-driven eviction), and their sync
  facades :class:`SyncGatewayClient` / :class:`SyncReplicaClient`
  (future-based ``submit``, mirroring the in-process service);
* :mod:`repro.service.traffic` — open-loop Poisson/burst/replay traffic
  over the metro workload family;
* :mod:`repro.service.metrics` — throughput, latency percentiles, cache
  hit rates, shed/timeout/degraded counters, persisted as JSON;
* :mod:`repro.service.errors` — the typed failure hierarchy
  (:class:`ShedError`, :class:`DeadlineExceeded`,
  :class:`InjectedFaultError`);
* :mod:`repro.service.faults` — declarative, seeded fault injection at
  named sites (:class:`FaultPlan`);
* :mod:`repro.service.scenarios` / :mod:`repro.service.chaos` — the
  named scenario library and the invariant-checking chaos runner.
"""

from repro.service.chaos import ChaosReport, run_matrix, run_scenario
from repro.service.client import (
    GatewayClient,
    ReplicaSet,
    RetryPolicy,
    SyncGatewayClient,
    SyncReplicaClient,
)
from repro.service.errors import (
    DeadlineExceeded,
    InjectedFaultError,
    ServiceFaultError,
    ShedError,
)
from repro.service.faults import FAULT_SITES, FaultPlan, FaultSpec
from repro.service.gateway import AuctionGateway, GatewayServer
from repro.service.metrics import ServiceMetrics
from repro.service.pool import ProcessShardPool, WorkerCrashError
from repro.service.scenarios import Scenario, scenario_library
from repro.service.scenes import SceneRegistry, scene_fingerprint
from repro.service.service import AuctionService
from repro.service.traffic import (
    TrafficRequest,
    TrafficTrace,
    burst_trace,
    load_trace,
    poisson_trace,
    save_trace,
)
from repro.service.wire import (
    SCHEMA_VERSION,
    WIRE_ERROR_CODES,
    AuctionRequest,
    AuctionResponse,
    decode_valuation,
    default_idempotency_key,
    encode_valuation,
    error_from_wire,
    error_to_wire,
    http_status_for,
    request_from_wire,
    request_to_wire,
)

__all__ = [
    "AuctionRequest",
    "AuctionResponse",
    "AuctionService",
    "SCHEMA_VERSION",
    "WIRE_ERROR_CODES",
    "encode_valuation",
    "decode_valuation",
    "request_to_wire",
    "request_from_wire",
    "error_to_wire",
    "error_from_wire",
    "http_status_for",
    "default_idempotency_key",
    "AuctionGateway",
    "GatewayServer",
    "GatewayClient",
    "RetryPolicy",
    "ReplicaSet",
    "SyncGatewayClient",
    "SyncReplicaClient",
    "ProcessShardPool",
    "WorkerCrashError",
    "SceneRegistry",
    "scene_fingerprint",
    "ServiceMetrics",
    "ServiceFaultError",
    "ShedError",
    "DeadlineExceeded",
    "InjectedFaultError",
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "ChaosReport",
    "Scenario",
    "scenario_library",
    "run_scenario",
    "run_matrix",
    "TrafficRequest",
    "TrafficTrace",
    "poisson_trace",
    "burst_trace",
    "save_trace",
    "load_trace",
]
