"""Auction service layer: serve allocation requests over the batch engine.

Four modules (see DESIGN.md → "The auction service"):

* :mod:`repro.service.scenes` — content-hash scene registry, so
  structurally identical interference scenes share one canonical object
  and therefore one compilation;
* :mod:`repro.service.service` — :class:`AuctionService`: coalescing
  request queue, per-service LRU compilation caches, shard-affinity
  routing, graceful drain;
* :mod:`repro.service.pool` — :class:`ProcessShardPool`: long-lived
  worker processes (own HiGHS backend, warm bases, caches) behind the
  ``executor="process"`` service configuration — the GIL-free shard tier
  for distinct-heavy traffic;
* :mod:`repro.service.traffic` — open-loop Poisson/burst/replay traffic
  over the metro workload family;
* :mod:`repro.service.metrics` — throughput, latency percentiles, cache
  hit rates, persisted as JSON.
"""

from repro.service.metrics import ServiceMetrics
from repro.service.pool import ProcessShardPool, WorkerCrashError
from repro.service.scenes import SceneRegistry, scene_fingerprint
from repro.service.service import AuctionRequest, AuctionService
from repro.service.traffic import (
    TrafficRequest,
    TrafficTrace,
    burst_trace,
    load_trace,
    poisson_trace,
    save_trace,
)

__all__ = [
    "AuctionRequest",
    "AuctionService",
    "ProcessShardPool",
    "WorkerCrashError",
    "SceneRegistry",
    "scene_fingerprint",
    "ServiceMetrics",
    "TrafficRequest",
    "TrafficTrace",
    "poisson_trace",
    "burst_trace",
    "save_trace",
    "load_trace",
]
