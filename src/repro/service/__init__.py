"""Auction service layer: serve allocation requests over the batch engine.

The modules (see DESIGN.md → "The auction service" and "Fault tolerance
& chaos"):

* :mod:`repro.service.scenes` — content-hash scene registry, so
  structurally identical interference scenes share one canonical object
  and therefore one compilation;
* :mod:`repro.service.service` — :class:`AuctionService`: coalescing
  request queue, per-service LRU compilation caches, shard-affinity
  routing, graceful drain, admission control + per-request deadlines
  with greedy-baseline degradation;
* :mod:`repro.service.pool` — :class:`ProcessShardPool`: long-lived
  worker processes (own HiGHS backend, warm bases, caches) behind the
  ``executor="process"`` service configuration — the GIL-free shard tier
  for distinct-heavy traffic — with capped-backoff respawn and
  per-worker circuit breakers;
* :mod:`repro.service.traffic` — open-loop Poisson/burst/replay traffic
  over the metro workload family;
* :mod:`repro.service.metrics` — throughput, latency percentiles, cache
  hit rates, shed/timeout/degraded counters, persisted as JSON;
* :mod:`repro.service.errors` — the typed failure hierarchy
  (:class:`ShedError`, :class:`DeadlineExceeded`,
  :class:`InjectedFaultError`);
* :mod:`repro.service.faults` — declarative, seeded fault injection at
  named sites (:class:`FaultPlan`);
* :mod:`repro.service.scenarios` / :mod:`repro.service.chaos` — the
  named scenario library and the invariant-checking chaos runner.
"""

from repro.service.chaos import ChaosReport, run_matrix, run_scenario
from repro.service.errors import (
    DeadlineExceeded,
    InjectedFaultError,
    ServiceFaultError,
    ShedError,
)
from repro.service.faults import FAULT_SITES, FaultPlan, FaultSpec
from repro.service.metrics import ServiceMetrics
from repro.service.pool import ProcessShardPool, WorkerCrashError
from repro.service.scenarios import Scenario, scenario_library
from repro.service.scenes import SceneRegistry, scene_fingerprint
from repro.service.service import AuctionRequest, AuctionService
from repro.service.traffic import (
    TrafficRequest,
    TrafficTrace,
    burst_trace,
    load_trace,
    poisson_trace,
    save_trace,
)

__all__ = [
    "AuctionRequest",
    "AuctionService",
    "ProcessShardPool",
    "WorkerCrashError",
    "SceneRegistry",
    "scene_fingerprint",
    "ServiceMetrics",
    "ServiceFaultError",
    "ShedError",
    "DeadlineExceeded",
    "InjectedFaultError",
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "ChaosReport",
    "Scenario",
    "scenario_library",
    "run_scenario",
    "run_matrix",
    "TrafficRequest",
    "TrafficTrace",
    "poisson_trace",
    "burst_trace",
    "save_trace",
    "load_trace",
]
