"""Traffic generation and replay for the auction service.

Open-loop traces over the metro workload family
(:mod:`repro.experiments.workloads`): arrivals are generated *without*
feedback from service latency — a Poisson process for sustained load, or
bursts for stress — which is the right model for a spectrum-redistribution
frontend whose bidders do not pace themselves on the auctioneer.

Two mix axes, matching how real request streams repeat themselves:

* **repeat-heavy** (``repeat_fraction`` near 1) — most requests re-submit
  one of a small pool of valuation profiles (license renewals, retried
  requests, mechanism probes).  These carry a ``profile_key``, so the
  service's problem cache collapses each profile to one LP solve.
* **distinct-heavy** (``repeat_fraction`` near 0) — every request draws a
  fresh profile; only the scene's compiled structure is reusable.

Traces are plain data (arrival stamp + :class:`AuctionRequest`) and
serialize to JSON for record/replay, so a captured production mix can be
re-driven against a new build — the same shape
`benchmarks/bench_service.py` uses for its regression scenarios.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.service.scenes import SceneRegistry
from repro.service.wire import AuctionRequest, decode_valuation, encode_valuation
from repro.util.rng import SeedLike, ensure_rng
from repro.valuations.base import Valuation
from repro.valuations.generators import random_xor_valuations

__all__ = [
    "TrafficRequest",
    "TrafficTrace",
    "poisson_trace",
    "burst_trace",
    "save_trace",
    "load_trace",
]


@dataclass(frozen=True)
class TrafficRequest:
    """One scheduled request: when it arrives and what it asks for."""

    arrival: float  # seconds from trace start
    request: AuctionRequest


@dataclass
class TrafficTrace:
    """An ordered open-loop request schedule plus its generation metadata."""

    requests: list[TrafficRequest]
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[TrafficRequest]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> TrafficRequest:
        return self.requests[index]

    @property
    def duration(self) -> float:
        return self.requests[-1].arrival if self.requests else 0.0

    def profile_keys(self) -> set[str]:
        return {
            item.request.profile_key
            for item in self.requests
            if item.request.profile_key is not None
        }


def _profile_pools(
    registry: SceneRegistry,
    scene_ids: list[str],
    k: int,
    unique_profiles: int,
    bids_per_bidder: int,
    rng: np.random.Generator,
) -> dict[str, list[tuple[str, list[Valuation]]]]:
    """Per-scene pools of reusable (profile_key, valuations) pairs."""
    pools: dict[str, list[tuple[str, list[Valuation]]]] = {}
    for scene_id in scene_ids:
        n = registry.get(scene_id).n
        pools[scene_id] = [
            (
                f"{scene_id}:profile{i}",
                random_xor_valuations(
                    n, k, bids_per_bidder=bids_per_bidder, seed=rng
                ),
            )
            for i in range(unique_profiles)
        ]
    return pools


def _requests_for_arrivals(
    arrivals: np.ndarray,
    registry: SceneRegistry,
    scene_ids: list[str],
    k: int,
    repeat_fraction: float,
    unique_profiles: int,
    bids_per_bidder: int,
    rng: np.random.Generator,
    mode: str = "allocate",
    deadline: float | None = None,
) -> list[TrafficRequest]:
    pools = _profile_pools(
        registry, scene_ids, k, unique_profiles, bids_per_bidder, rng
    )
    out: list[TrafficRequest] = []
    for arrival in arrivals:
        scene_id = scene_ids[int(rng.integers(len(scene_ids)))]
        if unique_profiles and rng.random() < repeat_fraction:
            profile_key: str | None
            valuations: list[Valuation]
            profile_key, valuations = pools[scene_id][
                int(rng.integers(unique_profiles))
            ]
        else:
            profile_key = None
            valuations = random_xor_valuations(
                registry.get(scene_id).n,
                k,
                bids_per_bidder=bids_per_bidder,
                seed=rng,
            )
        out.append(
            TrafficRequest(
                arrival=float(arrival),
                request=AuctionRequest(
                    scene_id=scene_id,
                    k=k,
                    valuations=valuations,
                    seed=int(rng.integers(2**31)),
                    profile_key=profile_key,
                    mode=mode,
                    deadline=deadline,
                ),
            )
        )
    return out


def poisson_trace(
    registry: SceneRegistry,
    scene_ids: list[str],
    *,
    k: int,
    rate: float,
    num_requests: int,
    seed: SeedLike,
    repeat_fraction: float = 0.8,
    unique_profiles: int = 8,
    bids_per_bidder: int = 4,
    mode: str = "allocate",
    deadline: float | None = None,
) -> TrafficTrace:
    """Open-loop Poisson arrivals at ``rate`` requests/second.

    Scenes are drawn uniformly per request; ``repeat_fraction`` of the
    requests reuse a pooled profile (with ``profile_key`` set), the rest
    are distinct.  ``mode="truthful"`` marks every request for the
    truthful-mechanism pipeline (repeat-heavy truthful traces are the
    ``BENCH_mechanism.json`` acceptance workload).  ``deadline`` stamps
    every request with the same per-request latency budget (seconds from
    submit) for deadline/degradation scenarios.  Fully deterministic
    from ``seed``.
    """
    if rate <= 0 or num_requests < 0:
        raise ValueError("need rate > 0 and num_requests >= 0")
    rng = ensure_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=num_requests))
    requests = _requests_for_arrivals(
        arrivals,
        registry,
        list(scene_ids),
        k,
        repeat_fraction,
        unique_profiles,
        bids_per_bidder,
        rng,
        mode=mode,
        deadline=deadline,
    )
    return TrafficTrace(
        requests=requests,
        meta={
            "kind": "poisson",
            "rate": rate,
            "num_requests": num_requests,
            "repeat_fraction": repeat_fraction,
            "unique_profiles": unique_profiles,
            "k": k,
            "scenes": list(scene_ids),
            "mode": mode,
            "deadline": deadline,
        },
    )


def burst_trace(
    registry: SceneRegistry,
    scene_ids: list[str],
    *,
    k: int,
    burst_size: int,
    bursts: int,
    gap: float,
    seed: SeedLike,
    repeat_fraction: float = 0.8,
    unique_profiles: int = 8,
    bids_per_bidder: int = 4,
    mode: str = "allocate",
    deadline: float | None = None,
) -> TrafficTrace:
    """``bursts`` bursts of ``burst_size`` simultaneous arrivals, ``gap``
    seconds apart — the coalescing window's best case and the queue's
    worst case (and, with ``deadline``/``max_queue`` set, the overload
    scenario that exercises admission control)."""
    if burst_size < 1 or bursts < 1 or gap < 0:
        raise ValueError("need burst_size >= 1, bursts >= 1, gap >= 0")
    rng = ensure_rng(seed)
    arrivals = np.repeat(np.arange(bursts) * gap, burst_size)
    requests = _requests_for_arrivals(
        arrivals,
        registry,
        list(scene_ids),
        k,
        repeat_fraction,
        unique_profiles,
        bids_per_bidder,
        rng,
        mode=mode,
        deadline=deadline,
    )
    return TrafficTrace(
        requests=requests,
        meta={
            "kind": "burst",
            "burst_size": burst_size,
            "bursts": bursts,
            "gap": gap,
            "repeat_fraction": repeat_fraction,
            "k": k,
            "scenes": list(scene_ids),
            "mode": mode,
            "deadline": deadline,
        },
    )


# ----------------------------------------------------------------------
# record / replay
# ----------------------------------------------------------------------
# trace files use the wire layer's order-preserving valuation encoding
# (bid order is LP column order; see repro.service.wire.encode_valuation)


def save_trace(trace: TrafficTrace, path: str | pathlib.Path) -> pathlib.Path:
    """Serialize a trace to JSON (valuations via the io-layer schema)."""
    payload = {
        "meta": trace.meta,
        "requests": [
            {
                "arrival": item.arrival,
                "scene_id": item.request.scene_id,
                "k": item.request.k,
                "seed": item.request.seed,
                "profile_key": item.request.profile_key,
                "mode": item.request.mode,
                "deadline": item.request.deadline,
                "valuations": [
                    encode_valuation(v) for v in item.request.valuations
                ],
            }
            for item in trace.requests
        ],
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload) + "\n")
    return path


def load_trace(path: str | pathlib.Path) -> TrafficTrace:
    """Load a trace written by :func:`save_trace` for replay."""
    payload = json.loads(pathlib.Path(path).read_text())
    requests = [
        TrafficRequest(
            arrival=float(entry["arrival"]),
            request=AuctionRequest(
                scene_id=entry["scene_id"],
                k=int(entry["k"]),
                valuations=[
                    decode_valuation(v) for v in entry["valuations"]
                ],
                seed=entry["seed"],
                profile_key=entry["profile_key"],
                mode=entry.get("mode", "allocate"),  # pre-mechanism traces
                deadline=entry.get("deadline"),  # pre-deadline traces
            ),
        )
        for entry in payload["requests"]
    ]
    return TrafficTrace(requests=requests, meta=payload.get("meta", {}))
