"""Scene registry: content-addressed conflict structures.

A *scene* is one interference situation — a conflict structure (graph +
ordering π + ρ) over a fixed transmitter/link population.  The service
serves many auction requests against a mostly-stable set of scenes
(cf. Hoefer–Kesselheim's framing of secondary spectrum redistribution as
repeated allocation over a fixed interference scene), so scenes are
registered once and requests refer to them by id.

Ids are **content hashes**: two structurally identical scenes — same
graph, same ordering, same ρ — registered independently (two frontends,
a restart, a replayed trace) map to the same id and therefore to the
same canonical structure object, which is what makes the engine's
identity-keyed compilation caches effective across registrants.
"""

from __future__ import annotations

import hashlib
import threading
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.interference.base import WeightedConflictStructure

if TYPE_CHECKING:
    from repro.interference.base import ConflictStructure

    AnyStructure = ConflictStructure | WeightedConflictStructure

__all__ = ["scene_fingerprint", "SceneRegistry"]


def _update_array(h: Any, array: np.ndarray) -> None:  # repro: mutates[h] -- feeds the running hash
    h.update(np.ascontiguousarray(array).tobytes())


def scene_fingerprint(structure: AnyStructure) -> str:
    """Deterministic content hash of a conflict structure.

    Covers everything the compiled LP depends on: vertex count, ρ, the
    ordering permutation, and the (weighted) edge set.  Sparse- and
    dense-backed graphs of the same scene hash identically — the hash
    walks the canonical CSR form, which both backends expose.  Metadata
    (model name, geometry) is deliberately excluded: it does not change
    the optimization problem.
    """
    h = hashlib.sha256()
    weighted = isinstance(structure, WeightedConflictStructure)
    h.update(b"weighted" if weighted else b"unweighted")
    h.update(np.int64(structure.n).tobytes())
    h.update(np.float64(structure.rho).tobytes())
    _update_array(h, np.asarray(structure.ordering.perm, dtype=np.int64))
    csr = structure.graph.wbar_csr if weighted else structure.graph.csr
    if not csr.has_sorted_indices:
        # sorted copy, NOT in-place sort_indices(): the structure is shared
        # with concurrently-solving threads and must not be touched here
        csr = csr.sorted_indices()
    _update_array(h, csr.indptr.astype(np.int64))
    _update_array(h, csr.indices.astype(np.int64))
    _update_array(h, csr.data.astype(np.float64))
    return h.hexdigest()[:16]


class SceneRegistry:
    """Maps scene ids to canonical structure objects.

    Re-registering an identical structure returns the existing id and
    keeps the first object as canonical — callers should drop their copy
    and use :meth:`get` so identity-keyed caches downstream see one
    object per scene.
    """

    def __init__(self) -> None:
        self._scenes: dict[str, AnyStructure] = {}  #: guarded-by: _lock
        self._lock = threading.Lock()

    def register(self, structure: AnyStructure) -> str:
        """Register a structure; returns its content-hash scene id."""
        scene_id = scene_fingerprint(structure)
        with self._lock:
            self._scenes.setdefault(scene_id, structure)
        return scene_id

    def get(self, scene_id: str) -> AnyStructure:
        """The canonical structure for ``scene_id`` (KeyError if unknown)."""
        with self._lock:
            return self._scenes[scene_id]

    def __contains__(self, scene_id: str) -> bool:
        with self._lock:
            return scene_id in self._scenes

    def __len__(self) -> int:
        with self._lock:
            return len(self._scenes)

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._scenes)

    def snapshot(self) -> dict[str, AnyStructure]:
        """A consistent ``{scene_id: structure}`` copy of the registry.

        This is what a process-pool worker is seeded with at spawn: the
        structures themselves are shared (fork) or pickled (spawn /
        forkserver), and content-hash ids are stable across pickling, so
        the worker-side registry reproduces the parent's ids exactly.
        """
        with self._lock:
            return dict(self._scenes)
