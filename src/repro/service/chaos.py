"""Chaos runner: drive a scenario under faults, assert the serving invariants.

:func:`run_scenario` replays one :class:`~repro.service.scenarios.Scenario`
in real time through the queued service path, with its fault plan armed,
and checks the fault-tolerance contract (DESIGN.md → "Fault tolerance &
chaos"):

1. **typed resolution** — every accepted request resolves to a result or
   to a *typed* failure (:class:`~repro.service.errors.ServiceFaultError`
   subclass or :class:`~repro.service.pool.WorkerCrashError`); an untyped
   exception is a bug, not a fault;
2. **replay fidelity** — every completed non-degraded result is
   bit-identical to a fault-free serial replay of the same trace (the
   per-request seeds make this checkable at all);
3. **end-state health** — after draining, the pool (if any) holds only
   live workers: crashes were absorbed by respawn, not papered over;
4. **no duplicate solves** (gateway transport) — retried and hedged
   requests were deduplicated by the gateway's idempotency journal: the
   ``duplicate_solves`` counter stayed zero, so at-least-once delivery
   still produced exactly-once results.

Degraded results (greedy fallback, flagged ``details["degraded"]``) are
exempt from invariant 2 by construction — they deliberately serve a
different algorithm — and are counted separately.  Shed requests were
never accepted, so they appear only in the report's ``shed`` count.

:func:`run_matrix` sweeps scenario × fault-plan combinations — the
"scenario library + stress/chaos harness" ROADMAP item — and is what the
CI ``chaos-smoke`` job and ``benchmarks/bench_chaos.py`` drive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.service.client import RetryPolicy, SyncGatewayClient
from repro.service.errors import ServiceFaultError, ShedError
from repro.service.faults import FaultPlan
from repro.service.gateway import GatewayServer
from repro.service.pool import WorkerCrashError
from repro.service.scenarios import Scenario, scenario_library

__all__ = ["TYPED_FAILURES", "ChaosReport", "run_scenario", "run_matrix"]

# the complete set of failures the service is allowed to resolve with
TYPED_FAILURES = (ServiceFaultError, WorkerCrashError)

_UNSET = object()  # sentinel: "use the scenario's own fault plan"


@dataclass
class ChaosReport:
    """Outcome of one scenario run, invariants included."""

    scenario: str
    fault_plan: dict[str, Any] | None
    accepted: int
    shed: int
    completed: int
    degraded: int
    failed_typed: int
    failed_untyped: int
    replay_mismatches: int
    pool_healthy: bool
    p99_seconds: float | None
    transport: str = "in-process"
    fired: dict[str, int] = field(default_factory=dict)
    gateway: dict[str, int] = field(default_factory=dict)
    client: dict[str, int] = field(default_factory=dict)
    invariants: dict[str, bool] = field(default_factory=dict)

    @property
    def completion_rate(self) -> float:
        """Completed over accepted (shed requests were never accepted)."""
        return self.completed / self.accepted if self.accepted else 1.0

    def ok(self) -> bool:
        return all(self.invariants.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "fault_plan": self.fault_plan,
            "accepted": self.accepted,
            "shed": self.shed,
            "completed": self.completed,
            "degraded": self.degraded,
            "failed_typed": self.failed_typed,
            "failed_untyped": self.failed_untyped,
            "replay_mismatches": self.replay_mismatches,
            "completion_rate": self.completion_rate,
            "transport": self.transport,
            "pool_healthy": self.pool_healthy,
            "p99_seconds": self.p99_seconds,
            "fired": self.fired,
            "gateway": self.gateway,
            "client": self.client,
            "invariants": self.invariants,
        }


def _warm_profiles(service: Any, trace: Any) -> None:
    """Pre-solve one request per distinct profile, then zero the metrics.

    Warm-up results are discarded — caches change solve *latency*, never
    the bit-identical results — so the subsequent timed run measures
    steady-state tails.  Requests without a profile key are uncacheable
    and skipped.
    """
    seen: set[Any] = set()
    futures = []
    for item in trace:
        key = item.request.profile_key
        if key is None or key in seen:
            continue
        seen.add(key)
        futures.append(service.submit(item.request))
    for future in futures:
        future.result(timeout=300)
    service.metrics.reset()


def _same_result(a: Any, b: Any) -> bool:
    """Bit-identity for the two result kinds the service returns."""
    if hasattr(a, "sampled_allocation"):  # MechanismOutcome
        return bool(a.sampled_allocation == b.sampled_allocation)
    return bool(
        a.allocation == b.allocation
        and a.welfare == b.welfare
        and a.lp_value == b.lp_value
    )


def run_scenario(
    scenario: Scenario,
    *,
    fault_plan: FaultPlan | None | object = _UNSET,
    check_replay: bool = True,
    warmup_profiles: bool = False,
    transport: str = "in-process",
) -> ChaosReport:
    """Run one scenario end to end and evaluate the invariants.

    ``fault_plan`` overrides the scenario's own plan (``None`` runs it
    fault-free — useful for sweeping one traffic shape across plans).
    ``check_replay=False`` skips the fault-free reference run (roughly
    halves the cost) and reports zero mismatches.  ``warmup_profiles``
    pre-solves one request per distinct valuation profile in the trace
    and then resets the metrics, so the reported latencies measure the
    steady state (warm caches) instead of cold-start LP solves — the
    overload benchmark compares unloaded vs overloaded tails this way.

    ``transport="gateway"`` drives the same service through a real
    localhost HTTP gateway (:class:`~repro.service.gateway.GatewayServer`
    + :class:`~repro.service.client.SyncGatewayClient`) instead of
    in-process ``submit``: the invariants must hold across the wire too.
    The client arms the scenario's ``client["retry"]`` policy and the
    same fault plan (for ``client.connect`` sites), so network scenarios
    exercise refuse/drop/truncate/reset against a retrying client whose
    lost responses replay from the gateway's idempotency journal.
    Two accounting consequences are inherent to the network boundary —
    admission-control sheds arrive asynchronously as
    :class:`~repro.service.errors.ShedError`-failed futures (and are
    counted into ``shed``, exactly as the synchronous path counts them),
    and draining means awaiting every HTTP response rather than the
    service queue alone.
    """
    if transport not in ("in-process", "gateway"):
        raise ValueError(f"unknown transport {transport!r}")
    plan = scenario.fault_plan if fault_plan is _UNSET else fault_plan
    if plan is not None:
        plan.reset()  # re-arm: fire caps and streams start fresh per run
    registry, scene_ids = scenario.build_registry()
    trace = scenario.build_trace(registry, scene_ids)

    service = scenario.build_service(registry, fault_plan=plan)
    server: GatewayServer | None = None
    client: SyncGatewayClient | None = None
    slots: list[Any | None] = [None] * len(trace)  # future or None (shed)
    shed = 0
    try:
        if transport == "gateway":
            server = GatewayServer(service).start()
            retry = (
                RetryPolicy(**scenario.client["retry"])
                if "retry" in scenario.client
                else None
            )
            client = SyncGatewayClient(
                port=server.port, retry=retry, fault_plan=plan
            )
        submit = service.submit if client is None else client.submit
        if warmup_profiles:
            _warm_profiles(service, trace)
        t0 = time.perf_counter()
        for i, item in enumerate(trace):
            delay = item.arrival - (time.perf_counter() - t0)
            if delay > 0:
                time.sleep(delay)
            try:
                slots[i] = submit(item.request)
            except ShedError:  # repro: allow[silent-except] -- counted into the report
                shed += 1
        if client is not None:
            # over HTTP "drained" means every response has arrived, not
            # just that the service queue is empty — responses still in
            # flight on the gateway loop are otherwise invisible here
            for future in slots:
                if future is not None:
                    future.exception(timeout=300)
        service.drain()
        pool_healthy = service.healthy()
        snapshot = service.metrics_snapshot()
        gateway_counters = {} if server is None else server.gateway.counters()
        client_stats = {} if client is None else client.stats()
    finally:
        if client is not None:
            client.close()
        if server is not None:
            server.close()
        service.close()

    completed = degraded = failed_typed = failed_untyped = 0
    unresolved = 0
    results: list[Any | None] = [None] * len(trace)
    for i, future in enumerate(slots):
        if future is None:
            continue
        if not future.done():  # drain() returned, so this is a bug
            unresolved += 1
            continue
        exc = future.exception()
        if exc is None:
            results[i] = future.result()
            completed += 1
            details = getattr(results[i], "details", None)
            if isinstance(details, dict) and details.get("degraded"):
                degraded += 1
        elif isinstance(exc, ShedError):
            # gateway transport: the 503 surfaces on the future instead of
            # synchronously at submit; same meaning — never accepted
            slots[i] = None
            shed += 1
        elif isinstance(exc, TYPED_FAILURES):
            failed_typed += 1
        else:
            failed_untyped += 1

    mismatches = 0
    if check_replay and completed > degraded:
        reference = scenario.build_service(
            registry, fault_plan=None, executor="serial"
        )
        try:
            replayed = reference.run_trace(trace)
        finally:
            reference.close()
        for result, expected in zip(results, replayed):
            if result is None:
                continue
            details = getattr(result, "details", None)
            if isinstance(details, dict) and details.get("degraded"):
                continue
            if not _same_result(result, expected):
                mismatches += 1

    accepted = len(trace) - shed
    latency = snapshot.get("latency_seconds") or {}
    report = ChaosReport(
        scenario=scenario.name,
        fault_plan=None if plan is None else plan.to_dict(),
        accepted=accepted,
        shed=shed,
        completed=completed,
        degraded=degraded,
        failed_typed=failed_typed,
        failed_untyped=failed_untyped,
        replay_mismatches=mismatches,
        pool_healthy=pool_healthy,
        p99_seconds=latency.get("p99"),
        transport=transport,
        fired={} if plan is None else plan.fired_counts(),
        gateway=gateway_counters,
        client=client_stats,
    )
    report.invariants = {
        "all_resolved": unresolved == 0,
        "typed_failures_only": failed_untyped == 0,
        "accounted": accepted == completed + failed_typed + failed_untyped,
        "replay_identical": mismatches == 0,
        "pool_healthy": pool_healthy,
        # trivially true in-process: only a gateway journal can dedupe,
        # and only the gateway transport can duplicate in the first place
        "no_duplicate_solves": gateway_counters.get("duplicate_solves", 0) == 0,
    }
    return report


def run_matrix(
    scenarios: Iterable[Scenario] | None = None,
    fault_plans: Iterable[FaultPlan | None] | None = None,
    *,
    check_replay: bool = True,
) -> list[ChaosReport]:
    """Sweep scenario × fault plan; returns one report per combination.

    Defaults: every library scenario, each under its own fault plan.
    Passing ``fault_plans`` crosses *every* scenario with every given
    plan instead (``None`` entries mean fault-free).
    """
    if scenarios is None:
        scenarios = scenario_library().values()
    reports: list[ChaosReport] = []
    for scenario in scenarios:
        plans: list[FaultPlan | None] = (
            [scenario.fault_plan] if fault_plans is None else list(fault_plans)
        )
        for plan in plans:
            reports.append(
                run_scenario(scenario, fault_plan=plan, check_replay=check_replay)
            )
    return reports
