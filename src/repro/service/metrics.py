"""Service metrics: throughput, latency percentiles, cache accounting.

One :class:`ServiceMetrics` instance lives per
:class:`~repro.service.AuctionService`.  Workers record each completed
request's latency (submit → result set) and each dispatched batch's
size; :meth:`snapshot` folds in the cache counters the service injects
and returns a plain dict — ``AuctionService.write_metrics`` persists it
(plus the service configuration) as JSON.
"""

from __future__ import annotations

import threading
import time
from typing import Any

import numpy as np

__all__ = ["ServiceMetrics"]

_PERCENTILES = (50.0, 95.0, 99.0)


class ServiceMetrics:
    """Thread-safe counters and latency reservoir for one service.

    ``max_samples`` bounds the latency reservoir; once full, further
    samples update only the counters (sustained benchmarks stay far below
    the default).  Wall-clock span runs from the first recorded submit to
    the last recorded completion, so throughput is measured over the
    service's active window rather than its idle lifetime.
    """

    def __init__(self, max_samples: int = 1_000_000) -> None:
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._latencies: list[float] = []  #: guarded-by: _lock
        self._batch_sizes: list[int] = []  #: guarded-by: _lock
        self._submitted = 0  #: guarded-by: _lock
        self._completed = 0  #: guarded-by: _lock
        self._failed = 0  #: guarded-by: _lock
        self._shed = 0  #: guarded-by: _lock
        self._timeouts = 0  #: guarded-by: _lock
        self._degraded = 0  #: guarded-by: _lock
        self._first_submit: float | None = None  #: guarded-by: _lock
        self._last_done: float | None = None  #: guarded-by: _lock

    # ------------------------------------------------------------------
    def record_submit(self, now: float | None = None) -> float:
        """Mark one request submitted; returns the timestamp used."""
        now = time.perf_counter() if now is None else now
        with self._lock:
            self._submitted += 1
            if self._first_submit is None:
                self._first_submit = now
        return now

    def record_batch(self, size: int) -> None:
        with self._lock:
            if len(self._batch_sizes) < self.max_samples:
                self._batch_sizes.append(size)

    def record_shed(self) -> None:
        """Mark one request rejected at admission (bounded queue full).

        Shed requests were never accepted, so they count in neither
        ``submitted`` nor ``failed`` — the completion-rate denominator
        stays "accepted requests", the chaos invariant's population.
        """
        with self._lock:
            self._shed += 1

    def record_done(
        self,
        latency: float,
        failed: bool = False,
        *,
        timed_out: bool = False,
        degraded: bool = False,
    ) -> None:
        """Mark one request finished ``latency`` seconds after its submit.

        ``timed_out`` marks a typed :class:`DeadlineExceeded` failure
        (implies ``failed``); ``degraded`` marks a *completed* request
        served by the greedy fallback instead of LP + rounding.
        """
        now = time.perf_counter()
        with self._lock:
            if timed_out:
                self._timeouts += 1
                self._failed += 1
            elif failed:
                self._failed += 1
            else:
                self._completed += 1
                if degraded:
                    self._degraded += 1
            if len(self._latencies) < self.max_samples:
                self._latencies.append(latency)
            self._last_done = now

    def counts(self) -> dict[str, int]:
        """Request counters only — cheap enough to poll per batch (the
        process-pool workers piggyback this on every reply, where a full
        :meth:`snapshot` would re-rank the latency reservoir each time)."""
        with self._lock:
            return {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "shed": self._shed,
                "timeouts": self._timeouts,
                "degraded": self._degraded,
            }

    # ------------------------------------------------------------------
    def snapshot(self, caches: dict[str, Any] | None = None) -> dict[str, Any]:
        """All metrics as a JSON-ready dict.

        ``caches`` maps cache names to stats dicts (the service passes its
        LRU caches' counters plus the structure-compile and warm-start
        stats) and is embedded verbatim under ``"caches"``.
        """
        with self._lock:
            latencies = np.asarray(self._latencies)
            batch_sizes = self._batch_sizes[:]
            span = None
            if self._first_submit is not None and self._last_done is not None:
                span = max(self._last_done - self._first_submit, 1e-12)
            out = {
                "requests_submitted": self._submitted,
                "requests_completed": self._completed,
                "requests_failed": self._failed,
                "requests_shed": self._shed,
                "requests_timed_out": self._timeouts,
                "requests_degraded": self._degraded,
                "wall_seconds": span,
                "throughput_rps": (self._completed / span) if span else None,
                "batches": len(batch_sizes),
                "mean_batch_size": (
                    float(np.mean(batch_sizes)) if batch_sizes else None
                ),
                "max_batch_size": max(batch_sizes) if batch_sizes else None,
            }
        if latencies.size:
            # exact order statistics (inverted CDF), not interpolation: with
            # fewer than 100 samples an interpolated "p99" manufactures a
            # value between the two slowest requests that nobody observed —
            # misleadingly below the true tail.  Every percentile reported
            # here is a latency that actually occurred, and ``samples`` says
            # how much data backs it (p99 of 20 samples is just the max).
            quantiles = np.percentile(latencies, _PERCENTILES, method="inverted_cdf")
            out["latency_seconds"] = {
                "mean": float(latencies.mean()),
                "p50": float(quantiles[0]),
                "p95": float(quantiles[1]),
                "p99": float(quantiles[2]),
                "max": float(latencies.max()),
                "samples": int(latencies.size),
            }
        else:
            out["latency_seconds"] = None
        if caches is not None:
            out["caches"] = caches
        return out

    def reset(self) -> None:
        with self._lock:
            self._latencies.clear()
            self._batch_sizes.clear()
            self._submitted = self._completed = self._failed = 0
            self._shed = self._timeouts = self._degraded = 0
            self._first_submit = self._last_done = None
