"""Multi-process shard pool: worker processes that outlive the GIL ceiling.

The thread-shard executor of :class:`~repro.service.AuctionService` tops
out near 1x on distinct-heavy traffic: every shard shares one GIL, and a
distinct request's cost is almost entirely Python + NumPy solve work that
never releases it for long.  :class:`ProcessShardPool` replaces the shard
threads with a pool of **long-lived worker processes**, each owning the
full per-shard solver state:

* its own persistent HiGHS backend (per-process ``threading.local``, warm
  bases included),
* its own LRU caches of compiled structures / compiled auctions /
  prepared mechanism outcomes,
* its own worker-side :class:`~repro.service.AuctionService` running the
  *identical* synchronous ``solve_batch`` code path the in-process
  executors use — which is what makes pool results bit-identical to the
  serial path for seeded requests (pinned by the placement-invariance
  tests).

Design points, mirroring the request-stream framing of the paper's
secondary-spectrum setting (scenes are stable, valuations churn):

**Pickle-once scene shipping.**  Workers are spawned with a snapshot of
the registry, and any scene registered later crosses the pipe at most
once per worker — the parent tracks a per-worker ``shipped`` set and
sends ``("scene", id, structure)`` only on first use.  Requests
themselves carry only valuations + a seed.

**Affinity routing with spill.**  A scene's *home* worker is
``hash(scene_id) % workers``, so repeat traffic keeps hitting the worker
whose caches and warm LP bases already hold that scene.  When the home
worker is busier than the least-loaded one, the batch spills to the
least-loaded worker instead (deterministic scan from the home index):
distinct-heavy traffic on one hot scene — the workload this pool exists
for — then spreads across all workers instead of serializing behind the
scene's home shard.  Spilling never changes results, only which process
computes them.

**Crash recovery.**  Each worker conversation is strictly
send-batch/receive-results, so a dead worker surfaces as ``EOFError`` on
the pipe.  The owning parent thread respawns the worker (fresh
generation, fresh registry snapshot) and retries the in-flight batch up
to ``max_retries`` times before failing its futures with
:class:`WorkerCrashError`; later batches queued behind it are unaffected.
Respawns back off exponentially (``respawn_backoff`` doubling per
consecutive crash, capped at ``backoff_cap``), and a slot that crashes
more than ``respawn_limit`` times in a row trips a per-worker **circuit
breaker**: the slot is abandoned, routing and queued jobs move to the
remaining workers, and after ``breaker_cooldown`` seconds a single
half-open probe incarnation may close the breaker again.  Fault
injection at the worker sites (crash, slow batch, spawn failure) is
driven by the parent service's :class:`~repro.service.faults.FaultPlan`,
shipped in ``worker_config``.

**Stray-process guard.**  Workers are daemonic *and* every started pool
registers its ``close`` with :mod:`atexit`, so examples and tests that
forget to close a service still terminate their workers at interpreter
exit.  ``close`` drains queued jobs, asks each worker to exit, and
escalates to ``terminate``/``kill`` on a bounded timeout.

IPC accounting (bytes each way, serialization seconds, scenes shipped,
restarts, retries) is exposed through :meth:`ProcessShardPool.stats` and
lands in the service's metrics snapshot under ``"pool"``.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.util.mp import mp_context

if TYPE_CHECKING:
    from repro.core.result import SolverResult
    from repro.service.scenes import AnyStructure, SceneRegistry
    from repro.service.service import AuctionRequest, AuctionService

__all__ = ["ProcessShardPool", "WorkerCrashError"]


class WorkerCrashError(RuntimeError):
    """A worker process died while (or before) computing a batch."""


# ----------------------------------------------------------------------
# worker process side
# ----------------------------------------------------------------------
def _pool_worker_main(  # pragma: no cover - runs in worker processes
    conn: Any, scenes: dict[str, AnyStructure], config: dict[str, Any], generation: int
) -> None:
    """Entry point of one worker process.

    ``scenes`` is the registry snapshot taken at spawn; ``config`` holds
    the cache/pricing configuration of the parent service so the worker's
    private :class:`AuctionService` solves exactly as the in-process path
    would — including an armed copy of the parent's
    :class:`~repro.service.faults.FaultPlan`, whose worker sites
    (``"pool.worker.spawn"``, ``"pool.worker.batch"``) this loop
    evaluates itself.  ``generation`` counts respawns of this worker slot
    — generation-scoped crash faults compare against it so a plan can
    crash incarnation 0 and let incarnation 1 serve the retry.
    """
    import repro.engine.highs  # noqa: F401 - registers its fork-reset hook
    from repro.service.faults import legacy_crash_fires
    from repro.service.service import AuctionService
    from repro.util.mp import run_fork_resets

    # under a fork-based start method the child inherits the forking
    # thread's persistent native-handle state (HiGHS loaded model,
    # warm-start key); warm-starting against a model loaded in another
    # process's life would be wrong, so every registered thread-local is
    # reset before the first solve — and the HiGHS hook is *required*:
    # a missing registration fails here, at spawn, not as a wrong solve
    run_fork_resets(require=("repro.engine.highs",))
    plan = config.get("fault_plan")
    if plan is not None and plan.fires("pool.worker.spawn", generation=generation):
        os._exit(4)  # injected spawn failure: die before serving anything
    service = AuctionService(
        executor="serial",
        coalesce_window=0.0,
        adaptive_coalescing=False,
        **config,
    )
    for structure in scenes.values():
        service.registry.register(structure)
    try:
        while True:
            message = pickle.loads(conn.recv_bytes())
            kind = message[0]
            if kind == "close":
                conn.send_bytes(pickle.dumps(("closed",)))
                return
            if kind == "scene":
                # content-hash ids are stable across pickling, so the
                # worker-side id equals the parent's (asserted cheaply)
                scene_id = service.registry.register(message[2])
                if scene_id != message[1]:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"scene {message[1]} re-hashed to {scene_id} in worker"
                    )
                continue
            _, job_id, requests = message
            # deprecated metadata["_crash_worker"] hook, shimmed via faults
            crash = legacy_crash_fires(requests, generation)
            slow = 0.0
            if plan is not None:
                key = requests[0].seed if requests else None
                for spec in plan.actions(
                    "pool.worker.batch", generation=generation, key=key
                ):
                    if spec.kind == "crash":
                        crash = True
                    else:
                        slow += spec.delay
            if crash:
                os._exit(3)
            if slow > 0:  # slow-worker brownout: the parent just sees latency
                time.sleep(slow)
            try:
                results = service.solve_batch(requests)
                reply = ("done", job_id, results, _worker_stats(service, generation))
            except BaseException as exc:  # noqa: BLE001  # repro: allow[silent-except] -- shipped to the parent as an error reply
                reply = ("error", job_id, f"{type(exc).__name__}: {exc}")
            conn.send_bytes(pickle.dumps(reply))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # repro: allow[silent-except] -- parent went away; nothing left to tell
        pass


def _worker_stats(
    service: AuctionService, generation: int
) -> dict[str, Any]:  # pragma: no cover - worker side
    """The per-worker accounting piggybacked on every ``done`` reply."""
    return {
        "pid": os.getpid(),
        "generation": generation,
        "requests": service.metrics.counts()["completed"],
        "caches": service.cache_stats(),
    }


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
_CLOSE = object()  # sentinel on a worker's job queue


@dataclass
class _Job:
    scene_id: str
    requests: list[AuctionRequest]
    future: Future[list[SolverResult]]
    attempts: int = 0


@dataclass
class _WorkerHandle:
    """Parent-side state of one worker slot (process + its feeder thread).

    ``process``/``conn``/``jobs`` are owned by the slot's feeder thread
    (and ``_spawn_locked``); everything a concurrent ``stats()`` reads is
    guarded by the pool's ``_lock``.
    """

    index: int
    process: Any = None
    conn: Any = None
    generation: int = 0  #: guarded-by: _lock
    shipped: set[str] = field(default_factory=set)  #: guarded-by: _lock
    jobs: queue.SimpleQueue[Any] = field(default_factory=queue.SimpleQueue)
    outstanding: int = 0  #: guarded-by: _lock
    job_counter: int = 0  #: guarded-by: _lock
    # accounting
    jobs_done: int = 0  #: guarded-by: _lock
    scenes_shipped: int = 0  #: guarded-by: _lock
    bytes_sent: int = 0  #: guarded-by: _lock
    bytes_received: int = 0  #: guarded-by: _lock
    ipc_seconds: float = 0.0  #: guarded-by: _lock
    restarts: int = 0  #: guarded-by: _lock
    # circuit breaker: crashes since the last success; when it exceeds the
    # respawn limit the slot trips (process = None, breaker_until set) and
    # jobs route around it until the cooldown elapses (half-open probe)
    consecutive_failures: int = 0  #: guarded-by: _lock
    breaker_until: float | None = None  #: guarded-by: _lock
    breaker_trips: int = 0  #: guarded-by: _lock
    last_stats: dict[str, Any] = field(default_factory=dict)  #: guarded-by: _lock


class ProcessShardPool:
    """A pool of long-lived solver processes with scene affinity.

    ``registry`` is shared with the owning service: scenes are snapshotted
    into workers at spawn and shipped lazily afterwards.  ``worker_config``
    is forwarded to each worker's private ``AuctionService`` (cache sizes,
    pricing, rounding attempts, warm-start flag), so the pool solves with
    exactly the configuration of the in-process path.
    """

    def __init__(
        self,
        registry: SceneRegistry,
        num_workers: int,
        *,
        worker_config: dict[str, Any] | None = None,
        start_method: str = "auto",
        max_retries: int = 1,
        spill: bool = True,
        close_timeout: float = 5.0,
        respawn_limit: int = 5,
        respawn_backoff: float = 0.05,
        backoff_cap: float = 2.0,
        breaker_cooldown: float = 30.0,
    ) -> None:
        """``respawn_limit`` bounds *consecutive* crashes of one worker
        slot (the counter resets on any successful batch); beyond it the
        slot's circuit breaker trips: no further respawns, jobs route
        around it, and after ``breaker_cooldown`` seconds one half-open
        probe incarnation is allowed (a single failure re-trips).  Each
        respawn waits ``respawn_backoff * 2**(failures-1)`` seconds,
        capped at ``backoff_cap`` — a worker crashing at spawn burns
        through its budget in bounded time instead of respawn-storming."""
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if respawn_limit < 0:
            raise ValueError("respawn_limit must be non-negative")
        if respawn_backoff < 0 or backoff_cap < 0 or breaker_cooldown < 0:
            raise ValueError("backoff/cooldown settings must be non-negative")
        self.registry = registry
        self.num_workers = num_workers
        self.worker_config = dict(worker_config or {})
        self.max_retries = max_retries
        self.spill = spill
        self.close_timeout = close_timeout
        self.respawn_limit = respawn_limit
        self.respawn_backoff = respawn_backoff
        self.backoff_cap = backoff_cap
        self.breaker_cooldown = breaker_cooldown
        self._ctx = mp_context(start_method)
        self.start_method = self._ctx.get_start_method()
        self._lock = threading.Lock()
        self._workers = [_WorkerHandle(index=i) for i in range(num_workers)]
        self._threads: list[threading.Thread] = []
        self._started = False  #: guarded-by: _lock
        self._closed = False  #: guarded-by: _lock
        self._restarts = 0  #: guarded-by: _lock
        self._retried_batches = 0  #: guarded-by: _lock
        self._failed_batches = 0  #: guarded-by: _lock
        self._rerouted_batches = 0  #: guarded-by: _lock

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ProcessShardPool":
        with self._lock:
            if self._started:
                return self
            self._started = True
            for handle in self._workers:
                self._spawn_locked(handle)
            self._threads = [
                threading.Thread(
                    target=self._serve,
                    args=(handle,),
                    name=f"auction-pool-feeder-{handle.index}",
                    daemon=True,
                )
                for handle in self._workers
            ]
            for thread in self._threads:
                thread.start()
        # stray-process guard: a leaked pool still reaps its workers at exit
        atexit.register(self.close)
        return self

    def _spawn_locked(self, handle: _WorkerHandle) -> None:
        """(Re)start one worker slot; caller holds ``_lock`` or owns the slot."""
        scenes = self.registry.snapshot()
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, scenes, self.worker_config, handle.generation),
            name=f"auction-pool-worker-{handle.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.shipped = set(scenes)  # the spawn snapshot never re-ships

    def close(self) -> None:
        """Drain queued jobs, stop every worker, join the feeder threads.

        Idempotent and registered with :mod:`atexit`.  Jobs already queued
        are completed (the close sentinel sits behind them); submitting
        after close raises.
        """
        with self._lock:
            if self._closed or not self._started:
                self._closed = True
                return
            self._closed = True
        for handle in self._workers:
            handle.jobs.put(_CLOSE)
        for thread in self._threads:
            thread.join()
        atexit.unregister(self.close)

    def __enter__(self) -> "ProcessShardPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission and routing
    # ------------------------------------------------------------------
    def home_of(self, scene_id: str) -> int:
        return int(scene_id, 16) % self.num_workers

    def _breaker_open_locked(self, handle: _WorkerHandle) -> bool:
        """Is this slot's circuit breaker open right now (not routable)?

        A tripped slot holds no process; once its cooldown elapses the
        breaker reads closed again, routing resumes, and the slot's feeder
        revives it as a half-open probe on the next job.
        """
        return (
            handle.process is None
            and handle.breaker_until is not None
            and time.monotonic() < handle.breaker_until
        )

    def _route_locked(self, scene_id: str) -> _WorkerHandle:
        """Home worker unless it is strictly busier than the idlest one or
        its breaker is open (load reads require the caller to hold
        ``_lock``)."""
        home = self.home_of(scene_id)
        open_ = [self._breaker_open_locked(w) for w in self._workers]
        if all(open_):
            # nothing routable: queue on home anyway — its feeder fails
            # the job typed (or revives the slot if the cooldown elapsed)
            return self._workers[home]
        if (not self.spill or self.num_workers == 1) and not open_[home]:
            return self._workers[home]
        loads = [
            float("inf") if open_[i] else w.outstanding
            for i, w in enumerate(self._workers)
        ]
        if loads[home] <= min(loads):
            return self._workers[home]
        # deterministic scan from the home index keeps ties stable
        best = min(
            range(self.num_workers),
            key=lambda i: (loads[(home + i) % self.num_workers], i),
        )
        return self._workers[(home + best) % self.num_workers]

    def submit(
        self, scene_id: str, requests: list[AuctionRequest]
    ) -> Future[list[SolverResult]]:
        """Queue one scene-group batch; resolves to its result list."""
        future: Future[list[SolverResult]] = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("process pool is closed")
            if not self._started:
                raise RuntimeError("process pool is not started")
            handle = self._route_locked(scene_id)
            handle.outstanding += 1
        handle.jobs.put(_Job(scene_id, requests, future))
        return future

    # ------------------------------------------------------------------
    # per-worker feeder thread
    # ------------------------------------------------------------------
    def _serve(self, handle: _WorkerHandle) -> None:
        while True:
            job = handle.jobs.get()
            if job is _CLOSE:
                self._shutdown_worker(handle)
                return
            try:
                self._run_job(handle, job)
            except BaseException as exc:  # noqa: BLE001 - never kill the feeder
                job.future.set_exception(exc)
            finally:
                with self._lock:
                    handle.outstanding -= 1

    def _slot_ready(self, handle: _WorkerHandle) -> bool:
        """True when the slot holds a process to talk to, reviving a
        tripped breaker whose cooldown elapsed (half-open probe).

        The probe incarnation starts with its failure budget spent down to
        the limit, so a single crash re-trips the breaker immediately.
        """
        with self._lock:
            if handle.process is not None:
                return True
            if self._breaker_open_locked(handle):
                return False
            handle.consecutive_failures = self.respawn_limit
            handle.breaker_until = None
            handle.generation += 1
            handle.restarts += 1
            self._restarts += 1
            self._spawn_locked(handle)
            return True

    def _reroute_or_fail(self, handle: _WorkerHandle, job: _Job) -> None:
        """Hand a job on a broken slot to the idlest routable worker, or
        fail it typed when every other slot's breaker is open too."""
        with self._lock:
            candidates = [
                w
                for w in self._workers
                if w is not handle and not self._breaker_open_locked(w)
            ]
            target = (
                min(candidates, key=lambda w: (w.outstanding, w.index))
                if candidates
                else None
            )
            if target is not None:
                target.outstanding += 1
                self._rerouted_batches += 1
            else:
                self._failed_batches += 1
        if target is None:
            job.future.set_exception(
                WorkerCrashError(
                    f"worker {handle.index} circuit breaker open and no "
                    f"routable worker left"
                )
            )
            return
        target.jobs.put(job)

    def _run_job(self, handle: _WorkerHandle, job: _Job) -> None:
        while True:
            if not self._slot_ready(handle):
                self._reroute_or_fail(handle, job)
                return
            try:
                results, stats = self._roundtrip(handle, job)
            except WorkerCrashError as exc:
                respawned = self._respawn(handle)
                if job.attempts < self.max_retries:
                    job.attempts += 1
                    with self._lock:
                        self._retried_batches += 1
                    if respawned:
                        continue  # retry the batch on the fresh worker
                    self._reroute_or_fail(handle, job)
                    return
                with self._lock:
                    self._failed_batches += 1
                job.future.set_exception(exc)
                return
            with self._lock:
                handle.jobs_done += 1
                handle.last_stats = stats
                # any completed batch closes the crash streak
                handle.consecutive_failures = 0
                handle.breaker_until = None
            job.future.set_result(results)
            return

    def _roundtrip(
        self, handle: _WorkerHandle, job: _Job
    ) -> tuple[list[SolverResult], dict[str, Any]]:
        """Ship (scene if new +) batch, block for the reply, account IPC."""
        try:
            with self._lock:
                ship = job.scene_id not in handle.shipped
            if ship:
                self._send(
                    handle,
                    ("scene", job.scene_id, self.registry.get(job.scene_id)),
                )
                with self._lock:
                    handle.shipped.add(job.scene_id)
                    handle.scenes_shipped += 1
            with self._lock:
                handle.job_counter += 1
                sent_job_id = handle.job_counter
            self._send(handle, ("solve", sent_job_id, job.requests))
            payload = handle.conn.recv_bytes()  # blocks while the worker solves
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            with self._lock:
                generation = handle.generation
            raise WorkerCrashError(
                f"worker {handle.index} (pid {getattr(handle.process, 'pid', '?')}, "
                f"generation {generation}) died mid-batch"
            ) from exc
        t0 = time.perf_counter()
        reply = pickle.loads(payload)
        decode_seconds = time.perf_counter() - t0
        with self._lock:
            handle.bytes_received += len(payload)
            handle.ipc_seconds += decode_seconds
        if reply[0] == "error":
            raise RuntimeError(f"worker {handle.index}: {reply[2]}")
        kind, job_id, results, stats = reply
        if job_id != sent_job_id:  # pragma: no cover - protocol bug
            raise RuntimeError(
                f"worker {handle.index} answered job {job_id}, "
                f"expected {sent_job_id}"
            )
        return results, stats

    def _send(self, handle: _WorkerHandle, message: tuple[Any, ...]) -> None:
        t0 = time.perf_counter()
        payload = pickle.dumps(message)
        handle.conn.send_bytes(payload)
        pipe_seconds = time.perf_counter() - t0
        with self._lock:
            handle.bytes_sent += len(payload)
            handle.ipc_seconds += pipe_seconds

    def _respawn(self, handle: _WorkerHandle) -> bool:
        """Replace a dead worker; its pickle-once state starts over.

        Returns ``False`` when the slot's consecutive-crash budget is
        exhausted: the circuit breaker trips instead of respawning, and
        the slot stays empty until its cooldown elapses.  Successful
        respawns back off exponentially (outside the lock — other slots
        keep serving) so a crash-at-spawn worker cannot respawn-storm.
        """
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover  # repro: allow[silent-except] -- pipe already gone; the crash is handled by the caller
            pass
        if handle.process.is_alive():  # crashed pipe, live process: reap it
            handle.process.terminate()
        handle.process.join(self.close_timeout)
        with self._lock:
            handle.consecutive_failures += 1
            failures = handle.consecutive_failures
            if failures > self.respawn_limit:
                handle.breaker_trips += 1
                handle.breaker_until = time.monotonic() + self.breaker_cooldown
                handle.process = None
                handle.conn = None
                return False
        delay = min(self.respawn_backoff * 2 ** (failures - 1), self.backoff_cap)
        if delay > 0:
            time.sleep(delay)
        with self._lock:
            handle.generation += 1
            handle.restarts += 1
            handle.job_counter = 0
            self._restarts += 1
            self._spawn_locked(handle)
        return True

    def _shutdown_worker(self, handle: _WorkerHandle) -> None:
        process, conn = handle.process, handle.conn
        if process is None:  # breaker-tripped slot: nothing to stop
            return
        try:
            self._send(handle, ("close",))
            if conn.poll(self.close_timeout):
                conn.recv_bytes()  # ("closed",) acknowledgement
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError):  # repro: allow[silent-except] -- already dead; joining below is all that is left
            pass
        process.join(self.close_timeout)
        if process.is_alive():  # pragma: no cover - stuck worker escalation
            process.terminate()
            process.join(1.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        conn.close()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def alive(self) -> list[bool]:
        return [
            w.process is not None and w.process.is_alive() for w in self._workers
        ]

    def healthy(self) -> bool:
        """Every worker slot holds a live process (no tripped breakers,
        no undetected deaths) — the chaos runner's end-state invariant."""
        return all(self.alive())

    def stats(self) -> dict[str, Any]:
        """Pool-level + per-worker accounting for the metrics snapshot."""
        with self._lock:
            workers = [
                {
                    "index": w.index,
                    "pid": getattr(w.process, "pid", None),
                    "alive": w.process is not None and w.process.is_alive(),
                    "generation": w.generation,
                    "restarts": w.restarts,
                    "consecutive_failures": w.consecutive_failures,
                    "breaker_open": self._breaker_open_locked(w),
                    "breaker_trips": w.breaker_trips,
                    "jobs": w.jobs_done,
                    "outstanding": w.outstanding,
                    "scenes_held": len(w.shipped),
                    "scenes_shipped": w.scenes_shipped,
                    "ipc_bytes_sent": w.bytes_sent,
                    "ipc_bytes_received": w.bytes_received,
                    "ipc_seconds": w.ipc_seconds,
                    "worker_stats": w.last_stats,
                }
                for w in self._workers
            ]
            return {
                "num_workers": self.num_workers,
                "start_method": self.start_method,
                "cores": os.cpu_count(),
                "restarts": self._restarts,
                "retried_batches": self._retried_batches,
                "failed_batches": self._failed_batches,
                "rerouted_batches": self._rerouted_batches,
                "breaker_trips": sum(w["breaker_trips"] for w in workers),
                "healthy": all(w["alive"] for w in workers),
                "ipc_bytes_sent": sum(w["ipc_bytes_sent"] for w in workers),
                "ipc_bytes_received": sum(w["ipc_bytes_received"] for w in workers),
                "ipc_seconds": sum(w["ipc_seconds"] for w in workers),
                "scenes_shipped": sum(w["scenes_shipped"] for w in workers),
                "workers": workers,
            }
