"""Versioned wire schema for the auction service (`schema_version` 1).

This module is the single source of truth for what crosses the network
boundary: the request/response dataclasses shared by the in-process
:class:`~repro.service.AuctionService`, the HTTP gateway
(:mod:`repro.service.gateway`), and the asyncio client
(:mod:`repro.service.client`).  Everything here is plain data with
explicit ``to_wire``/``from_wire`` (dict) and ``to_json``/``from_json``
(string) forms, and every payload carries ``schema_version`` so a
client and server disagreeing about the schema fail loudly instead of
misparsing each other.

Design rules, in decreasing order of importance:

* **Round trips are bit-exact.**  ``from_json(to_json(x)) == x`` for
  every request, response, and typed error — floats survive through
  ``repr`` (Python's JSON encoder), non-finite floats are encoded as
  the strings ``"inf"``/``"-inf"``/``"nan"``, and valuation *bid order*
  is preserved (LP column order follows it; a sorted re-encoding can
  round a degenerate LP to a different, equally optimal allocation).
  Replaying a recorded trace through the gateway therefore yields
  results bit-identical to an in-process replay.
* **Key order is load order.**  Nothing here sorts keys; the canonical
  sorted encoder lives in :mod:`repro.io` only.  Decoding is, however,
  insensitive to key order, so payloads re-serialized by a client with
  ``sort_keys=True`` still decode identically (pinned by the wire
  tests).
* **Errors are part of the schema.**  Every typed failure the service
  can resolve a request with (:mod:`repro.service.errors` plus
  :class:`~repro.service.pool.WorkerCrashError`) has a stable
  ``error_code``, maps to a distinct HTTP status, and reconstructs to
  the same exception type on the client — the fault-tolerance contract
  of PR 8 survives the network boundary unchanged.
* **Versioning policy.**  ``schema_version`` is bumped on any change
  that an old decoder would misread (field removal, meaning change);
  purely additive fields keep the version and must be optional on
  decode.  Decoders reject payloads whose version they do not know.

:class:`AuctionResponse` — a :class:`~repro.core.result.SolverResult`
subclass carrying the wire envelope (schema version, scene id, request
seed, per-request timing) — is the canonical result of the service's
``solve_batch``/gateway paths.

Every request also carries an **idempotency key**: a stable string
naming the logical request, derived by :func:`default_idempotency_key`
from ``(scene_id, k, seed, mode, profile)`` unless the caller supplies
its own.  The gateway journals completed responses under this key, so a
request retried after a lost response returns the journaled bytes
instead of re-solving — exactly-once results under at-least-once
delivery (DESIGN.md → "Resilient edge").  The field is additive and
optional on decode, so ``schema_version`` stays 1.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.result import SolverResult
from repro.io import _valuation_from_dict, _valuation_to_dict
from repro.service.errors import (
    DeadlineExceeded,
    InjectedFaultError,
    ServiceFaultError,
    ShedError,
)
from repro.service.pool import WorkerCrashError
from repro.valuations.explicit import ExplicitValuation, XORValuation

if TYPE_CHECKING:
    from repro.valuations.base import Valuation

__all__ = [
    "SCHEMA_VERSION",
    "WIRE_ERROR_CODES",
    "AuctionRequest",
    "AuctionResponse",
    "encode_valuation",
    "decode_valuation",
    "default_idempotency_key",
    "request_to_wire",
    "request_from_wire",
    "error_to_wire",
    "error_from_wire",
    "http_status_for",
]

SCHEMA_VERSION = 1


def _check_version(data: dict[str, Any], what: str) -> None:
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {what} schema_version {version!r} "
            f"(this build speaks {SCHEMA_VERSION})"
        )


# ----------------------------------------------------------------------
# floats: exact, JSON-strict
# ----------------------------------------------------------------------
def _encode_float(value: float) -> float | str:
    """A float as strict JSON: finite values pass through (``repr`` round
    trips them exactly), non-finite ones become strings — Python's
    encoder would emit bare ``Infinity``, which other JSON parsers
    reject."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if math.isnan(value):
        return "nan"
    return float(value)


def _decode_float(value: Any) -> float:
    return float(value)  # float("inf"/"-inf"/"nan") parses the sentinels


# ----------------------------------------------------------------------
# valuations: order-preserving encoding
# ----------------------------------------------------------------------
def encode_valuation(v: Valuation) -> dict[str, Any]:
    """Like :func:`repro.io._valuation_to_dict` but order-preserving.

    The io layer canonicalizes explicit-style bids by sorting them;
    the wire must keep the original bid order instead, because LP
    column order follows it and a reordered (degenerate) LP can round
    to a different — equally optimal — allocation.  Preserving order
    keeps gateway replays bit-identical to in-process runs.  Exact type
    checks: subclasses (``SingleMindedValuation``: one bid, so
    order-trivial) keep their own io encoding and round-trip to their
    own type.
    """
    if type(v) in (XORValuation, ExplicitValuation):
        return {
            "type": "xor" if type(v) is XORValuation else "explicit",
            "k": v.k,
            "bids": [[sorted(bundle), value] for bundle, value in v.bids.items()],
        }
    return _valuation_to_dict(v)


def decode_valuation(data: dict[str, Any]) -> Valuation:
    """Inverse of :func:`encode_valuation` (io-layer schema superset)."""
    return _valuation_from_dict(data)


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
@dataclass
class AuctionRequest:
    """One request against a registered scene.

    ``mode`` selects the pipeline: ``"allocate"`` runs the approximation
    algorithm (LP + randomized rounding) and resolves to an
    :class:`AuctionResponse`; ``"truthful"`` runs the Section 5
    truthful-in-expectation mechanism — Lavi–Swamy decomposition plus
    scaled fractional VCG payments — and resolves to a
    :class:`~repro.mechanism.truthful.MechanismOutcome` whose
    ``sampled_allocation`` is drawn with this request's ``seed``.

    ``profile_key`` declares that this exact valuation profile may recur
    (license renewals, mechanism re-pricing probes): allocate requests
    sharing ``(scene_id, k, profile_key)`` share one compiled auction and
    one LP solve through the service's problem cache, and truthful
    requests share one *prepared decomposition + payments* through the
    mechanism cache (each request then only pays for sampling).  ``None``
    marks the profile as one-off — nothing is cached beyond the scene's
    compiled structure.  ``seed`` drives the rounding/sampling RNG; fixing
    it makes the request's outcome reproducible bit-for-bit and
    independent of how requests were coalesced.

    ``deadline`` is a latency budget in seconds from submission (queued
    path only; ``None`` = unbounded).  An accepted request whose budget
    expires before dispatch fails typed with
    :class:`~repro.service.errors.DeadlineExceeded`; one whose remaining
    budget cannot fit an LP solve is served by the greedy baseline
    instead, with ``details["degraded"]`` set on the result.  Over the
    gateway the budget arrives in the request body or the
    ``X-Auction-Deadline`` header (the header wins) and is enforced by
    the same server-side EWMA triage.

    ``idempotency_key`` names the *logical* request for the gateway's
    result journal: two submissions carrying the same key are the same
    request, and the second returns the first's journaled response
    byte-identically instead of re-solving.  ``None`` (the default)
    means "derive it" — the gateway falls back to
    :func:`default_idempotency_key`, which is correct whenever the
    request is fully determined by ``(scene, k, seed, mode, profile)``.
    Callers whose requests differ in ways the derivation cannot see
    (same seed + profile, different meaning) must supply their own key.
    """

    scene_id: str
    k: int
    valuations: list[Valuation]
    seed: int | None = None
    profile_key: str | None = None
    mode: str = "allocate"
    deadline: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)
    idempotency_key: str | None = None


def default_idempotency_key(request: AuctionRequest) -> str:
    """The derived idempotency key: a digest of what determines the result.

    Hashes ``(scene_id, k, seed, mode, profile_key)`` — the coordinates
    that pin a request's outcome bit-for-bit (the engine is
    deterministic given scene, valuations, and seed).  When
    ``profile_key`` is ``None`` the valuations are not named by any
    coordinate, so their order-preserving wire encoding is folded into
    the digest instead — two distinct one-off profiles sharing a seed
    must not collide.  Deadlines and metadata are deliberately excluded:
    they change *how* the request is served, never *what* the result is.
    """
    material: list[Any] = [
        request.scene_id,
        request.k,
        request.seed,
        request.mode,
        request.profile_key,
    ]
    if request.profile_key is None:
        material.append([encode_valuation(v) for v in request.valuations])
    digest = hashlib.sha256(json.dumps(material).encode("utf-8")).hexdigest()
    return digest[:32]


def request_to_wire(request: AuctionRequest) -> dict[str, Any]:
    """An :class:`AuctionRequest` as a wire dict (bid order preserved)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "scene_id": request.scene_id,
        "k": request.k,
        "valuations": [encode_valuation(v) for v in request.valuations],
        "seed": request.seed,
        "profile_key": request.profile_key,
        "mode": request.mode,
        "deadline": request.deadline,
        "metadata": dict(request.metadata),
        "idempotency_key": request.idempotency_key,
    }


def request_from_wire(data: dict[str, Any]) -> AuctionRequest:
    """Decode a wire dict; rejects unknown schema versions."""
    _check_version(data, "request")
    return AuctionRequest(
        scene_id=str(data["scene_id"]),
        k=int(data["k"]),
        valuations=[decode_valuation(v) for v in data["valuations"]],
        seed=None if data.get("seed") is None else int(data["seed"]),
        profile_key=data.get("profile_key"),
        mode=str(data.get("mode", "allocate")),
        deadline=(
            None if data.get("deadline") is None else float(data["deadline"])
        ),
        metadata=dict(data.get("metadata") or {}),
        idempotency_key=(
            None
            if data.get("idempotency_key") is None
            else str(data["idempotency_key"])
        ),
    )


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
@dataclass
class AuctionResponse(SolverResult):
    """The canonical result of the service's allocate paths.

    A :class:`~repro.core.result.SolverResult` (so every existing caller
    keeps working unchanged) extended with the wire envelope: the schema
    version, which scene and seed produced it, and per-request timing.
    ``timing`` is excluded from equality — two runs of the same request
    are *the same result* even though their latencies differ — which is
    what lets the chaos runner compare gateway results against an
    in-process replay with ``==`` semantics on the payload fields.
    """

    schema_version: int = SCHEMA_VERSION
    scene_id: str | None = None
    seed: int | None = None
    timing: dict[str, float] = field(default_factory=dict, compare=False)

    @classmethod
    def from_result(
        cls,
        result: SolverResult,
        *,
        scene_id: str | None = None,
        seed: int | None = None,
        timing: dict[str, float] | None = None,
    ) -> "AuctionResponse":
        """Wrap a bare :class:`SolverResult` into the wire envelope."""
        if isinstance(result, AuctionResponse):
            merged = dict(result.timing)
            merged.update(timing or {})
            result.scene_id = result.scene_id or scene_id
            result.seed = result.seed if result.seed is not None else seed
            result.timing = merged
            return result
        return cls(
            allocation=result.allocation,
            welfare=result.welfare,
            lp_value=result.lp_value,
            feasible=result.feasible,
            guarantee=result.guarantee,
            rounds_algorithm3=result.rounds_algorithm3,
            lp_iterations=result.lp_iterations,
            channel_powers=result.channel_powers,
            sinr_feasible=result.sinr_feasible,
            details=result.details,
            scene_id=scene_id,
            seed=seed,
            timing=dict(timing or {}),
        )

    # ------------------------------------------------------------------
    # wire forms
    # ------------------------------------------------------------------
    def to_wire(self) -> dict[str, Any]:
        """This response as a JSON-native dict (``status: "ok"``).

        The allocation is encoded vertex-sorted — dict equality is
        order-insensitive, so the round trip stays exact while the
        encoding stays deterministic.
        """
        return {
            "schema_version": self.schema_version,
            "status": "ok",
            "scene_id": self.scene_id,
            "seed": self.seed,
            "allocation": [
                [v, sorted(bundle)] for v, bundle in sorted(self.allocation.items())
            ],
            "welfare": _encode_float(self.welfare),
            "lp_value": _encode_float(self.lp_value),
            "feasible": bool(self.feasible),
            "guarantee": _encode_float(self.guarantee),
            "rounds_algorithm3": int(self.rounds_algorithm3),
            "lp_iterations": int(self.lp_iterations),
            "channel_powers": {
                str(ch): [_encode_float(float(p)) for p in powers]
                for ch, powers in self.channel_powers.items()
            },
            "sinr_feasible": self.sinr_feasible,
            "details": dict(self.details),
            "timing": {name: float(t) for name, t in self.timing.items()},
        }

    @classmethod
    def from_wire(cls, data: dict[str, Any]) -> "AuctionResponse":
        """Decode a wire dict; rejects unknown schema versions."""
        _check_version(data, "response")
        if data.get("status") != "ok":
            raise ValueError(
                f"not a success response (status {data.get('status')!r}); "
                "use error_from_wire for error payloads"
            )
        return cls(
            allocation={
                int(v): frozenset(int(c) for c in bundle)
                for v, bundle in data["allocation"]
            },
            welfare=_decode_float(data["welfare"]),
            lp_value=_decode_float(data["lp_value"]),
            feasible=bool(data["feasible"]),
            guarantee=_decode_float(data["guarantee"]),
            rounds_algorithm3=int(data.get("rounds_algorithm3", 0)),
            lp_iterations=int(data.get("lp_iterations", 1)),
            channel_powers={
                int(ch): np.array([_decode_float(p) for p in powers])
                for ch, powers in (data.get("channel_powers") or {}).items()
            },
            sinr_feasible=data.get("sinr_feasible"),
            details=dict(data.get("details") or {}),
            scene_id=data.get("scene_id"),
            seed=None if data.get("seed") is None else int(data["seed"]),
            timing=dict(data.get("timing") or {}),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_wire())

    @classmethod
    def from_json(cls, payload: str) -> "AuctionResponse":
        return cls.from_wire(json.loads(payload))


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
# code -> (exception type, HTTP status); order matters for encoding —
# the first entry whose type matches exactly (then first subclass match)
# names the code, so subclasses never collapse into their base
WIRE_ERROR_CODES: dict[str, tuple[type[Exception], int]] = {
    "shed": (ShedError, 503),
    "deadline-exceeded": (DeadlineExceeded, 504),
    "injected-fault": (InjectedFaultError, 500),
    "worker-crash": (WorkerCrashError, 502),
    "service-fault": (ServiceFaultError, 500),
}

# request-shaped failures the gateway raises before anything is accepted
_GATEWAY_CODES: dict[str, int] = {
    "bad-request": 400,
    "unknown-scene": 404,
    "not-found": 404,
    "payload-too-large": 413,
    "header-too-large": 431,
    "internal": 500,
}


def error_to_wire(exc: BaseException) -> dict[str, Any]:
    """A typed failure as a wire dict (``status: "error"``).

    Exceptions outside the typed hierarchy encode as ``"internal"`` —
    they still cross the wire, but the code marks them as a bug rather
    than a serving fault, mirroring the chaos runner's
    ``typed_failures_only`` invariant.
    """
    code = "internal"
    for name, (exc_type, _) in WIRE_ERROR_CODES.items():
        if type(exc) is exc_type:
            code = name
            break
    else:
        for name, (exc_type, _) in WIRE_ERROR_CODES.items():
            if isinstance(exc, exc_type):
                code = name
                break
    return {
        "schema_version": SCHEMA_VERSION,
        "status": "error",
        "error_code": code,
        "message": str(exc),
    }


def error_from_wire(data: dict[str, Any]) -> Exception:
    """Reconstruct the typed exception an error payload describes.

    Codes from :data:`WIRE_ERROR_CODES` round-trip to their exact
    exception type; gateway-level codes (bad request, unknown scene)
    and unknown codes come back as :class:`ValueError`/:class:`KeyError`
    shaped to what the in-process API would have raised.
    """
    _check_version(data, "error")
    code = str(data.get("error_code", "internal"))
    message = str(data.get("message", ""))
    entry = WIRE_ERROR_CODES.get(code)
    if entry is not None:
        return entry[0](message)
    if code == "unknown-scene":
        return KeyError(message)
    if code in ("bad-request", "payload-too-large", "header-too-large"):
        return ValueError(message)
    return RuntimeError(f"[{code}] {message}")


def http_status_for(code: str) -> int:
    """The HTTP status a wire ``error_code`` maps to (500 if unknown)."""
    entry = WIRE_ERROR_CODES.get(code)
    if entry is not None:
        return entry[1]
    return _GATEWAY_CODES.get(code, 500)
