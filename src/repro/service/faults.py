"""Structured fault injection: named sites, declarative plans, seeded RNG.

PR 6 proved crash recovery with an ad-hoc ``metadata["_crash_worker"]``
hook buried in :mod:`repro.service.pool`.  This module replaces that with
a first-class subsystem: a :class:`FaultPlan` is a declarative list of
:class:`FaultSpec`\\ s naming *where* (an injection site), *what* (crash,
slow-solve latency, backend error, spawn failure), and *when* (worker
incarnation, Bernoulli probability, activation cap) a fault fires.  The
service and pool evaluate the plan at the registered sites; production
configurations simply carry no plan, so every hook is a cheap
``plan is None`` check.

**Site registry** (:data:`FAULT_SITES` — site name → kinds it supports):

* ``"service.solve"`` — evaluated in ``AuctionService._solve_scene_group``
  just before the engine runs, wherever that happens to be (the
  dispatcher thread, a shard thread, or a pool worker's private
  service).  ``"slow"`` sleeps ``delay`` seconds per fired request —
  a browning-out solver; ``"error"`` raises
  :class:`~repro.service.errors.InjectedFaultError` — a native backend
  failure, which (like a real one) fails the whole coalesced scene
  group, typed.
* ``"pool.worker.batch"`` — evaluated in the pool worker's receive loop
  before solving a batch.  ``"crash"`` hard-exits the worker process
  (the parent sees a dead pipe and runs crash recovery); ``"slow"``
  sleeps in the worker — a slow-worker brownout the parent cannot
  distinguish from a long solve.
* ``"pool.worker.spawn"`` — evaluated once at worker startup, before the
  worker's service is built.  ``"crash"`` exits immediately: a worker
  that *fails to spawn*, the respawn-storm scenario the pool's backoff
  cap and circuit breaker exist for.
* ``"gateway.accept"`` — evaluated in the gateway before a ``/v1/solve``
  request is admitted.  ``"refuse"`` closes the connection without a
  response — a partitioned or overloaded edge refusing whole
  connections, which only a retrying client survives.
* ``"gateway.response"`` — evaluated in the gateway *after* the solve
  completed and was journaled.  ``"drop"`` closes the connection before
  any response byte; ``"truncate"`` writes a header promising the full
  body and then cuts it mid-body.  Either way the client saw the
  request accepted and the response lost — the at-least-once delivery
  case the idempotency journal exists for.
* ``"client.connect"`` — evaluated in the client per solve attempt.
  ``"latency"`` sleeps ``delay`` before the exchange (a congested
  path); ``"reset"`` raises :class:`ConnectionResetError` — the
  connection died under the request.

**Determinism.**  Chaos runs must replay bit-identically, so every
probabilistic decision is drawn from RNG streams derived from the plan's
seed.  Sites evaluated with a ``key`` (the request seed at solve sites,
the batch head's seed at worker sites) draw *statelessly* from
``SeedSequence([seed, site, spec, key])`` — the decision depends only on
the plan and the request, never on batching, thread interleaving, or
which worker got the batch.  Network sites pass a *tuple* key
``(request seed, attempt ordinal)``: each entry extends the
``SeedSequence`` entropy, so a fault that fired on attempt 1 draws
fresh on attempt 2 — without the attempt in the key, a deterministic
drop would refire on every retry and the request could never be
served.  Sites evaluated without a key fall back to a per-spec counter
stream (deterministic per plan instance).  Plans pickle cleanly — each
pool worker arms its own copy — and serialize to plain dicts for the
scenario library's JSON format.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import numpy as np

__all__ = ["FAULT_SITES", "FaultKey", "FaultSpec", "FaultPlan", "legacy_crash_fires"]

# the registry of named injection sites and the fault kinds each supports
FAULT_SITES: dict[str, tuple[str, ...]] = {
    "service.solve": ("slow", "error"),
    "pool.worker.batch": ("crash", "slow"),
    "pool.worker.spawn": ("crash",),
    "gateway.accept": ("refuse",),
    "gateway.response": ("drop", "truncate"),
    "client.connect": ("latency", "reset"),
}

#: a ``key`` passed to :meth:`FaultPlan.actions` — a single request seed
#: or a (seed, attempt, ...) tuple for per-attempt network-site draws
FaultKey = int | tuple[int, ...]

_KEY_MASK = (1 << 63) - 1


def _site_token(site: str) -> int:
    """A stable 63-bit integer for a site name (feeds SeedSequence)."""
    digest = hashlib.sha256(site.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _KEY_MASK


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: site, kind, and its firing conditions.

    ``generations`` restricts worker-site faults to specific worker
    incarnations (``None`` = every incarnation) — the mechanism that lets
    a plan crash incarnation 0 and let the respawned incarnation 1 serve
    the retry.  ``probability`` is a seeded Bernoulli per evaluation;
    ``max_fires`` caps activations per armed plan instance (a worker's
    copy re-arms at respawn, so caps are per incarnation on worker
    sites).  ``delay`` is the injected latency of ``kind="slow"``.
    """

    site: str
    kind: str
    probability: float = 1.0
    delay: float = 0.0
    generations: tuple[int, ...] | None = None
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {sorted(FAULT_SITES)}"
            )
        if self.kind not in FAULT_SITES[self.site]:
            raise ValueError(
                f"site {self.site!r} supports kinds {FAULT_SITES[self.site]}, "
                f"got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be non-negative, got {self.max_fires}")
        if self.generations is not None:
            object.__setattr__(self, "generations", tuple(self.generations))

    def matches_generation(self, generation: int | None) -> bool:
        if self.generations is None or generation is None:
            return True
        return generation in self.generations

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
            "delay": self.delay,
            "generations": (
                None if self.generations is None else list(self.generations)
            ),
            "max_fires": self.max_fires,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        generations = data.get("generations")
        return cls(
            site=data["site"],
            kind=data["kind"],
            probability=float(data.get("probability", 1.0)),
            delay=float(data.get("delay", 0.0)),
            generations=None if generations is None else tuple(generations),
            max_fires=data.get("max_fires"),
        )


class FaultPlan:
    """An armed set of :class:`FaultSpec`\\ s evaluated at named sites.

    Evaluation is thread-safe (the service's solve sites run on shard
    threads) and deterministic from ``seed``: keyed evaluations are
    stateless, unkeyed ones consume per-spec counter streams.
    """

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._fired: dict[int, int] = {}  #: guarded-by: _lock
        self._streams: dict[int, np.random.Generator] = {}  #: guarded-by: _lock

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def actions(
        self, site: str, *, generation: int | None = None, key: FaultKey | None = None
    ) -> list[FaultSpec]:
        """Every spec that fires at ``site`` for this evaluation.

        ``generation`` filters worker-incarnation-scoped specs; ``key``
        (a request seed, or a ``(seed, attempt)`` tuple at network
        sites) selects the stateless draw so the decision is independent
        of batching and placement.
        """
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}")
        fired: list[FaultSpec] = []
        for index, spec in enumerate(self.specs):
            if spec.site != site or not spec.matches_generation(generation):
                continue
            if spec.probability < 1.0 and self._draw(index, site, key) >= spec.probability:
                continue
            if not self._consume_fire(index, spec):
                continue
            fired.append(spec)
        return fired

    def fires(
        self, site: str, *, generation: int | None = None, key: FaultKey | None = None
    ) -> FaultSpec | None:
        """The first spec firing at ``site``, or ``None``."""
        actions = self.actions(site, generation=generation, key=key)
        return actions[0] if actions else None

    def _draw(self, index: int, site: str, key: FaultKey | None) -> float:
        if key is not None:
            # a tuple key extends the entropy list entry-by-entry, so the
            # single-int form keeps its historical stream unchanged
            parts = key if isinstance(key, tuple) else (key,)
            seq = np.random.SeedSequence(
                [self.seed, _site_token(site), index]
                + [int(part) & _KEY_MASK for part in parts]
            )
            return float(np.random.default_rng(seq).random())
        with self._lock:
            stream = self._streams.get(index)
            if stream is None:
                seq = np.random.SeedSequence([self.seed, _site_token(site), index])
                stream = self._streams[index] = np.random.default_rng(seq)
            return float(stream.random())

    def _consume_fire(self, index: int, spec: FaultSpec) -> bool:
        with self._lock:
            count = self._fired.get(index, 0)
            if spec.max_fires is not None and count >= spec.max_fires:
                return False
            self._fired[index] = count + 1
            return True

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    def fired_counts(self) -> dict[str, int]:
        """Activations per ``site:kind`` since arming (for reports/tests)."""
        with self._lock:
            fired = dict(self._fired)
        out: dict[str, int] = {}
        for index, count in sorted(fired.items()):
            spec = self.specs[index]
            label = f"{spec.site}:{spec.kind}"
            out[label] = out.get(label, 0) + count
        return out

    def reset(self) -> None:
        """Re-arm: clear fire counts and counter streams."""
        with self._lock:
            self._fired.clear()
            self._streams.clear()

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    # ------------------------------------------------------------------
    # serialization (pickle for worker shipping, dicts for scenario JSON)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        # runtime state (lock, streams, fire counts) stays behind: a
        # shipped copy arms fresh, which is what per-incarnation caps mean
        return {"specs": self.specs, "seed": self.seed}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(state["specs"], seed=state["seed"])  # type: ignore[misc]

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        return cls(
            (FaultSpec.from_dict(entry) for entry in data.get("specs", [])),
            seed=int(data.get("seed", 0)),
        )

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, specs={list(self.specs)!r})"


def legacy_crash_fires(requests: Iterable[Any], generation: int) -> bool:
    """Deprecated ``metadata["_crash_worker"]`` hook, kept as a shim.

    The old PR 6 API: a request carrying ``metadata["_crash_worker"] = g``
    kills worker incarnation ``g`` (or every incarnation with
    ``"always"``).  It maps exactly onto
    ``FaultSpec(site="pool.worker.batch", kind="crash", generations=(g,))``
    — new code should build a :class:`FaultPlan`; this shim keeps old
    traces and tests working and is pinned by a deprecation test.
    """
    for request in requests:
        flag = getattr(request, "metadata", {}).get("_crash_worker")
        if flag == "always" or flag == generation:
            return True
    return False
