"""Minimal ASCII table rendering for experiment and benchmark reports.

The benchmark harness prints the same rows a paper table would contain; this
module keeps that output aligned and diff-friendly without pulling in any
formatting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["Table"]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """Accumulate rows and render an aligned ASCII table.

    Parameters
    ----------
    columns:
        Header names, one per column.
    precision:
        Number of decimal places used for floats.
    """

    def __init__(self, columns: Sequence[str], precision: int = 3) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.precision = precision
        self.rows: list[list[str]] = []

    def add_row(self, *values: object) -> None:
        """Append one row; the number of values must match the header."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(v, self.precision) for v in values])

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """Return the table as a string with a separator under the header."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()
