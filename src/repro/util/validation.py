"""Independent re-validation of allocations against the original model.

Algorithms in :mod:`repro.core` never certify their own output; tests and the
solver facade always re-check feasibility here.  The functions are
duck-typed: any graph exposing ``n`` and ``is_independent(vertices)`` works
(both :class:`~repro.graphs.conflict_graph.ConflictGraph` and
:class:`~repro.graphs.weighted_graph.WeightedConflictGraph` do).

An *allocation* is a mapping ``vertex -> frozenset of channels``; vertices
missing from the mapping implicitly receive the empty bundle.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Protocol

__all__ = [
    "channel_holders",
    "check_allocation_feasible",
    "check_partly_feasible",
    "violated_channels",
]

Allocation = Mapping[int, frozenset[int]]


class IndependenceGraph(Protocol):
    """Anything that can answer independent-set queries (both graph
    backends do)."""

    def is_independent(self, vertices: Sequence[int]) -> bool: ...


class SymmetrizedWeights(Protocol):
    """Anything exposing the symmetrized weights w̄(u, v)."""

    def wbar(self, u: int, v: int) -> float: ...


class PiOrdering(Protocol):
    """A vertex ordering π, queried by position."""

    def position(self, v: int) -> int: ...


def channel_holders(allocation: Allocation, k: int) -> list[list[int]]:
    """Return, for each channel ``j`` in ``[k]``, the sorted vertices holding it."""
    holders: list[list[int]] = [[] for _ in range(k)]
    for v in sorted(allocation):
        for j in allocation[v]:
            if not 0 <= j < k:
                raise ValueError(f"vertex {v} holds out-of-range channel {j}")
            holders[j].append(v)
    return holders


def violated_channels(
    graph: IndependenceGraph, allocation: Allocation, k: int
) -> list[int]:
    """Channels whose holder set is *not* independent in ``graph``."""
    return [
        j
        for j, holders in enumerate(channel_holders(allocation, k))
        if not graph.is_independent(holders)
    ]


def check_allocation_feasible(
    graph: IndependenceGraph, allocation: Allocation, k: int
) -> bool:
    """True iff every channel's holder set is an independent set (Problem 1)."""
    return not violated_channels(graph, allocation, k)


def check_partly_feasible(
    weighted_graph: SymmetrizedWeights,
    ordering: PiOrdering,
    allocation: Allocation,
) -> bool:
    """Check Condition (5): for every vertex ``v``, the symmetric weights to
    earlier vertices sharing a channel with ``v`` sum to strictly below 1/2.

    ``ordering`` is a :class:`~repro.graphs.conflict_graph.VertexOrdering`;
    ``weighted_graph`` must expose ``wbar(u, v)``.
    """
    items = [(v, s) for v, s in allocation.items() if s]
    items.sort(key=lambda vs: ordering.position(vs[0]))
    for i, (v, sv) in enumerate(items):
        total = 0.0
        for u, su in items[:i]:
            if sv & su:
                total += weighted_graph.wbar(u, v)
        if total >= 0.5:
            return False
    return True
