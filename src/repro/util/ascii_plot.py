"""ASCII bar charts for terminal-friendly experiment "figures".

The environment is plot-library-free, so scaling trends (E1's ratio vs √k,
E5's ρ vs log n) are rendered as horizontal bar charts in the experiment
reports — enough to eyeball the shape the paper predicts.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["bar_chart"]


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
    fill: str = "#",
) -> str:
    """Render one horizontal bar per (label, value).

    Bars are scaled so the maximum value spans ``width`` characters; zero
    and negative values produce empty bars (values are annotated anyway).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if width < 1:
        raise ValueError("width must be positive")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    peak = max(max(values), 0.0)
    label_width = max(len(str(lab)) for lab in labels)
    for lab, val in zip(labels, values):
        n_fill = int(round(width * val / peak)) if peak > 0 and val > 0 else 0
        bar = fill * n_fill
        lines.append(f"{str(lab).rjust(label_width)} |{bar.ljust(width)} {val:g}")
    return "\n".join(lines)
