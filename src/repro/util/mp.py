"""Multiprocessing start-method policy, shared by every process executor.

Two places in the system spawn worker processes — the batch engine's
``executor="process"`` fan-out and the service's
:class:`~repro.service.pool.ProcessShardPool` — and both need the same
answer to "how should a worker be started?":

* ``fork`` is the cheapest (workers inherit the parent's imports and any
  already-registered scenes for free) but is unsafe once the parent has
  threads — and both call sites live in code that runs threads (the
  service's dispatcher, pytest, user frontends).  Python 3.12 deprecates
  it in exactly that situation.
* ``spawn`` is always safe but pays a full interpreter start plus the
  numpy/scipy/HiGHS import cascade (~1s) *per worker*.
* ``forkserver`` is the middle path: one clean server process is started
  before worker one, imports are paid once in the server, and each worker
  is a cheap fork of that thread-free server.

``default_start_method`` therefore prefers ``forkserver`` where the
platform offers it (Linux, macOS) and falls back to ``spawn``; callers
expose a ``mp_start_method`` knob that forwards here, so ``"fork"`` can
still be chosen explicitly by a single-threaded batch driver that wants
the inherited-snapshot speedup.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.context
import threading
from typing import Callable

__all__ = [
    "default_start_method",
    "mp_context",
    "register_fork_reset",
    "registered_fork_resets",
    "run_fork_resets",
]


def default_start_method() -> str:
    """The preferred start method on this platform (never ``fork``)."""
    if "forkserver" in mp.get_all_start_methods():
        return "forkserver"
    return "spawn"


def mp_context(method: str | None = "auto") -> multiprocessing.context.BaseContext:
    """A :mod:`multiprocessing` context for ``method``.

    ``"auto"`` (or ``None``) resolves through :func:`default_start_method`;
    anything else is passed to :func:`multiprocessing.get_context` verbatim,
    so an unsupported method raises ``ValueError`` here rather than at the
    first spawn.
    """
    if method in (None, "auto"):
        method = default_start_method()
    return mp.get_context(method)


# ----------------------------------------------------------------------
# fork-reset registry
# ----------------------------------------------------------------------
# Modules that keep native handles in a ``threading.local`` (the
# persistent HiGHS backend: loaded model, warm-start key) register a
# reset hook here.  Worker processes call :func:`run_fork_resets` on
# entry, *requiring* the hooks they depend on — so "worker forgot to drop
# inherited solver state" (the PR 6 bug class) fails loudly at spawn time
# instead of warm-starting against another process's model.
_RESET_REGISTRY_LOCK = threading.Lock()
_fork_resets: dict[str, Callable[[], None]] = {}  # repro: allow[module-state] -- all access below holds _RESET_REGISTRY_LOCK


def register_fork_reset(name: str, reset: Callable[[], None]) -> None:
    """Register (or replace) the fork-reset hook for ``name``.

    ``name`` is the owning module's dotted path by convention; re-registering
    is idempotent-by-name so module reloads do not accumulate hooks.
    """
    with _RESET_REGISTRY_LOCK:
        _fork_resets[name] = reset


def registered_fork_resets() -> tuple[str, ...]:
    """Names with a registered hook, sorted for stable reporting."""
    with _RESET_REGISTRY_LOCK:
        return tuple(sorted(_fork_resets))


def run_fork_resets(require: tuple[str, ...] = ()) -> tuple[str, ...]:
    """Run every registered hook; returns the names run (sorted).

    ``require`` asserts that specific hooks exist before anything runs —
    a worker that depends on ``repro.engine.highs`` being reset passes it
    here and gets a loud ``RuntimeError`` if the registration went
    missing, rather than a silent stale-handle solve.
    """
    with _RESET_REGISTRY_LOCK:
        hooks = sorted(_fork_resets.items())
    missing = [name for name in require if name not in dict(hooks)]
    if missing:
        raise RuntimeError(
            "required fork-reset hook(s) not registered: "
            + ", ".join(sorted(missing))
            + " — import the owning module before spawning workers"
        )
    for _, reset in hooks:
        reset()
    return tuple(name for name, _ in hooks)
