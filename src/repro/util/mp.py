"""Multiprocessing start-method policy, shared by every process executor.

Two places in the system spawn worker processes — the batch engine's
``executor="process"`` fan-out and the service's
:class:`~repro.service.pool.ProcessShardPool` — and both need the same
answer to "how should a worker be started?":

* ``fork`` is the cheapest (workers inherit the parent's imports and any
  already-registered scenes for free) but is unsafe once the parent has
  threads — and both call sites live in code that runs threads (the
  service's dispatcher, pytest, user frontends).  Python 3.12 deprecates
  it in exactly that situation.
* ``spawn`` is always safe but pays a full interpreter start plus the
  numpy/scipy/HiGHS import cascade (~1s) *per worker*.
* ``forkserver`` is the middle path: one clean server process is started
  before worker one, imports are paid once in the server, and each worker
  is a cheap fork of that thread-free server.

``default_start_method`` therefore prefers ``forkserver`` where the
platform offers it (Linux, macOS) and falls back to ``spawn``; callers
expose a ``mp_start_method`` knob that forwards here, so ``"fork"`` can
still be chosen explicitly by a single-threaded batch driver that wants
the inherited-snapshot speedup.
"""

from __future__ import annotations

import multiprocessing as mp

__all__ = ["default_start_method", "mp_context"]


def default_start_method() -> str:
    """The preferred start method on this platform (never ``fork``)."""
    if "forkserver" in mp.get_all_start_methods():
        return "forkserver"
    return "spawn"


def mp_context(method: str | None = "auto"):
    """A :mod:`multiprocessing` context for ``method``.

    ``"auto"`` (or ``None``) resolves through :func:`default_start_method`;
    anything else is passed to :func:`multiprocessing.get_context` verbatim,
    so an unsupported method raises ``ValueError`` here rather than at the
    first spawn.
    """
    if method in (None, "auto"):
        method = default_start_method()
    return mp.get_context(method)
