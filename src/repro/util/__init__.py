"""Shared utilities: seeded RNG handling, allocation validation, tables."""

from repro.util.arrays import Array, BoolArray, FloatArray, IntArray
from repro.util.ascii_plot import bar_chart
from repro.util.lru import LRUCache
from repro.util.rng import SeedLike, ensure_rng, spawn_rngs
from repro.util.tables import Table
from repro.util.validation import (
    check_allocation_feasible,
    check_partly_feasible,
    violated_channels,
)

__all__ = [
    "Array",
    "BoolArray",
    "FloatArray",
    "IntArray",
    "bar_chart",
    "LRUCache",
    "SeedLike",
    "ensure_rng",
    "spawn_rngs",
    "Table",
    "check_allocation_feasible",
    "check_partly_feasible",
    "violated_channels",
]
