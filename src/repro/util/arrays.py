"""Shared numpy array aliases for the strictly-typed packages.

The engine deals in float/int/bool ndarrays whose dtypes are enforced at
runtime by the kernels themselves; ``Array`` is the deliberately loose
"some ndarray" alias used where dtype is the callee's concern, and the
narrower aliases document intent at kernel boundaries.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

__all__ = ["Array", "BoolArray", "FloatArray", "IntArray"]

Array = npt.NDArray[Any]
FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]
