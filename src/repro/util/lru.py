"""Thread-safe LRU cache with hit/miss/eviction accounting.

One cache class backs every keyed cache in the system: the engine's
module-level compilation caches (:mod:`repro.engine.compiled`) and the
per-service caches the :class:`~repro.service.AuctionService` injects so
its capacity and eviction counters are isolated from other services in
the process.  ``capacity=0`` disables storage entirely — every lookup is
a miss and nothing is retained — which is how the benchmark's
"no-cache" baseline configuration is expressed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from typing import Any

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded mapping with least-recently-used eviction and counters.

    ``get`` refreshes recency; ``put`` evicts the stalest entries once
    ``capacity`` is exceeded.  All operations hold one re-entrant lock, so
    the cache can be shared across the service's shard threads.
    ``get_or_create`` runs its factory *outside* the lock (compilation can
    take milliseconds) and double-checks on insert, keeping the first
    created value on a race.
    """

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._data: OrderedDict[Hashable, Any] = OrderedDict()  #: guarded-by: _lock
        self._lock = threading.RLock()
        self._hits = 0  #: guarded-by: _lock
        self._misses = 0  #: guarded-by: _lock
        self._evictions = 0  #: guarded-by: _lock

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if self.capacity == 0:
                return
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Fetch ``key``, building it via ``factory`` on a miss.

        The factory runs unlocked; if another thread inserted the key in
        the meantime its value wins (and this thread's build is dropped),
        so all callers observe one shared entry per key.
        """
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
        value = factory()
        with self._lock:
            if key in self._data:
                return self._data[key]
            if self.capacity == 0:
                return value
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1
            return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._data.clear()
            self._hits = self._misses = self._evictions = 0

    def stats(self) -> dict[str, Any]:
        """Counters snapshot: hits, misses, evictions, size, capacity, hit_rate."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._data),
                "capacity": self.capacity,
                "hit_rate": self._hits / total if total else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        label = f" {self.name!r}" if self.name else ""
        return (
            f"LRUCache({label} size={s['size']}/{s['capacity']} "
            f"hits={s['hits']} misses={s['misses']} evictions={s['evictions']})"
        )
