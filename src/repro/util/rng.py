"""Deterministic random-number-generator plumbing.

Every randomized component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  All
call sites funnel through :func:`ensure_rng` so experiments are reproducible
end to end from a single seed.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

__all__ = ["SeedLike", "ensure_rng", "spawn_rngs"]

# everything ensure_rng accepts: sweep harnesses hand SeedSequence
# children straight through, so the alias is wider than a bare int seed
SeedLike: TypeAlias = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, so components can be
    chained off one stream.  Integers give a fresh seeded ``default_rng``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used by parameter sweeps so that changing the number of repetitions of one
    configuration does not perturb the random draws of another.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return list(root.spawn(count)) if count else []
