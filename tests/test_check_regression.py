"""The perf-regression gate must pass on faithful measurements and fail on
injected slowdowns — without re-running any benchmark (pure comparison)."""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib
import sys

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_regression"] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def baselines(gate):
    return gate.load_baselines()


def _as_measured(gate, baselines):
    """A perfect measurement: exactly the committed baseline values."""
    measured = {name: {} for name in gate.BASELINE_FILES}
    for chk in gate.CHECKS:
        gate._assign(
            measured[chk.source],
            chk.path,
            gate._lookup(baselines[chk.source], chk.path),
        )
        if chk.guard is not None:
            gate._assign(
                measured[chk.source],
                chk.guard,
                gate._lookup(baselines[chk.source], chk.guard),
            )
    return measured


def _slowed(gate, baselines, factor):
    """Every gated metric degraded by ``factor``."""
    measured = _as_measured(gate, baselines)
    for chk in gate.CHECKS:
        value = gate._lookup(measured[chk.source], chk.path)
        worse = value * factor if chk.kind == "seconds" else value / factor
        gate._assign(measured[chk.source], chk.path, worse)
    return measured


class TestCompare:
    def test_baseline_vs_itself_passes(self, gate, baselines):
        rows = gate.compare(_as_measured(gate, baselines), baselines)
        assert len(rows) == len(gate.CHECKS)
        assert all(row["ok"] for row in rows)

    def test_injected_slowdown_fails(self, gate, baselines):
        rows = gate.compare(_slowed(gate, baselines, 3.0), baselines)
        assert all(not row["ok"] for row in rows)
        assert all(row["slowdown"] == pytest.approx(3.0) for row in rows)

    def test_slowdown_within_tolerance_passes(self, gate, baselines):
        """1.2x degradation passes the noise-tolerant perf checks — but
        the exact chaos-rate pins (tol 1.0x) fail on any drop at all."""
        rows = gate.compare(_slowed(gate, baselines, 1.2), baselines)
        by_kind = {row["kind"]: row["ok"] for row in rows}
        assert all(row["ok"] for row in rows if row["kind"] != "rate")
        assert by_kind["rate"] is False

    def test_speedup_tolerance_tighter_than_time_tolerance(self, gate, baselines):
        rows = gate.compare(_slowed(gate, baselines, 2.0), baselines)
        by_kind = {row["kind"]: row["ok"] for row in rows}
        assert by_kind["speedup"] is False  # 2.0 > 1.5
        assert by_kind["seconds"] is True  # 2.0 < 2.5

    def test_rate_checks_pin_exact_values(self, gate, baselines):
        """The chaos invariants are booleans recorded as rates: equality
        passes, and even a 1% drop (one lost request in a hundred) fails."""
        rate_checks = [chk for chk in gate.CHECKS if chk.kind == "rate"]
        assert rate_checks, "expected chaos rate checks in CHECKS"
        assert all(chk.tol == 1.0 for chk in rate_checks)
        measured = _as_measured(gate, baselines)
        rows = {row["check"]: row for row in gate.compare(measured, baselines)}
        assert all(rows[chk.name]["ok"] for chk in rate_checks)
        victim = rate_checks[0]
        gate._assign(
            measured[victim.source],
            victim.path,
            gate._lookup(baselines[victim.source], victim.path) * 0.99,
        )
        rows = {row["check"]: row for row in gate.compare(measured, baselines)}
        assert not rows[victim.name]["ok"]
        assert rows[victim.name]["tolerance"] == 1.0

    def test_missing_metric_is_a_failure(self, gate, baselines):
        measured = _as_measured(gate, baselines)
        del measured["engine"]["repeat_trace_50"]
        rows = gate.compare(measured, baselines)
        failed = [row for row in rows if not row["ok"]]
        assert len(failed) == 1
        assert "missing metric" in failed[0]["error"]

    def test_improvements_pass(self, gate, baselines):
        rows = gate.compare(_slowed(gate, baselines, 0.5), baselines)
        assert all(row["ok"] for row in rows)

    def test_guarded_checks_skip_on_core_mismatch(self, gate, baselines):
        """Pool metrics from a different core count are skipped, not judged.

        A 1-core baseline compared on a 4-core runner (or vice versa)
        says nothing about regressions — the guard turns that into an
        explicit skip even when the metric itself looks catastrophic.
        """
        guarded = [chk for chk in gate.CHECKS if chk.guard is not None]
        assert guarded, "expected cores-guarded pool checks in CHECKS"
        measured = _slowed(gate, baselines, 100.0)  # would fail every check
        for chk in guarded:
            gate._assign(
                measured[chk.source],
                chk.guard,
                gate._lookup(baselines[chk.source], chk.guard) + 3,
            )
        rows = {row["check"]: row for row in gate.compare(measured, baselines)}
        for chk in gate.CHECKS:
            row = rows[chk.name]
            if chk.guard is not None:
                assert row["ok"] and "not comparable" in row["skipped"]
            else:
                assert not row["ok"]

    def test_missing_guard_is_a_failure(self, gate, baselines):
        """A vanished guard value must not silently skip the check."""
        guarded = next(chk for chk in gate.CHECKS if chk.guard is not None)
        measured = _as_measured(gate, baselines)
        node = measured[guarded.source]
        for segment in guarded.guard.split(".")[:-1]:
            node = node[segment]
        del node[guarded.guard.split(".")[-1]]
        rows = {row["check"]: row for row in gate.compare(measured, baselines)}
        assert not rows[guarded.name]["ok"]
        assert "missing metric" in rows[guarded.name]["error"]


class TestLookupAssign:
    def test_roundtrip_through_lists(self, gate):
        data = {}
        gate._assign(data, "scaling.points.1.speedup", 2.5)
        assert data["scaling"]["points"][0] is None
        assert gate._lookup(data, "scaling.points.1.speedup") == 2.5

    def test_lookup_baseline_paths_exist(self, gate, baselines):
        for chk in gate.CHECKS:
            value = gate._lookup(baselines[chk.source], chk.path)
            assert value > 0


class TestMainExitCodes:
    """The CLI contract CI relies on, driven by --measured (no benchmarking)."""

    def _write(self, tmp_path, measured):
        path = tmp_path / "measured.json"
        path.write_text(json.dumps(measured))
        return str(path)

    def test_green_on_faithful_measurement(self, gate, baselines, tmp_path, capsys):
        path = self._write(tmp_path, _as_measured(gate, baselines))
        assert gate.main(["--measured", path]) == 0
        assert "all" in capsys.readouterr().out

    def test_nonzero_on_injected_slowdown(self, gate, baselines, tmp_path, capsys):
        path = self._write(tmp_path, _slowed(gate, baselines, 2.5))
        assert gate.main(["--measured", path]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flags_respected(self, gate, baselines, tmp_path):
        measured = _slowed(gate, baselines, 2.5)
        # the CLI noise tolerances apply to perf checks only — restore the
        # exact-pin rate metrics, which no flag is allowed to loosen
        for chk in gate.CHECKS:
            if chk.kind == "rate":
                gate._assign(
                    measured[chk.source],
                    chk.path,
                    gate._lookup(baselines[chk.source], chk.path),
                )
        path = self._write(tmp_path, measured)
        assert (
            gate.main(
                ["--measured", path, "--tolerance", "5", "--time-tolerance", "5"]
            )
            == 0
        )

    def test_tolerance_flags_never_loosen_rate_pins(self, gate, baselines, tmp_path):
        path = self._write(tmp_path, _slowed(gate, baselines, 1.01))
        assert (
            gate.main(
                ["--measured", path, "--tolerance", "5", "--time-tolerance", "5"]
            )
            == 1
        )

    def test_json_report_written(self, gate, baselines, tmp_path):
        measured_path = self._write(tmp_path, _as_measured(gate, baselines))
        report = tmp_path / "report.json"
        gate.main(["--measured", measured_path, "--json", str(report)])
        data = json.loads(report.read_text())
        assert len(data["checks"]) == len(gate.CHECKS)
        assert all(row["ok"] for row in data["checks"])

    def test_does_not_mutate_baseline_files(self, gate, baselines, tmp_path):
        before = copy.deepcopy(baselines)
        path = self._write(tmp_path, _slowed(gate, baselines, 2.5))
        gate.main(["--measured", path])
        assert gate.load_baselines() == before
