"""Tests for problem serialization (save/load round trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io import (
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_problem,
)
from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP
from repro.experiments.workloads import physical_auction, protocol_auction
from repro.valuations.additive import (
    AdditiveValuation,
    BudgetedAdditiveValuation,
    CappedAdditiveValuation,
    UnitDemandValuation,
)
from repro.valuations.explicit import (
    ExplicitValuation,
    SingleMindedValuation,
    XORValuation,
)


def assert_same_problem(a: AuctionProblem, b: AuctionProblem) -> None:
    assert a.k == b.k and a.n == b.n
    assert a.rho == b.rho
    assert np.array_equal(a.ordering.perm, b.ordering.perm)
    if a.is_weighted:
        assert np.allclose(a.graph.weights, b.graph.weights)
    else:
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
    rng = np.random.default_rng(0)
    for va, vb in zip(a.valuations, b.valuations):
        assert type(va) is type(vb)
        for _ in range(5):
            size = int(rng.integers(0, a.k + 1))
            bundle = frozenset(
                int(j) for j in rng.choice(a.k, size=size, replace=False)
            )
            assert va.value(bundle) == pytest.approx(vb.value(bundle))


class TestRoundTrip:
    def test_protocol_problem(self, tmp_path):
        problem = protocol_auction(10, 3, seed=601)
        path = tmp_path / "problem.json"
        save_problem(problem, path)
        loaded = load_problem(path)
        assert_same_problem(problem, loaded)

    def test_weighted_problem(self, tmp_path):
        problem = physical_auction(8, 2, seed=602)
        path = tmp_path / "weighted.json"
        save_problem(problem, path)
        loaded = load_problem(path)
        assert_same_problem(problem, loaded)

    def test_lp_value_survives(self, tmp_path):
        problem = protocol_auction(10, 3, seed=603)
        path = tmp_path / "p.json"
        save_problem(problem, path)
        loaded = load_problem(path)
        assert AuctionLP(loaded).solve().value == pytest.approx(
            AuctionLP(problem).solve().value
        )

    def test_all_valuation_types(self):
        from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
        from repro.interference.base import ConflictStructure

        k = 3
        vals = [
            XORValuation(k, {frozenset({0, 1}): 5.0}),
            ExplicitValuation(k, {frozenset({2}): 3.0}),
            SingleMindedValuation(k, frozenset({1}), 4.0),
            AdditiveValuation(np.array([1.0, 2.0, 3.0])),
            UnitDemandValuation(np.array([2.0, 1.0, 0.0])),
            CappedAdditiveValuation(np.array([1.0, 1.0, 1.0]), 2),
            BudgetedAdditiveValuation(np.array([4.0, 4.0, 4.0]), 6.0),
        ]
        structure = ConflictStructure(
            ConflictGraph(7, [(0, 1), (2, 3)]), VertexOrdering.identity(7), 2.0
        )
        problem = AuctionProblem(structure, k, vals)
        loaded = problem_from_dict(problem_to_dict(problem))
        assert_same_problem(problem, loaded)

    def test_metadata_filtered(self):
        problem = physical_auction(6, 2, seed=604)
        data = problem_to_dict(problem)
        # Non-JSON metadata (the PhysicalModel object, power array) dropped.
        for value in data["structure"]["metadata"].values():
            assert isinstance(value, (str, int, float, bool)) or value is None

    def test_version_checked(self):
        problem = protocol_auction(5, 2, seed=605)
        data = problem_to_dict(problem)
        data["format_version"] = 999
        with pytest.raises(ValueError):
            problem_from_dict(data)

    def test_json_is_pure(self, tmp_path):
        import json

        problem = protocol_auction(6, 2, seed=606)
        path = tmp_path / "pure.json"
        save_problem(problem, path)
        json.loads(path.read_text())  # parses as standard JSON
