"""Fault-injection subsystem: spec validation, seeded determinism,
fire caps, pickling semantics, and the deprecated crash-hook shim.

These are pure unit tests (no worker processes); the sites themselves
are exercised end-to-end in test_service_deadlines.py (service.solve),
test_service_pool.py (pool.worker.*), and test_service_chaos.py.
"""

from __future__ import annotations

import pickle

import pytest

from repro.service import FAULT_SITES, FaultPlan, FaultSpec
from repro.service.faults import legacy_crash_fires


def crash_spec(**overrides):
    options = {"site": "pool.worker.batch", "kind": "crash"}
    options.update(overrides)
    return FaultSpec(**options)


class TestFaultSpecValidation:
    def test_site_registry_shape(self):
        assert set(FAULT_SITES) == {
            "service.solve",
            "pool.worker.batch",
            "pool.worker.spawn",
            "gateway.accept",
            "gateway.response",
            "client.connect",
        }
        assert "error" in FAULT_SITES["service.solve"]
        assert "crash" in FAULT_SITES["pool.worker.spawn"]
        assert set(FAULT_SITES["gateway.response"]) == {"drop", "truncate"}
        assert set(FAULT_SITES["client.connect"]) == {"latency", "reset"}
        assert FAULT_SITES["gateway.accept"] == ("refuse",)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="service.teleport", kind="crash")

    def test_kind_must_match_site(self):
        # service.solve supports slow/error but not crash
        with pytest.raises(ValueError, match="supports kinds"):
            FaultSpec(site="service.solve", kind="crash")

    def test_probability_delay_max_fires_ranges(self):
        with pytest.raises(ValueError, match="probability"):
            crash_spec(probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            crash_spec(probability=-0.1)
        with pytest.raises(ValueError, match="delay"):
            FaultSpec(site="service.solve", kind="slow", delay=-1.0)
        with pytest.raises(ValueError, match="max_fires"):
            crash_spec(max_fires=-1)

    def test_generations_normalized_to_tuple(self):
        spec = crash_spec(generations=[0, 1])
        assert spec.generations == (0, 1)
        assert spec.matches_generation(0)
        assert spec.matches_generation(1)
        assert not spec.matches_generation(2)
        # no generation filter, or no generation context: always matches
        assert crash_spec().matches_generation(5)
        assert spec.matches_generation(None)

    def test_round_trip_through_dict(self):
        spec = crash_spec(probability=0.25, generations=(0,), max_fires=3)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        slow = FaultSpec(site="service.solve", kind="slow", delay=0.01)
        assert FaultSpec.from_dict(slow.to_dict()) == slow


class TestFaultPlanEvaluation:
    def test_unknown_site_rejected_at_evaluation(self):
        plan = FaultPlan([crash_spec()])
        with pytest.raises(ValueError, match="unknown fault site"):
            plan.actions("service.teleport")

    def test_certain_spec_fires_every_time(self):
        plan = FaultPlan([crash_spec()])
        for _ in range(3):
            assert plan.fires("pool.worker.batch") is plan.specs[0]
        assert plan.fires("pool.worker.spawn") is None
        assert plan.fired_counts() == {"pool.worker.batch:crash": 3}

    def test_generation_scoping(self):
        plan = FaultPlan([crash_spec(generations=(0, 1))])
        assert plan.fires("pool.worker.batch", generation=0) is not None
        assert plan.fires("pool.worker.batch", generation=1) is not None
        assert plan.fires("pool.worker.batch", generation=2) is None

    def test_keyed_draws_are_stateless_and_seeded(self):
        """The same (plan seed, site, spec, key) always draws the same
        Bernoulli — independent of evaluation order or history — so a
        retried batch refires deterministically on the respawned worker."""
        plan_a = FaultPlan([crash_spec(probability=0.5)], seed=11)
        plan_b = FaultPlan([crash_spec(probability=0.5)], seed=11)
        keys = list(range(200))
        fires_a = [plan_a.fires("pool.worker.batch", key=k) is not None for k in keys]
        fires_b = [
            plan_b.fires("pool.worker.batch", key=k) is not None
            for k in reversed(keys)
        ]
        assert fires_a == list(reversed(fires_b))
        # re-evaluating the same key repeats the decision (stateless draw)
        for k in keys[:10]:
            assert (
                plan_a.fires("pool.worker.batch", key=k) is not None
            ) == fires_a[k]
        # p=0.5 over 200 keys: both outcomes occur
        assert 0 < sum(fires_a) < len(keys)

    def test_keyed_draws_differ_across_seeds_and_sites(self):
        keys = list(range(200))
        spec = FaultSpec(site="service.solve", kind="slow", probability=0.5)
        plan_11 = FaultPlan([spec], seed=11)
        plan_12 = FaultPlan([spec], seed=12)
        fires_11 = [plan_11.fires("service.solve", key=k) is not None for k in keys]
        fires_12 = [plan_12.fires("service.solve", key=k) is not None for k in keys]
        assert fires_11 != fires_12

    def test_unkeyed_draws_use_counter_stream_and_reset_rearms(self):
        plan = FaultPlan([crash_spec(probability=0.5)], seed=7)
        first_pass = [plan.fires("pool.worker.batch") is not None for _ in range(50)]
        plan.reset()
        second_pass = [plan.fires("pool.worker.batch") is not None for _ in range(50)]
        assert first_pass == second_pass  # same plan, re-armed → same stream
        assert 0 < sum(first_pass) < 50

    def test_max_fires_caps_activations_and_reset_restores(self):
        plan = FaultPlan([crash_spec(max_fires=2)])
        fired = [plan.fires("pool.worker.batch") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert plan.fired_counts() == {"pool.worker.batch:crash": 2}
        plan.reset()
        assert plan.fires("pool.worker.batch") is not None

    def test_actions_returns_every_matching_spec(self):
        plan = FaultPlan(
            [
                FaultSpec(site="service.solve", kind="slow", delay=0.01),
                FaultSpec(site="service.solve", kind="error"),
                crash_spec(),
            ]
        )
        kinds = [spec.kind for spec in plan.actions("service.solve", key=1)]
        assert kinds == ["slow", "error"]
        assert len(plan) == 3
        assert [spec.site for spec in plan] == [
            "service.solve",
            "service.solve",
            "pool.worker.batch",
        ]


class TestFaultPlanSerialization:
    def test_pickle_ships_specs_but_rearms_runtime_state(self):
        """A worker's copy arms fresh: fire caps and counter streams are
        per incarnation, which is what lets a respawned worker re-fire."""
        plan = FaultPlan([crash_spec(max_fires=1)], seed=3)
        assert plan.fires("pool.worker.batch") is not None
        assert plan.fires("pool.worker.batch") is None  # cap spent locally
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs and clone.seed == plan.seed
        assert clone.fires("pool.worker.batch") is not None  # fresh budget
        assert plan.fired_counts() == {"pool.worker.batch:crash": 1}

    def test_dict_round_trip(self):
        plan = FaultPlan(
            [
                crash_spec(probability=0.5, generations=(0, 1)),
                FaultSpec(site="service.solve", kind="slow", delay=0.002),
            ],
            seed=11,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == plan.seed
        assert clone.specs == plan.specs
        assert "seed=11" in repr(plan)


class TestLegacyCrashShim:
    """Deprecation pin: the PR 6 ``metadata["_crash_worker"]`` hook keeps
    working through the shim until a major version drops it."""

    class _Req:
        def __init__(self, metadata):
            self.metadata = metadata

    def test_generation_and_always_flags(self):
        hit = [self._Req({"_crash_worker": 1})]
        assert not legacy_crash_fires(hit, generation=0)
        assert legacy_crash_fires(hit, generation=1)
        assert legacy_crash_fires([self._Req({"_crash_worker": "always"})], 7)

    def test_absent_metadata_never_fires(self):
        assert not legacy_crash_fires([self._Req({})], generation=0)
        assert not legacy_crash_fires([], generation=0)
