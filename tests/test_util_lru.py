"""LRU cache semantics: recency, eviction accounting, disabled mode."""

from __future__ import annotations

import threading

import pytest

from repro.util.lru import LRUCache


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=-1) == -1

    def test_least_recently_used_evicted_first(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now stalest
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_eviction_counter(self):
        cache = LRUCache(2)
        for i in range(5):
            cache.put(i, i)
        stats = cache.stats()
        assert stats["evictions"] == 3
        assert stats["size"] == 2
        assert len(cache) == 2

    def test_put_existing_key_refreshes_not_evicts(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update, no eviction
        assert cache.stats()["evictions"] == 0
        assert cache.get("a") == 10

    def test_capacity_zero_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        built = []

        def factory():
            built.append(1)
            return "value"

        assert cache.get_or_create("k", factory) == "value"
        assert cache.get_or_create("k", factory) == "value"
        assert len(built) == 2  # nothing retained, factory re-runs
        assert len(cache) == 0

    def test_get_or_create_caches_and_counts(self):
        cache = LRUCache(4)
        built = []

        def factory():
            built.append(1)
            return object()

        first = cache.get_or_create("k", factory)
        second = cache.get_or_create("k", factory)
        assert first is second
        assert len(built) == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_clear_resets_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert stats["hits"] == stats["misses"] == stats["evictions"] == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_thread_safety_smoke(self):
        cache = LRUCache(16)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    cache.put((base, i % 20), i)
                    cache.get((base, (i + 1) % 20))
                    cache.get_or_create((base, "x"), lambda: base)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
